"""Holding-time insensitivity tests.

The Erlang loss system's blocking depends on the holding-time distribution
only through its mean — so the single-path network must reproduce Erlang-B
under deterministic and heavy-tailed holding times alike.  The alternate-
routing dynamics are *not* covered by that theorem; the tests here only pin
that the qualitative ordering survives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.erlang import erlang_b
from repro.routing.alternate import UncontrolledAlternateRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import line
from repro.topology.paths import build_path_table
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix

DISTRIBUTIONS = ("exponential", "deterministic", "hyperexponential")


class TestHoldingSampling:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_unit_mean(self, distribution):
        traffic = TrafficMatrix({(0, 1): 100.0}, num_nodes=2)
        trace = generate_trace(traffic, 100.0, 0, holding=distribution)
        assert trace.holding_times.mean() == pytest.approx(1.0, abs=0.1)
        assert (trace.holding_times > 0).all()

    def test_deterministic_is_constant(self):
        traffic = TrafficMatrix({(0, 1): 20.0}, num_nodes=2)
        trace = generate_trace(traffic, 50.0, 1, holding="deterministic")
        assert (trace.holding_times == 1.0).all()

    def test_hyperexponential_is_bursty(self):
        traffic = TrafficMatrix({(0, 1): 100.0}, num_nodes=2)
        trace = generate_trace(traffic, 100.0, 2, holding="hyperexponential")
        cv2 = trace.holding_times.var() / trace.holding_times.mean() ** 2
        assert cv2 > 2.0  # target squared CV is 4

    def test_unknown_distribution_rejected(self):
        traffic = TrafficMatrix({(0, 1): 1.0}, num_nodes=2)
        with pytest.raises(ValueError):
            generate_trace(traffic, 10.0, 0, holding="pareto")


class TestInsensitivity:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_single_link_blocking_insensitive(self, distribution):
        # Erlang insensitivity: B depends on holding times through the mean
        # only.  M/G/C/C with unit-mean holding == Erlang-B.
        capacity, load = 10, 8.0
        net = line(2, capacity)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 1): load}, num_nodes=2)
        policy = SinglePathRouting(net, table)
        values = [
            simulate(
                net, policy, generate_trace(traffic, 410.0, seed, holding=distribution), 10.0
            ).network_blocking
            for seed in range(6)
        ]
        assert np.mean(values) == pytest.approx(erlang_b(load, capacity), rel=0.15)

    def test_alternate_routing_ordering_survives(self, quad_network, quad_table):
        # Not covered by the insensitivity theorem, but the paper's story
        # (alternate routing collapses past the critical load) should not be
        # an artifact of exponential holding.
        traffic = uniform_traffic(4, 100.0)
        single = SinglePathRouting(quad_network, quad_table)
        uncontrolled = UncontrolledAlternateRouting(quad_network, quad_table)
        for distribution in ("deterministic", "hyperexponential"):
            singles, alts = [], []
            for seed in range(3):
                trace = generate_trace(traffic, 40.0, seed, holding=distribution)
                singles.append(simulate(quad_network, single, trace, 10.0).network_blocking)
                alts.append(
                    simulate(quad_network, uncontrolled, trace, 10.0).network_blocking
                )
            assert np.mean(alts) > np.mean(singles)
