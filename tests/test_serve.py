"""Tests for repro.serve: the online admission-control service.

The load-bearing property is decision equivalence: replaying a trace
through the engine — in-process, batched at any size, or over the socket
server — must reproduce :class:`LossNetworkSimulator`'s per-call
decisions bit for bit.  Around that: deterministic overload shedding
(alternates first, recovery visible), a hard queue bound, telemetry
correctness, online threshold adaptation, and protocol/lifecycle edges.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.lab.events import read_events
from repro.routing.alternate import (
    ControlledAlternateRouting,
    LengthAdaptiveControlledRouting,
)
from repro.serve import (
    AdaptationConfig,
    AdmitRequest,
    BatchConfig,
    Decision,
    MetricsRegistry,
    NetworkState,
    OverloadConfig,
    OverloadControl,
    ReleaseRequest,
    RequestEngine,
    ServeServer,
    TokenBucket,
    aggregate_decisions,
    replay_trace,
    replay_trace_socket,
    trace_requests,
)
from repro.serve.server import parse_request
from repro.serve.telemetry import Counter, Histogram
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic

WARMUP = 5.0


@pytest.fixture(scope="module")
def nsf_policy(nsfnet, nsfnet_table):
    traffic = nsfnet_nominal_traffic()
    loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
    return ControlledAlternateRouting(nsfnet, nsfnet_table, loads)


@pytest.fixture(scope="module")
def nsf_trace(nsfnet):
    return generate_trace(nsfnet_nominal_traffic(), duration=25.0, seed=11)


@pytest.fixture(scope="module")
def quad_policy(quad_network, quad_table):
    traffic = uniform_traffic(quad_network.num_nodes, 95.0)
    loads = primary_link_loads(quad_network, quad_table, traffic)
    return ControlledAlternateRouting(quad_network, quad_table, loads)


@pytest.fixture(scope="module")
def quad_trace(quad_network):
    traffic = uniform_traffic(quad_network.num_nodes, 95.0)
    return generate_trace(traffic, duration=20.0, seed=3)


def _assert_result_equal(result, reference):
    assert np.array_equal(result.offered, reference.offered)
    assert np.array_equal(result.blocked, reference.blocked)
    assert result.primary_carried == reference.primary_carried
    assert result.alternate_carried == reference.alternate_carried


class TestSimulatorEquivalence:
    def test_in_process_replay_matches_simulator(
        self, nsfnet, nsf_policy, nsf_trace
    ):
        reference = simulate(nsfnet, nsf_policy, nsf_trace, warmup=WARMUP)
        engine = RequestEngine(nsfnet, nsf_policy)
        report = replay_trace(engine, nsf_trace, warmup=WARMUP)
        _assert_result_equal(report.result, reference)
        # The trace blocks some calls at nominal load, so the equivalence
        # is exercised on both admitted and rejected paths.
        assert reference.total_blocked > 0
        assert reference.alternate_carried > 0

    def test_batch_size_never_changes_decisions(
        self, quad_network, quad_policy, quad_trace
    ):
        baseline = replay_trace(
            RequestEngine(quad_network, quad_policy), quad_trace, batch_size=1
        ).decisions
        for size in (7, 64, 4096):
            decisions = replay_trace(
                RequestEngine(quad_network, quad_policy),
                quad_trace,
                batch_size=size,
            ).decisions
            assert decisions == baseline

    def test_socket_replay_matches_in_process(
        self, quad_network, quad_policy, quad_trace
    ):
        reference = simulate(
            quad_network, quad_policy, quad_trace, warmup=WARMUP
        )
        in_process = replay_trace(
            RequestEngine(quad_network, quad_policy), quad_trace, warmup=WARMUP
        )

        async def run():
            engine = RequestEngine(quad_network, quad_policy)
            async with ServeServer(engine) as server:
                return await replay_trace_socket(
                    server.host, server.port, quad_trace, warmup=WARMUP
                )

        socket_report = asyncio.run(run())
        assert socket_report.decisions == in_process.decisions
        _assert_result_equal(socket_report.result, reference)

    def test_length_threshold_discipline(self, nsfnet, nsfnet_table, nsf_trace):
        traffic = nsfnet_nominal_traffic()
        loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
        policy = LengthAdaptiveControlledRouting(nsfnet, nsfnet_table, loads)
        assert policy.discipline == "length-threshold"
        reference = simulate(nsfnet, policy, nsf_trace, warmup=WARMUP)
        report = replay_trace(
            RequestEngine(nsfnet, policy), nsf_trace, warmup=WARMUP
        )
        _assert_result_equal(report.result, reference)

    def test_request_stream_is_simulator_ordered(self, quad_trace):
        requests = trace_requests(quad_trace)
        admits = [r for r in requests if isinstance(r, AdmitRequest)]
        assert len(admits) == len(quad_trace.times)
        # Every departure due at or before an arrival is released before
        # that arrival decides (the simulator's event order), releases come
        # out in non-decreasing time, and every call releases at most once.
        seen_admits = set()
        released = set()
        last_release = -float("inf")
        pending_releases: list[ReleaseRequest] = []
        for request in requests:
            assert request.time >= 0.0
            if isinstance(request, AdmitRequest):
                for release in pending_releases:
                    assert release.time <= request.time
                pending_releases.clear()
                seen_admits.add(request.id)
            else:
                assert request.id in seen_admits
                assert request.id not in released
                released.add(request.id)
                assert request.time >= last_release
                last_release = request.time
                pending_releases.append(request)


class TestOverloadControl:
    def test_token_bucket_is_deterministic(self):
        a = TokenBucket(rate=2.0, burst=4.0)
        b = TokenBucket(rate=2.0, burst=4.0)
        for now in (0.0, 0.1, 0.5, 0.5, 2.0, 10.0):
            assert a.refill(now) == b.refill(now)
            a.consume()
            b.consume()
        assert a.tokens == b.tokens

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OverloadConfig(rate=0.0)
        with pytest.raises(ValueError):
            OverloadConfig(alternate_reserve=1.0)
        with pytest.raises(ValueError):
            OverloadConfig(queue_limit=4, queue_reserve=4)

    def test_modes_degrade_then_shed_then_recover(self):
        control = OverloadControl(
            OverloadConfig(rate=1.0, burst=4.0, alternate_reserve=0.5)
        )
        modes = [control.classify(0.0) for __ in range(8)]
        # Burst of 4 tokens, reserve of 2: two normal queries, then
        # alternates are shed (degraded) while tokens last, then outright
        # shedding — the paper's ordering applied to the service itself.
        assert modes[:2] == ["normal", "normal"]
        assert "degraded" in modes
        assert modes[-1] == "shed"
        # Idle time refills the bucket: the service recovers by itself.
        assert control.classify(100.0) == "normal"
        assert [mode for __, mode in control.transitions] == [
            "degraded", "shed", "normal"
        ]

    def test_shedding_is_deterministic_for_a_fixed_trace(
        self, quad_network, quad_policy, quad_trace
    ):
        def run():
            control = OverloadControl(OverloadConfig(rate=40.0, burst=16.0))
            engine = RequestEngine(quad_network, quad_policy, overload=control)
            report = replay_trace(engine, quad_trace)
            return report.decisions, tuple(control.transitions)

        first = run()
        second = run()
        assert first == second
        shed = sum(1 for d in first[0] if d.reason == "shed")
        assert shed > 0

    def test_degraded_mode_sheds_alternates_first(self, quad_network, quad_policy):
        # Tokens start below 1 + reserve, so the control opens in degraded
        # mode (alternates refused, primaries still served) with plenty of
        # tokens left before outright shedding.
        control = OverloadControl(
            OverloadConfig(rate=1e-9, burst=50.0, alternate_reserve=0.99)
        )
        engine = RequestEngine(quad_network, quad_policy, overload=control)
        full_od, open_od = (0, 1), (2, 3)
        kind, primary, __ = engine._routes[full_od]
        assert kind == "single"
        engine.state.admit(primary, width=100)  # primary at capacity
        # Sanity: an unthrottled engine routes the same call on an alternate.
        reference = RequestEngine(quad_network, quad_policy)
        reference.state.admit(primary, width=100)
        assert reference.decide(
            AdmitRequest(id="r", od=full_od, time=0.0)
        ).tier == "alternate"
        overflow = engine.decide(AdmitRequest(id="a", od=full_od, time=0.0))
        assert control.mode == "degraded"
        assert overflow.reason == "degraded"
        assert not overflow.admitted and overflow.route is None
        direct = engine.decide(AdmitRequest(id="b", od=open_od, time=0.0))
        assert direct.admitted and direct.tier == "primary"

    def test_overload_recovery_is_visible_in_telemetry(
        self, quad_network, quad_policy
    ):
        control = OverloadControl(OverloadConfig(rate=5.0, burst=4.0))
        engine = RequestEngine(quad_network, quad_policy, overload=control)
        od = next(iter(quad_policy.choices))
        # Flood at t=0 until shedding, then one query after a long idle gap.
        flood = [
            AdmitRequest(id=i, od=od, time=0.0) for i in range(10)
        ]
        engine.decide_batch(flood)
        assert control.mode == "shed"
        assert engine.telemetry.gauge("serve_mode").value == 2.0
        late = engine.decide(AdmitRequest(id="late", od=od, time=50.0))
        assert late.reason != "shed"
        assert control.mode == "normal"
        assert engine.telemetry.gauge("serve_mode").value == 0.0
        snapshot = engine.telemetry.snapshot()
        assert snapshot['serve_rejected_total{reason="shed"}'] > 0


class TestServer:
    def test_queue_limit_bounds_the_batcher(self, quad_network, quad_policy):
        od = next(iter(quad_policy.choices))

        async def run():
            control = OverloadControl(
                OverloadConfig(rate=float("inf"), queue_limit=8, queue_reserve=2)
            )
            engine = RequestEngine(
                quad_network, quad_policy, overload=control,
                batch=BatchConfig(max_batch=1000, max_latency=10.0),
            )
            server = ServeServer(engine)
            futures = [
                server.batcher.submit(AdmitRequest(id=i, od=od, time=0.0))
                for i in range(20)
            ]
            # Submissions past the hard limit were answered immediately.
            overflow = [f for f in futures if f.done()]
            assert len(overflow) == 12
            for future in overflow:
                decision = future.result()
                assert decision.reason == "shed"
                assert not decision.admitted
            assert engine.queue_depth == 8
            server.batcher.flush()
            queued = [await f for f in futures[:8]]
            assert all(d.reason != "shed" for d in queued)
            shed_counter = engine.telemetry.counter(
                "serve_rejected_total", reason="shed"
            )
            assert shed_counter.value == 12

        asyncio.run(run())

    def test_drain_refuses_new_requests(self, quad_network, quad_policy):
        od = next(iter(quad_policy.choices))

        async def run():
            engine = RequestEngine(quad_network, quad_policy)
            server = ServeServer(engine)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps({"op": "admit", "id": 1, "od": list(od)}).encode()
                + b"\n"
            )
            await writer.drain()
            first = json.loads(await reader.readline())
            assert first["admitted"] is True
            await server.drain()
            writer.write(
                json.dumps({"op": "admit", "id": 2, "od": list(od)}).encode()
                + b"\n"
            )
            await writer.drain()
            second = json.loads(await reader.readline())
            assert second["error"] == "draining"
            assert second["id"] == 2
            writer.close()
            await server.stop()
            assert engine.decisions_total == 1

        asyncio.run(run())

    def test_protocol_errors_are_answered_not_fatal(
        self, quad_network, quad_policy
    ):
        od = next(iter(quad_policy.choices))

        async def run():
            engine = RequestEngine(quad_network, quad_policy)
            async with ServeServer(engine) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                lines = [
                    b"not json\n",
                    json.dumps({"op": "warp", "id": 0}).encode() + b"\n",
                    json.dumps({"op": "admit", "id": 1, "od": [1]}).encode()
                    + b"\n",
                    json.dumps({"op": "ping"}).encode() + b"\n",
                    json.dumps(
                        {"op": "admit", "id": 2, "od": list(od)}
                    ).encode() + b"\n",
                ]
                writer.write(b"".join(lines))
                await writer.drain()
                answers = [
                    json.loads(await reader.readline()) for __ in lines
                ]
                writer.close()
            assert "malformed JSON" in answers[0]["error"]
            assert "unknown op" in answers[1]["error"]
            assert "origin, destination" in answers[2]["error"]
            assert answers[3] == {"op": "pong"}
            assert answers[4]["admitted"] in (True, False)

        asyncio.run(run())

    def test_metrics_op_round_trips(self, quad_network, quad_policy):
        od = next(iter(quad_policy.choices))

        async def run():
            engine = RequestEngine(quad_network, quad_policy)
            async with ServeServer(engine) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    json.dumps({"op": "admit", "id": 1, "od": list(od)}).encode()
                    + b"\n" + json.dumps({"op": "drain"}).encode() + b"\n"
                    + json.dumps({"op": "metrics"}).encode() + b"\n"
                )
                await writer.drain()
                await reader.readline()  # the admit decision
                drained = json.loads(await reader.readline())
                metrics = json.loads(await reader.readline())
                writer.close()
            assert drained == {"op": "drain", "ok": True}
            assert 'serve_decisions_total{tier="primary"} 1' in metrics["text"]
            assert metrics["snapshot"]['serve_decisions_total{tier="primary"}'] == 1.0

        asyncio.run(run())

    def test_parse_request_edges(self):
        with pytest.raises(ValueError, match="unknown op"):
            parse_request({"op": "nope"})
        with pytest.raises(ValueError, match="origin, destination"):
            parse_request({"op": "admit", "id": 1, "od": [1, 2, 3]})
        release = parse_request({"op": "release", "id": 9})
        assert isinstance(release, ReleaseRequest)
        assert release.time is None


class TestServerAbuseBounds:
    """Abusive or unlucky clients are bounded per connection: one error
    answer, then disconnect — and every such path must leave the engine
    serving subsequent clients."""

    @staticmethod
    async def _served(server, od, call_id) -> dict:
        """A fresh client gets a real decision — the engine still serves."""
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(
            json.dumps({"op": "admit", "id": call_id, "od": list(od)}).encode()
            + b"\n"
        )
        await writer.drain()
        answer = json.loads(await reader.readline())
        writer.close()
        assert answer["admitted"] in (True, False)
        return answer

    def test_config_validation(self, quad_network, quad_policy):
        engine = RequestEngine(quad_network, quad_policy)
        with pytest.raises(ValueError, match="read_timeout"):
            ServeServer(engine, read_timeout=0.0)
        with pytest.raises(ValueError, match="max_line_bytes"):
            ServeServer(engine, max_line_bytes=1)

    def test_oversized_line_disconnects_with_error(
        self, quad_network, quad_policy
    ):
        od = next(iter(quad_policy.choices))

        async def run():
            engine = RequestEngine(quad_network, quad_policy)
            async with ServeServer(engine, max_line_bytes=64) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b'{"op": "admit", "pad": "' + b"x" * 200 + b'"}\n')
                await writer.drain()
                answer = json.loads(await reader.readline())
                assert "exceeds 64 bytes" in answer["error"]
                assert await reader.readline() == b""  # disconnected
                writer.close()
                await self._served(server, od, call_id=1)

        asyncio.run(run())

    def test_idle_connection_times_out(self, quad_network, quad_policy):
        od = next(iter(quad_policy.choices))

        async def run():
            engine = RequestEngine(quad_network, quad_policy)
            async with ServeServer(engine, read_timeout=0.1) as server:
                reader, __ = await asyncio.open_connection(
                    server.host, server.port
                )
                # Send nothing: the stalled connection must be answered and
                # dropped, not hold its reader task forever.
                answer = json.loads(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                assert "idle past 0.1s" in answer["error"]
                assert await reader.readline() == b""
                await self._served(server, od, call_id=1)

        asyncio.run(run())

    def test_malformed_line_leaves_other_clients_served(
        self, quad_network, quad_policy
    ):
        od = next(iter(quad_policy.choices))

        async def run():
            engine = RequestEngine(quad_network, quad_policy)
            async with ServeServer(engine) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"{not json\n")
                await writer.drain()
                answer = json.loads(await reader.readline())
                assert "malformed JSON" in answer["error"]
                writer.close()
                await self._served(server, od, call_id=1)

        asyncio.run(run())

    def test_request_mid_drain_is_refused_but_backlog_flushes(
        self, quad_network, quad_policy
    ):
        od = next(iter(quad_policy.choices))

        async def run():
            engine = RequestEngine(
                quad_network, quad_policy,
                batch=BatchConfig(max_batch=1000, max_latency=30.0),
            )
            server = ServeServer(engine)
            await server.start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            # Queued but unflushed (the batch window is far away) ...
            writer.write(
                json.dumps({"op": "admit", "id": 1, "od": list(od)}).encode()
                + b"\n"
            )
            await writer.drain()
            while not server.batcher._pending:
                await asyncio.sleep(0)
            # ... when the drain starts: the backlog must still be decided,
            # while anything arriving after the drain is refused.
            await server.drain()
            flushed = json.loads(await reader.readline())
            assert flushed["admitted"] is True
            writer.write(
                json.dumps({"op": "admit", "id": 2, "od": list(od)}).encode()
                + b"\n"
            )
            await writer.drain()
            refused = json.loads(await reader.readline())
            assert refused["error"] == "draining"
            writer.close()
            await server.stop()
            assert engine.decisions_total == 1

        asyncio.run(run())

    def test_connection_reset_mid_batch_still_decides(
        self, quad_network, quad_policy
    ):
        od = next(iter(quad_policy.choices))

        async def run():
            engine = RequestEngine(
                quad_network, quad_policy,
                batch=BatchConfig(max_batch=1000, max_latency=0.02),
            )
            async with ServeServer(engine) as server:
                __, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    json.dumps({"op": "admit", "id": 1, "od": list(od)}).encode()
                    + b"\n"
                )
                await writer.drain()
                while not server.batcher._pending:
                    await asyncio.sleep(0)
                # Vanish before the batch flushes: the decision has nowhere
                # to go, but the batch must still be decided and the server
                # must keep serving everyone else.
                writer.transport.abort()
                await asyncio.sleep(0.05)
                assert engine.decisions_total == 1
                await self._served(server, od, call_id=2)
                assert engine.decisions_total == 2

        asyncio.run(run())


class TestEngineEdges:
    def test_release_unknown_and_duplicate_ids(self, quad_network, quad_policy):
        engine = RequestEngine(quad_network, quad_policy)
        od = next(iter(quad_policy.choices))
        ghost = engine.decide(ReleaseRequest(id="ghost"))
        assert ghost.reason == "unknown-call"
        assert not ghost.admitted
        first = engine.decide(AdmitRequest(id="c1", od=od))
        assert first.admitted
        duplicate = engine.decide(AdmitRequest(id="c1", od=od))
        assert duplicate.reason == "duplicate-call"
        release = engine.decide(ReleaseRequest(id="c1"))
        assert release.admitted and release.tier == "release"
        assert engine.state.occupancy.sum() == 0
        assert engine.telemetry.counter("serve_errors_total").value == 2

    def test_no_route_for_disconnected_pair(self, quad_network, quad_policy):
        engine = RequestEngine(quad_network, quad_policy)
        decision = engine.decide(AdmitRequest(id=1, od=(0, 0)))
        assert decision.reason == "no-route"

    def test_state_rejects_unsupported_discipline(
        self, nsfnet, nsfnet_table
    ):
        from repro.routing.shadow import OttKrishnanRouting

        loads = primary_link_loads(
            nsfnet, nsfnet_table, nsfnet_nominal_traffic()
        )
        policy = OttKrishnanRouting(nsfnet, nsfnet_table, loads)
        with pytest.raises(ValueError, match="serve supports disciplines"):
            NetworkState(nsfnet, policy)

    def test_admit_release_book_and_free(self, quad_network, quad_policy):
        state = NetworkState(quad_network, quad_policy)
        state.admit((0, 2), width=3)
        assert state.occupancy[0] == 3 and state.occupancy[2] == 3
        assert state.utilization() > 0
        state.release((0, 2), width=3)
        assert state.occupancy.sum() == 0


class TestAdaptation:
    def test_thresholds_refresh_on_schedule(self, quad_network, quad_policy):
        state = NetworkState(
            quad_network, quad_policy,
            adaptation=AdaptationConfig(update_interval=4.0, ewma_weight=0.5),
        )
        engine = RequestEngine(quad_network, quad_policy, state=state)
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        trace = generate_trace(traffic, duration=20.0, seed=9)
        replay_trace(engine, trace)
        times = [refresh.time for refresh in state.refreshes]
        assert times[0] == 0.0  # the cold-start level application
        assert times[1:] == [4.0, 8.0, 12.0, 16.0]
        # Links learn demand: the estimates move off the cold start and the
        # protection levels harden somewhere.
        assert state.refreshes[-1].estimated_loads.sum() > 0
        assert state.refreshes[-1].protection_levels.max() > 0

    def test_adaptation_requires_threshold_discipline(
        self, nsfnet, nsfnet_table
    ):
        traffic = nsfnet_nominal_traffic()
        loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
        policy = LengthAdaptiveControlledRouting(nsfnet, nsfnet_table, loads)
        with pytest.raises(ValueError, match="threshold"):
            NetworkState(nsfnet, policy, adaptation=AdaptationConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptationConfig(update_interval=0.0)
        with pytest.raises(ValueError):
            AdaptationConfig(ewma_weight=0.0)


class TestTelemetry:
    def test_counters_balance_the_decisions(
        self, quad_network, quad_policy, quad_trace
    ):
        engine = RequestEngine(quad_network, quad_policy)
        report = replay_trace(engine, quad_trace)
        snapshot = engine.telemetry.snapshot()
        admits = len(quad_trace.times)
        accounted = (
            snapshot['serve_decisions_total{tier="primary"}']
            + snapshot['serve_decisions_total{tier="alternate"}']
            + snapshot['serve_rejected_total{reason="blocked"}']
            + snapshot['serve_rejected_total{reason="no-route"}']
        )
        assert accounted == admits
        # Unknown-call releases (the blind release of a blocked call) answer
        # with tier "release" but only booked calls bump the counter.
        releases = sum(
            1 for d in report.decisions if d.tier == "release" and d.admitted
        )
        assert snapshot["serve_released_total"] == releases
        assert snapshot["serve_decision_seconds_count"] == len(report.decisions)

    def test_histogram_quantiles_and_counter_monotonicity(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.total == 5
        assert histogram.mean == pytest.approx(106.5 / 5)
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == float("inf")
        # A value equal to a bound lands in that bucket (Prometheus "le").
        exact = Histogram(buckets=(1.0, 2.0))
        exact.observe(1.0)
        assert exact.counts[0] == 1
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_render_text_format(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", tier="primary").inc(3)
        registry.gauge("depth").set(7)
        text = registry.render_text()
        assert 'requests_total{tier="primary"} 3' in text
        assert "depth 7" in text

    def test_publish_emits_jsonl_snapshot(
        self, tmp_path, quad_network, quad_policy, quad_trace
    ):
        from repro.lab.events import EventBus

        engine = RequestEngine(quad_network, quad_policy)
        bus = EventBus(tmp_path / "events.jsonl")
        engine.telemetry.bind(bus)
        replay_trace(engine, quad_trace)
        engine.publish_metrics(phase="test")
        bus.close()
        events = list(read_events(tmp_path / "events.jsonl"))
        assert [event["kind"] for event in events] == ["serve_metrics"]
        assert events[0]["phase"] == "test"
        assert events[0]['serve_decisions_total{tier="primary"}'] > 0


class TestAggregation:
    def test_aggregate_skips_warmup_and_releases(self, quad_trace):
        decisions = [
            Decision(
                id=call,
                admitted=True,
                route=(0,),
                tier="primary",
                reason=None,
            )
            for call in range(len(quad_trace.times))
        ]
        result = aggregate_decisions(quad_trace, decisions, warmup=WARMUP)
        measured = int((quad_trace.times >= WARMUP).sum())
        assert result.total_offered == measured
        assert result.total_blocked == 0
        assert result.primary_carried == measured

    def test_every_loss_reason_counts_as_blocked(self, quad_trace):
        reasons = ("blocked", "no-route", "shed", "degraded")
        decisions = [
            Decision(
                id=call,
                admitted=False,
                route=None,
                tier="none",
                reason=reasons[call % len(reasons)],
            )
            for call in range(len(quad_trace.times))
        ]
        result = aggregate_decisions(quad_trace, decisions, warmup=WARMUP)
        assert result.total_blocked == result.total_offered
        assert result.network_blocking == 1.0
