"""Property-based tests (hypothesis) on core invariants across the stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.erlang import erlang_b, erlang_b_sequence, generalized_erlang_b
from repro.core.markov import link_chain
from repro.core.protection import displacement_bound, min_protection_level
from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.dalfar import dalfar_routes
from repro.topology.generators import random_mesh
from repro.topology.paths import (
    build_path_table,
    k_shortest_paths,
    min_hop_path,
    simple_paths_by_length,
)
from repro.traffic.generators import uniform_traffic


loads = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)
capacities = st.integers(min_value=1, max_value=200)


class TestErlangProperties:
    @settings(max_examples=100, deadline=None)
    @given(load=loads, capacity=capacities)
    def test_blocking_in_unit_interval(self, load, capacity):
        assert 0.0 <= erlang_b(load, capacity) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(load=st.floats(min_value=0.01, max_value=300.0), capacity=capacities)
    def test_sequence_decreasing_in_capacity(self, load, capacity):
        seq = erlang_b_sequence(load, capacity)
        assert (np.diff(seq) <= 1e-15).all()

    @settings(max_examples=60, deadline=None)
    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50
        )
    )
    def test_generalized_blocking_in_unit_interval(self, rates):
        assert 0.0 <= generalized_erlang_b(rates) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        load=st.floats(min_value=0.01, max_value=300.0),
        capacity=st.integers(min_value=1, max_value=100),
    )
    def test_generalized_equals_classical_for_constant_rates(self, load, capacity):
        assert generalized_erlang_b([load] * capacity) == pytest.approx(
            erlang_b(load, capacity), rel=1e-9
        )


class TestChainProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        rate=st.floats(min_value=0.01, max_value=100.0),
        capacity=st.integers(min_value=1, max_value=60),
    )
    def test_stationary_distribution_normalizes(self, rate, capacity):
        pi = link_chain(rate, capacity).stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    @settings(max_examples=50, deadline=None)
    @given(
        rate=st.floats(min_value=0.01, max_value=100.0),
        capacity=st.integers(min_value=2, max_value=60),
    )
    def test_passage_times_positive_and_increasing(self, rate, capacity):
        tau = link_chain(rate, capacity).upward_passage_times()
        assert (tau > 0).all()
        # Climbing from a higher state takes longer in an M/M/C/C chain.
        assert (np.diff(tau) > 0).all()


class TestProtectionProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        load=st.floats(min_value=0.0, max_value=300.0),
        capacity=st.integers(min_value=1, max_value=150),
        hops=st.integers(min_value=1, max_value=50),
    )
    def test_selected_level_valid_and_sufficient(self, load, capacity, hops):
        r = min_protection_level(load, capacity, hops)
        assert 0 <= r <= capacity
        if r < capacity:
            assert displacement_bound(load, capacity, r) <= 1.0 / hops + 1e-12


class TestTopologyProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(min_value=3, max_value=9),
        extra=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_min_hop_paths_are_valid_and_minimal(self, num_nodes, extra, seed):
        net = random_mesh(num_nodes, extra, 1, seed=seed)
        for dst in range(1, num_nodes):
            path = min_hop_path(net, 0, dst)
            assert path is not None
            assert net.is_valid_path(path)
            pool = simple_paths_by_length(net, 0, dst)
            assert len(path) == len(pool[0])

    @settings(max_examples=15, deadline=None)
    @given(
        num_nodes=st.integers(min_value=3, max_value=8),
        extra=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_k_shortest_is_prefix_of_enumeration(self, num_nodes, extra, seed, k):
        net = random_mesh(num_nodes, extra, 1, seed=seed)
        dst = num_nodes - 1
        full = simple_paths_by_length(net, 0, dst)
        assert k_shortest_paths(net, 0, dst, k) == full[: min(k, len(full))]

    @settings(max_examples=15, deadline=None)
    @given(
        num_nodes=st.integers(min_value=3, max_value=8),
        extra=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
        max_hops=st.integers(min_value=1, max_value=7),
    )
    def test_dalfar_equals_centralized(self, num_nodes, extra, seed, max_hops):
        net = random_mesh(num_nodes, extra, 1, seed=seed)
        dst = num_nodes - 1
        assert dalfar_routes(net, 0, dst, max_hops) == simple_paths_by_length(
            net, 0, dst, max_hops
        )


class TestSimulationProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=10.0, max_value=120.0),
    )
    def test_accounting_identity(self, quad_network, quad_table, seed, load):
        traffic = uniform_traffic(4, load)
        trace = generate_trace(traffic, 15.0, seed)
        for policy in (
            SinglePathRouting(quad_network, quad_table),
            UncontrolledAlternateRouting(quad_network, quad_table),
        ):
            result = simulate(quad_network, policy, trace, warmup=5.0)
            carried = result.primary_carried + result.alternate_carried
            assert carried + result.total_blocked == result.total_offered

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_full_protection_equals_single_path(self, quad_network, quad_table, seed):
        traffic = uniform_traffic(4, 100.0)
        loads_arr = np.full(quad_network.num_links, 100.0)
        full = np.array([l.capacity for l in quad_network.links], dtype=np.int64)
        controlled = ControlledAlternateRouting(
            quad_network, quad_table, loads_arr, protection_override=full
        )
        single = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 15.0, seed)
        a = simulate(quad_network, controlled, trace, warmup=5.0)
        b = simulate(quad_network, single, trace, warmup=5.0)
        assert np.array_equal(a.blocked, b.blocked)


class TestMultirateProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        load1=st.floats(min_value=0.0, max_value=50.0),
        load2=st.floats(min_value=0.0, max_value=20.0),
        bandwidth=st.integers(min_value=1, max_value=8),
        capacity=st.integers(min_value=1, max_value=60),
    )
    def test_kaufman_roberts_is_a_distribution(self, load1, load2, bandwidth, capacity):
        from repro.core.multirate import TrafficClass, kaufman_roberts_distribution

        classes = [TrafficClass("a", load1, 1), TrafficClass("b", load2, bandwidth)]
        q = kaufman_roberts_distribution(classes, capacity)
        assert q.shape == (capacity + 1,)
        assert (q >= 0).all()
        assert q.sum() == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        load=st.floats(min_value=0.1, max_value=80.0),
        capacity=st.integers(min_value=2, max_value=100),
        b_small=st.integers(min_value=1, max_value=4),
        extra=st.integers(min_value=1, max_value=4),
    )
    def test_wider_class_blocks_at_least_as_much(self, load, capacity, b_small, extra):
        from repro.core.multirate import TrafficClass, multirate_blocking

        b_large = b_small + extra
        classes = [
            TrafficClass("small", load, b_small),
            TrafficClass("large", load / 2, b_large),
        ]
        blocking = multirate_blocking(classes, capacity)
        assert blocking["large"] >= blocking["small"] - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        unit_load=st.floats(min_value=0.0, max_value=200.0),
        capacity=st.integers(min_value=1, max_value=120),
        hops=st.integers(min_value=1, max_value=12),
        bandwidth=st.integers(min_value=1, max_value=6),
    )
    def test_multirate_protection_valid_and_monotone(
        self, unit_load, capacity, hops, bandwidth
    ):
        from repro.core.multirate import multirate_protection_level

        r = multirate_protection_level(unit_load, capacity, hops, bandwidth)
        assert 0 <= r <= capacity
        wider = multirate_protection_level(unit_load, capacity, hops, bandwidth + 1)
        assert wider >= r


class TestProfileProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        at=st.floats(min_value=1.0, max_value=49.0),
        before=st.floats(min_value=0.0, max_value=3.0),
        after=st.floats(min_value=0.0, max_value=3.0),
        query=st.floats(min_value=0.0, max_value=50.0),
    )
    def test_step_profile_scale_lookup(self, at, before, after, query):
        from repro.traffic.profiles import LoadProfile

        profile = LoadProfile.step(at=at, before=before, after=after)
        expected = before if query < at else after
        assert profile.scale_at(query) == expected
        assert profile.max_scale == max(before, after)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_nonstationary_trace_is_valid(self, seed):
        from repro.traffic.matrix import TrafficMatrix
        from repro.traffic.profiles import LoadProfile, generate_nonstationary_trace

        traffic = TrafficMatrix({(0, 1): 20.0}, num_nodes=2)
        profile = LoadProfile.day_night(10.0, 1.0, 0.2, 40.0)
        trace = generate_nonstationary_trace(traffic, profile, 40.0, seed)
        assert (np.diff(trace.times) >= 0).all()
        assert (trace.holding_times > 0).all()
        assert trace.times.size == 0 or 0 <= trace.times[0] <= trace.times[-1] <= 40.0


class TestCalibrationProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        scale=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_calibration_recovers_link_loads(self, seed, scale):
        from repro.topology.generators import random_mesh
        from repro.topology.paths import build_path_table
        from repro.traffic.calibration import calibrate_traffic
        from repro.traffic.demand import loads_by_endpoints, primary_link_loads
        from repro.traffic.generators import random_traffic

        net = random_mesh(6, 3, 10, seed=seed)
        table = build_path_table(net)
        truth = random_traffic(6, mean=scale, seed=seed)
        targets = loads_by_endpoints(net, primary_link_loads(net, table, truth))
        result = calibrate_traffic(net, targets)
        recovered = loads_by_endpoints(
            net, primary_link_loads(net, table, result.traffic)
        )
        for endpoints, value in targets.items():
            assert recovered[endpoints] == pytest.approx(value, abs=1e-6)
