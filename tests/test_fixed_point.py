"""Tests for the Erlang fixed-point (reduced-load) approximation."""

from __future__ import annotations

import pytest

from repro.analysis.fixed_point import erlang_fixed_point
from repro.core.erlang import erlang_b
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import line
from repro.topology.paths import build_path_table
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix


class TestFixedPoint:
    def test_single_link_is_exact(self):
        net = line(2, 10)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 1): 7.0}, num_nodes=2)
        result = erlang_fixed_point(net, table, traffic)
        assert result.converged
        assert result.network_blocking == pytest.approx(erlang_b(7.0, 10), rel=1e-8)

    def test_two_hop_reduced_load(self):
        # 0-1-2 chain with traffic only 0->2: both links see the same thinned
        # load; the fixed point satisfies B = ErlangB(T*(1-B), C).
        net = line(3, 5)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 2): 6.0})
        result = erlang_fixed_point(net, table, traffic)
        forward = [l.index for l in net.links if l.endpoints in ((0, 1), (1, 2))]
        b1, b2 = (result.link_blocking[i] for i in forward)
        assert b1 == pytest.approx(b2, rel=1e-6)
        assert b1 == pytest.approx(erlang_b(6.0 * (1 - b1), 5), rel=1e-6)
        # Path blocking combines both links.
        assert result.pair_blocking[(0, 2)] == pytest.approx(1 - (1 - b1) ** 2, rel=1e-6)

    def test_zero_traffic(self):
        net = line(2, 4)
        table = build_path_table(net)
        import numpy as np

        traffic = TrafficMatrix(np.zeros((2, 2)))
        result = erlang_fixed_point(net, table, traffic)
        assert result.network_blocking == 0.0
        assert (result.link_blocking == 0.0).all()

    def test_matches_simulation_at_moderate_load(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 90.0)
        approx = erlang_fixed_point(quad_network, quad_table, traffic)
        policy = SinglePathRouting(quad_network, quad_table)
        values = []
        for seed in range(6):
            trace = generate_trace(traffic, 110.0, seed)
            values.append(simulate(quad_network, policy, trace).network_blocking)
        simulated = sum(values) / len(values)
        assert approx.network_blocking == pytest.approx(simulated, rel=0.25)

    def test_demand_without_path_rejected(self):
        net = line(2, 4)
        net.fail_duplex_link(0, 1)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 1): 1.0})
        with pytest.raises(ValueError):
            erlang_fixed_point(net, table, traffic)

    def test_bad_damping_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        with pytest.raises(ValueError):
            erlang_fixed_point(quad_network, quad_table, traffic, damping=0.0)

    def test_blocking_monotone_in_load(self, quad_network, quad_table):
        values = [
            erlang_fixed_point(
                quad_network, quad_table, uniform_traffic(4, load)
            ).network_blocking
            for load in (50.0, 80.0, 110.0)
        ]
        assert values[0] < values[1] < values[2]
