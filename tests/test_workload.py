"""Tests for repro.traffic.workload: the time-varying/adversarial layer.

The contract under test is replayability end to end: the same
``(workload, seed)`` pair must regenerate a bit-identical trace, that
trace must drive identical decisions through the simulator and the
serving plane, per-O-D-pair substreams must isolate one pair's profile
change from everyone else's arrivals, the adversarial injector must be
seeded and mass-conserving, and the workload must be part of the lab's
content-addressed cache keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import LabConfig, Scenario, run_study
from repro.experiments.runner import ReplicationConfig
from repro.lab.hashing import scenario_signature
from repro.traffic.generators import uniform_traffic
from repro.traffic.profiles import LoadProfile
from repro.traffic.workload import (
    WORKLOAD_NAMES,
    Workload,
    adversarial_workload,
    alternate_overlap_scores,
    build_workload,
    diurnal,
    flash_crowd,
    generate_workload_trace,
    parse_workload_spec,
    regional_surge,
)

CONFIG = ReplicationConfig(measured_duration=8.0, warmup=2.0, seeds=(0, 1))


@pytest.fixture(scope="module")
def quad_traffic(quad_network):
    return uniform_traffic(quad_network.num_nodes, 55.0)


class TestWorkloadObject:
    def test_profiles_sorted_and_deduplicated(self):
        surge = LoadProfile.pulse(start=5.0, end=10.0, scale=2.0)
        w = Workload(name="w", profiles=(((1, 0), surge), ((0, 1), surge)))
        assert [od for od, __ in w.profiles] == [(0, 1), (1, 0)]
        with pytest.raises(ValueError):
            Workload(name="w", profiles=(((0, 1), surge), ((0, 1), surge)))

    def test_profile_for_falls_back_to_default(self):
        surge = LoadProfile.pulse(start=5.0, end=10.0, scale=2.0)
        w = Workload(name="w", profiles=(((0, 1), surge),))
        assert w.scale_at((0, 1), 7.0) == 2.0
        assert w.scale_at((2, 3), 7.0) == 1.0

    def test_overlay_multiplies_pointwise(self):
        a = flash_crowd(4, horizon=40.0, target=0, peak_scale=2.0)
        b = diurnal(4, horizon=40.0, peak=1.5, trough=0.5)
        combined = a.overlay(b)
        assert combined.name == f"{a.name}+{b.name}"
        for od in ((0, 1), (3, 2)):
            for t in (0.0, 17.0, 33.0):
                assert combined.scale_at(od, t) == pytest.approx(
                    a.scale_at(od, t) * b.scale_at(od, t)
                )

    def test_shift_time_is_earliest_breakpoint(self):
        w = flash_crowd(4, horizon=40.0, start=14.0)
        assert w.shift_time == 14.0
        stationary = Workload(name="flat", profiles=())
        assert stationary.shift_time is None

    def test_signature_is_stable_and_discriminating(self):
        a = flash_crowd(4, horizon=40.0)
        b = flash_crowd(4, horizon=40.0)
        assert a.signature() == b.signature()
        assert a.signature() != flash_crowd(4, horizon=40.0, peak_scale=9.9).signature()


class TestSpecParsing:
    def test_known_names(self):
        for name in WORKLOAD_NAMES:
            assert name in ("stationary", "diurnal", "flash-crowd",
                            "regional-surge", "adversarial")
        name, __ = parse_workload_spec("diurnal")
        assert name == "diurnal"
        assert parse_workload_spec("adversarial:7") == ("adversarial", 7)

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ValueError, match="flash-crowd"):
            parse_workload_spec("bogus")

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            parse_workload_spec("adversarial:x")
        with pytest.raises(ValueError):
            parse_workload_spec("adversarial:-1")

    def test_stationary_resolves_to_none(self, quad_network, quad_table,
                                         quad_traffic):
        assert build_workload(
            "stationary", network=quad_network, table=quad_table,
            traffic=quad_traffic, horizon=20.0,
        ) is None

    def test_scenario_rejects_bad_spec_at_construction(self):
        with pytest.raises(ValueError, match="workload"):
            Scenario(topology="quadrangle", traffic=55.0, workload="bogus")


class TestTraceGeneration:
    def test_same_workload_and_seed_is_bit_identical(self, quad_traffic):
        w = flash_crowd(4, horizon=20.0)
        a = generate_workload_trace(quad_traffic, w, 20.0, seed=5)
        b = generate_workload_trace(quad_traffic, w, 20.0, seed=5)
        for field in ("times", "od_index", "holding_times", "uniforms"):
            assert np.array_equal(getattr(a, field), getattr(b, field))
        c = generate_workload_trace(quad_traffic, w, 20.0, seed=6)
        assert not np.array_equal(a.times, c.times)

    def test_per_pair_substreams_isolate_profile_changes(self, quad_traffic):
        # Surging node 0's pairs must leave every pair not touching node 0
        # bit-identical: each O-D pair owns a named substream.
        flat = Workload(name="flat", profiles=())
        surged = flash_crowd(4, horizon=20.0, target=0, peak_scale=3.0)
        base = generate_workload_trace(quad_traffic, flat, 20.0, seed=9)
        bumped = generate_workload_trace(quad_traffic, surged, 20.0, seed=9)
        pairs = [od for od, __ in quad_traffic.positive_pairs()]
        untouched = [i for i, od in enumerate(pairs) if 0 not in od]
        assert untouched
        for index in untouched:
            assert np.array_equal(
                base.times[base.od_index == index],
                bumped.times[bumped.od_index == index],
            )
            assert np.array_equal(
                base.holding_times[base.od_index == index],
                bumped.holding_times[bumped.od_index == index],
            )

    def test_flash_crowd_concentrates_mass_on_target(self, quad_traffic):
        w = flash_crowd(4, horizon=40.0, target=0, start=10.0, peak_scale=3.0)
        trace = generate_workload_trace(quad_traffic, w, 40.0, seed=2)
        pairs = [od for od, __ in quad_traffic.positive_pairs()]
        target = [i for i, od in enumerate(pairs) if 0 in od]
        in_surge = (trace.times >= 15.0) & (trace.times < 40.0)
        surge_mask = np.isin(trace.od_index, target)
        before = int(np.count_nonzero(surge_mask & (trace.times < 10.0)))
        during = int(np.count_nonzero(surge_mask & in_surge))
        rate_before = before / 10.0
        rate_during = during / 25.0
        assert rate_during > 1.5 * rate_before


class TestAdversarialInjector:
    def test_deterministic_per_seed(self, quad_network, quad_table,
                                    quad_traffic):
        a = adversarial_workload(quad_network, quad_table, quad_traffic,
                                 horizon=40.0, seed=3)
        b = adversarial_workload(quad_network, quad_table, quad_traffic,
                                 horizon=40.0, seed=3)
        assert a.signature() == b.signature()
        c = adversarial_workload(quad_network, quad_table, quad_traffic,
                                 horizon=40.0, seed=4)
        assert a.signature() != c.signature()

    def test_mass_conservation_per_epoch(self, quad_network, quad_table,
                                         quad_traffic):
        w = adversarial_workload(quad_network, quad_table, quad_traffic,
                                 horizon=40.0, seed=0)
        pairs_demands = list(quad_traffic.positive_pairs())
        total = sum(d for __, d in pairs_demands)
        for t in (1.0, 11.0, 21.0, 31.0):
            offered = sum(d * w.scale_at(od, t) for od, d in pairs_demands)
            assert offered == pytest.approx(total, rel=1e-9)

    def test_targets_have_high_overlap_scores(self, quad_network, quad_table,
                                              quad_traffic):
        scores = alternate_overlap_scores(quad_network, quad_table,
                                          quad_traffic)
        w = adversarial_workload(quad_network, quad_table, quad_traffic,
                                 horizon=40.0, seed=0, surge=3.0)
        surged = {od for od, p in w.profiles if p.max_scale > 1.0}
        assert surged
        floor = sorted(scores.values())[len(scores) // 2]
        assert all(scores[od] >= floor for od in surged)


class TestScenarioIntegration:
    def test_make_trace_matches_generate_workload_trace(self, quad_traffic):
        scenario = Scenario(topology="quadrangle", traffic=55.0,
                            policy="controlled", workload="flash-crowd")
        workload = scenario.resolved_workload(20.0)
        direct = generate_workload_trace(
            scenario.traffic_matrix, workload, 20.0, seed=1
        )
        via_scenario = scenario.make_trace(20.0, seed=1)
        assert np.array_equal(direct.times, via_scenario.times)
        assert np.array_equal(direct.od_index, via_scenario.od_index)

    def test_serving_plane_reproduces_simulator_on_nonstationary_trace(self):
        from repro.serve import RequestEngine, replay_trace
        from repro.sim.simulator import simulate

        scenario = Scenario(topology="quadrangle", traffic=55.0,
                            policy="controlled", workload="flash-crowd")
        trace = scenario.make_trace(20.0, seed=4)
        policy = scenario.build_policy("controlled")
        reference = simulate(scenario.network, policy, trace, warmup=5.0)
        report = replay_trace(
            RequestEngine(scenario.network, policy), trace, warmup=5.0
        )
        assert np.array_equal(report.result.offered, reference.offered)
        assert np.array_equal(report.result.blocked, reference.blocked)
        assert reference.total_blocked > 0

    def test_regime_shift_report_is_deterministic(self):
        from repro.serve.loadgen import measure_regime_shift
        from repro.serve.state import AdaptationConfig

        scenario = Scenario(topology="quadrangle", traffic=55.0,
                            policy="controlled", workload="flash-crowd")
        workload = scenario.resolved_workload(20.0)
        trace = scenario.make_trace(20.0, seed=4)
        policy = scenario.build_policy("controlled")
        adapt = AdaptationConfig(update_interval=4.0, ewma_weight=0.3)
        kwargs = dict(shift_time=workload.shift_time, adaptation=adapt,
                      warmup=5.0)
        first = measure_regime_shift(scenario.network, policy, trace, **kwargs)
        second = measure_regime_shift(scenario.network, policy, trace, **kwargs)
        assert first["decisions_sha256"] == second["decisions_sha256"]
        assert first["recompute_count"] > 0
        assert first["time_to_reconverge"] is not None
        static = measure_regime_shift(
            scenario.network, policy, trace,
            shift_time=workload.shift_time, adaptation=None, warmup=5.0,
        )
        assert static["time_to_reconverge"] is None
        assert static["decisions_sha256"] != ""


class TestLabCacheKeys:
    def _scenario(self, workload):
        return Scenario(topology="quadrangle", traffic=55.0,
                        policy="controlled", workload=workload)

    def test_workload_enters_scenario_signature(self):
        import json

        signatures = [
            json.dumps(scenario_signature(self._scenario(w)), sort_keys=True)
            for w in (None, "flash-crowd", "adversarial:0", "adversarial:1")
        ]
        assert len(set(signatures)) == 4
        # No workload means no key at all: historical cache entries made
        # before the workload field existed stay valid.
        assert "workload" not in scenario_signature(self._scenario(None))

    def test_second_pass_is_cached_and_workload_change_invalidates(
        self, tmp_path
    ):
        lab = LabConfig(store=tmp_path)
        scenario = self._scenario("flash-crowd")
        first = run_study(scenario, config=CONFIG, lab=lab)
        assert first.lab.cache_hits == 0
        second = run_study(scenario, config=CONFIG, lab=lab)
        assert second.lab.cache_hits == second.lab.total_jobs
        assert second.stat == first.stat
        shifted = run_study(self._scenario("adversarial:0"), config=CONFIG,
                            lab=lab)
        assert shifted.lab.cache_hits == 0
        assert shifted.lab.simulated == len(CONFIG.seeds)

    def test_lab_run_matches_direct_run(self, tmp_path):
        scenario = self._scenario("flash-crowd")
        direct = run_study(scenario, config=CONFIG)
        labbed = run_study(scenario, config=CONFIG,
                           lab=LabConfig(store=tmp_path))
        assert labbed.stat == direct.stat


class TestRegistryAndCli:
    def test_exp_adv_registered_with_job_graph(self):
        from repro.experiments.registry import EXPERIMENTS, experiment_job_graph

        assert "EXP-ADV" in EXPERIMENTS
        jobs = experiment_job_graph("EXP-ADV")
        specs = {scenario.workload for scenario, __ in jobs}
        assert None in specs  # the stationary control
        assert any(isinstance(s, str) and s.startswith("adversarial")
                   for s in specs)

    def test_alias_resolves(self):
        from repro.experiments.registry import experiment_job_graph

        assert experiment_job_graph("adversarial-load") == \
            experiment_job_graph("EXP-ADV")

    def test_unknown_experiment_names_the_known_ids(self):
        from repro.experiments.registry import experiment_job_graph

        with pytest.raises(KeyError, match="EXP-ADV"):
            experiment_job_graph("nope")

    def test_cli_rejects_unknown_workload_with_usable_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="flash-crowd"):
            main(["serve", "replay", "--topology", "quadrangle",
                  "--traffic", "55", "--workload", "bogus",
                  "--duration", "5"])

    def test_cli_rejects_unknown_experiment_with_usable_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="EXP-ADV"):
            main(["experiment", "nope"])

    def test_regional_surge_and_diurnal_cover_all_pairs(self, quad_traffic):
        for w in (regional_surge(4, horizon=40.0), diurnal(4, horizon=40.0)):
            trace = generate_workload_trace(quad_traffic, w, 40.0, seed=0)
            assert trace.num_calls > 0
            assert (np.diff(trace.times) >= 0).all()
