"""Tests for network/traffic JSON I/O and the CLI evaluate command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.topology.generators import quadrangle
from repro.topology.graph import Network
from repro.topology.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.topology.nsfnet import nsfnet_backbone
from repro.traffic.generators import uniform_traffic
from repro.traffic.io import (
    load_traffic,
    save_traffic,
    traffic_from_dict,
    traffic_to_dict,
)
from repro.traffic.matrix import TrafficMatrix


class TestNetworkIO:
    def test_roundtrip_preserves_structure(self, tmp_path):
        original = nsfnet_backbone()
        path = tmp_path / "net.json"
        save_network(path, original)
        restored = load_network(path)
        assert restored.num_nodes == original.num_nodes
        assert [l.endpoints for l in restored.links] == [
            l.endpoints for l in original.links
        ]
        assert [l.capacity for l in restored.links] == [
            l.capacity for l in original.links
        ]
        assert restored.node_name(0) == original.node_name(0)

    def test_duplex_declaration(self):
        document = {
            "num_nodes": 2,
            "links": [{"a": 0, "b": 1, "capacity": 7, "duplex": True}],
        }
        network = network_from_dict(document)
        assert network.num_links == 2
        assert network.has_link(0, 1)
        assert network.has_link(1, 0)

    def test_default_names_omitted(self):
        document = network_to_dict(quadrangle(10))
        assert "node_names" not in document

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            network_from_dict({})
        with pytest.raises(ValueError):
            network_from_dict({"num_nodes": 2, "links": [{"capacity": 1}]})
        with pytest.raises(ValueError):
            network_from_dict(
                {"num_nodes": 2, "links": [{"capacity": 1, "duplex": True}]}
            )


class TestTrafficIO:
    def test_roundtrip(self, tmp_path):
        original = TrafficMatrix({(0, 1): 2.5, (2, 0): 1.25}, num_nodes=3)
        path = tmp_path / "traffic.json"
        save_traffic(path, original)
        assert load_traffic(path) == original

    def test_sparse_representation(self):
        document = traffic_to_dict(TrafficMatrix({(0, 1): 1.0}, num_nodes=5))
        assert document["num_nodes"] == 5
        assert document["demands"] == [[0, 1, 1.0]]

    def test_malformed_entries_rejected(self):
        with pytest.raises(ValueError):
            traffic_from_dict({})
        with pytest.raises(ValueError):
            traffic_from_dict({"num_nodes": 3, "demands": [[0, 1]]})


class TestShippedDataFiles:
    def test_nsfnet_files_consistent(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        network = load_network(repo / "data" / "nsfnet_t3.json")
        traffic = load_traffic(repo / "data" / "nsfnet_nominal_traffic.json")
        assert network.num_nodes == 12
        assert network.num_links == 30
        assert traffic.num_nodes == 12
        assert traffic.total == pytest.approx(1015.6, abs=1.0)

    def test_quadrangle_files_consistent(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        network = load_network(repo / "data" / "quadrangle.json")
        traffic = load_traffic(repo / "data" / "quadrangle_90E.json")
        assert network.num_links == 12
        assert traffic.demand(0, 1) == 90.0


class TestEvaluateCommand:
    def test_evaluate_runs(self, tmp_path, capsys):
        network = Network(3)
        network.add_duplex_link(0, 1, 10)
        network.add_duplex_link(1, 2, 10)
        network.add_duplex_link(0, 2, 10)
        save_network(tmp_path / "net.json", network)
        save_traffic(tmp_path / "traffic.json", uniform_traffic(3, 6.0))
        code = main(
            [
                "evaluate",
                "--network", str(tmp_path / "net.json"),
                "--traffic", str(tmp_path / "traffic.json"),
                "--seeds", "1",
                "--duration", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "controlled" in out
        assert "Erlang cut-set lower bound" in out

    def test_evaluate_rejects_size_mismatch(self, tmp_path):
        network = Network(3)
        network.add_duplex_link(0, 1, 10)
        save_network(tmp_path / "net.json", network)
        save_traffic(tmp_path / "traffic.json", uniform_traffic(4, 1.0))
        with pytest.raises(SystemExit):
            main(
                [
                    "evaluate",
                    "--network", str(tmp_path / "net.json"),
                    "--traffic", str(tmp_path / "traffic.json"),
                    "--seeds", "1",
                    "--duration", "5",
                ]
            )
