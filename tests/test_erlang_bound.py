"""Tests for the cut-set Erlang lower bound."""

from __future__ import annotations

import pytest

from repro.analysis.erlang_bound import (
    cut_bound_term,
    erlang_bound,
    single_node_cut_bound,
)
from repro.core.erlang import erlang_b
from repro.routing.single_path import SinglePathRouting
from repro.routing.alternate import UncontrolledAlternateRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import fully_connected, line
from repro.topology.graph import Network
from repro.topology.paths import build_path_table
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix


class TestCutBoundTerm:
    def test_two_node_network_is_exact_erlang(self):
        net = line(2, 10)
        traffic = TrafficMatrix({(0, 1): 8.0, (1, 0): 4.0})
        term = cut_bound_term(net, traffic, {0})
        expected = (8.0 / 12.0) * erlang_b(8.0, 10) + (4.0 / 12.0) * erlang_b(4.0, 10)
        assert term == pytest.approx(expected)

    def test_improper_cut_rejected(self):
        net = line(2, 10)
        traffic = TrafficMatrix({(0, 1): 1.0})
        with pytest.raises(ValueError):
            cut_bound_term(net, traffic, set())
        with pytest.raises(ValueError):
            cut_bound_term(net, traffic, {0, 1})

    def test_zero_traffic(self):
        net = line(2, 10)
        import numpy as np

        traffic = TrafficMatrix(np.zeros((2, 2)))
        assert cut_bound_term(net, traffic, {0}) == 0.0

    def test_capacity_across_cut_pools_links(self):
        # Two parallel disjoint routes across the cut pool their capacity.
        net = Network(4)
        net.add_link(0, 2, 5)
        net.add_link(1, 3, 5)
        traffic = TrafficMatrix({(0, 2): 8.0, (1, 3): 8.0})
        term = cut_bound_term(net, traffic, {0, 1})
        assert term == pytest.approx(erlang_b(16.0, 10))


class TestErlangBound:
    def test_exhaustive_at_least_single_node(self, nsfnet):
        from repro.traffic.calibration import nsfnet_nominal_traffic

        traffic = nsfnet_nominal_traffic()
        assert erlang_bound(nsfnet, traffic) >= single_node_cut_bound(nsfnet, traffic)

    def test_monotone_in_load(self, quad_network):
        values = [
            erlang_bound(quad_network, uniform_traffic(4, load))
            for load in (60.0, 80.0, 100.0, 120.0)
        ]
        assert all(b2 > b1 for b1, b2 in zip(values, values[1:]))

    def test_large_networks_rejected(self):
        net = fully_connected(23, 1)
        traffic = uniform_traffic(23, 1.0)
        with pytest.raises(ValueError):
            erlang_bound(net, traffic)

    def test_failed_links_reduce_cut_capacity(self, quad_network):
        traffic = uniform_traffic(4, 90.0)
        baseline = erlang_bound(quad_network, traffic)
        failed = quad_network.copy()
        failed.fail_duplex_link(0, 1)
        assert erlang_bound(failed, traffic) > baseline


class TestBoundIsALowerBound:
    @pytest.mark.parametrize("policy_cls", [SinglePathRouting, UncontrolledAlternateRouting])
    def test_simulated_blocking_respects_bound(self, quad_network, quad_table, policy_cls):
        # Statistical check at heavy load where both sides are well away
        # from zero: no scheme may beat the Erlang bound systematically.
        traffic = uniform_traffic(4, 110.0)
        bound = erlang_bound(quad_network, traffic)
        policy = policy_cls(quad_network, quad_table)
        values = []
        for seed in range(4):
            trace = generate_trace(traffic, 60.0, seed)
            values.append(simulate(quad_network, policy, trace).network_blocking)
        mean = sum(values) / len(values)
        assert mean >= bound * 0.95
