"""Numeric verification of Theorem 1, including hypothesis property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protection import displacement_bound
from repro.core.theorem import (
    displacement_profile,
    exact_displacement,
    verify_theorem1,
)


class TestExactDisplacement:
    def test_protected_state_displaces_nothing(self):
        # An alternate call arriving in a protected state is rejected, so its
        # "acceptance displacement" is zero by convention.
        assert exact_displacement(5.0, 10, 3, [1.0] * 10, state=8) == 0.0
        assert exact_displacement(5.0, 10, 3, [1.0] * 10, state=7) == 0.0

    def test_acceptable_state_displaces_positively(self):
        value = exact_displacement(5.0, 10, 3, [1.0] * 10, state=4)
        assert value > 0.0

    def test_zero_primary_rate_displaces_nothing(self):
        assert exact_displacement(0.0, 10, 0, [3.0] * 10, state=2) == 0.0

    def test_displacement_grows_with_state(self):
        # Higher occupancy at acceptance -> sooner and likelier blocking.
        profile = displacement_profile(8.0, 10, 0, [0.5] * 10)
        assert (np.diff(profile) > 0).all()

    def test_profile_length(self):
        assert displacement_profile(5.0, 10, 4, [1.0] * 10).shape == (6,)
        assert displacement_profile(5.0, 10, 10, [1.0] * 10).shape == (0,)

    def test_invalid_state_rejected(self):
        with pytest.raises(ValueError):
            exact_displacement(1.0, 5, 0, [1.0], state=6)


class TestVerifyTheorem1:
    def test_fully_protected_link_trivially_holds(self):
        check = verify_theorem1(150.0, 100, 100, [50.0] * 100)
        assert check.worst_displacement == 0.0
        assert check.holds

    def test_moderate_scenario_holds_with_slack(self):
        check = verify_theorem1(70.0, 100, 7, [10.0] * 100)
        assert check.holds
        assert check.slack > 0.0

    def test_nu_above_demand_rejected(self):
        with pytest.raises(ValueError):
            verify_theorem1(10.0, 20, 2, [1.0] * 20, primary_rate=11.0)

    def test_nu_defaults_to_demand(self):
        check = verify_theorem1(30.0, 40, 5, [2.0] * 40)
        assert check.primary_rate == 30.0

    def test_bound_field_matches_protection_module(self):
        check = verify_theorem1(60.0, 80, 6, [1.0] * 80)
        assert check.bound == pytest.approx(displacement_bound(60.0, 80, 6))

    def test_adversarial_increasing_overflow_breaks_equation3_heuristic(self):
        # Documented reproduction note: the Equation-3 quantity can exceed the
        # bound when the overflow rates *increase* steeply with link state —
        # the proof's Equation-10 step needs generalized blocking to be
        # non-increasing in capacity, which such profiles violate.  Physical
        # overflow traffic does not behave this way (see module docstring).
        capacity = 14
        overflow = np.zeros(capacity)
        overflow[8:] = 60.0  # overflow floods in only when the link is busy
        check = verify_theorem1(7.0, capacity, 0, overflow, primary_rate=2.4)
        assert not check.holds


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=30),
    protection_fraction=st.floats(min_value=0.0, max_value=1.0),
    load_factor=st.floats(min_value=0.05, max_value=2.0),
    nu_fraction=st.floats(min_value=0.2, max_value=1.0),
    overflow_scale=st.floats(min_value=0.0, max_value=3.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_theorem1_holds_for_nonincreasing_overflow(
    capacity, protection_fraction, load_factor, nu_fraction, overflow_scale, seed
):
    """Property: the bound holds for any non-increasing overflow profile."""
    protection = int(round(protection_fraction * capacity))
    demand = load_factor * capacity
    nu = nu_fraction * demand
    rng = np.random.default_rng(seed)
    overflow = np.sort(rng.uniform(0.0, overflow_scale * capacity, size=capacity))[::-1]
    check = verify_theorem1(demand, capacity, protection, overflow.copy(), primary_rate=nu)
    assert check.holds


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=40),
    load_factor=st.floats(min_value=0.05, max_value=2.0),
    overflow=st.floats(min_value=0.0, max_value=100.0),
    protection_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_theorem1_holds_for_constant_overflow(
    capacity, load_factor, overflow, protection_fraction
):
    """Property: the bound holds for constant overflow rates (classical case)."""
    protection = int(round(protection_fraction * capacity))
    demand = load_factor * capacity
    check = verify_theorem1(demand, capacity, protection, [overflow] * capacity)
    assert check.holds


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=30),
    load_factor=st.floats(min_value=0.1, max_value=1.5),
)
def test_bound_decreases_with_protection(capacity, load_factor):
    """Property: more protection never loosens the Theorem-1 bound."""
    demand = load_factor * capacity
    bounds = [displacement_bound(demand, capacity, r) for r in range(capacity + 1)]
    assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(bounds, bounds[1:]))
