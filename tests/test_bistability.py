"""Tests for the symmetric mean-field bistability analysis."""

from __future__ import annotations

import pytest

from repro.analysis.bistability import (
    bistable_loads,
    find_fixed_points,
    mean_field_map,
    network_blocking,
)
from repro.core.erlang import erlang_b


class TestMeanFieldMap:
    def test_no_overflow_reduces_to_erlang(self):
        # Starting from E = 0 there is no overflow, so the first iterate is
        # the plain M/M/C/C statistics.
        direct, protected = mean_field_map(100.0, 120, 0, (0.0, 0.0))
        assert direct == pytest.approx(erlang_b(100.0, 120), rel=1e-9)
        assert protected == pytest.approx(direct)  # r = 0: F = E

    def test_protected_mass_at_least_direct(self):
        direct, protected = mean_field_map(110.0, 120, 10, (0.3, 0.4))
        assert protected >= direct

    def test_overflow_raises_blocking(self):
        quiet, __ = mean_field_map(100.0, 120, 0, (0.0, 0.0))
        busy, __ = mean_field_map(100.0, 120, 0, (0.5, 0.0), max_attempts=5)
        assert busy > quiet


class TestNetworkBlocking:
    def test_zero_state(self):
        assert network_blocking((0.0, 0.0)) == 0.0

    def test_saturated_state(self):
        assert network_blocking((1.0, 1.0)) == 1.0

    def test_retries_reduce_end_to_end_blocking(self):
        state = (0.3, 0.3)
        assert network_blocking(state, max_attempts=5) < network_blocking(state, 1)


class TestFixedPoints:
    def test_light_load_unique_and_small(self):
        points = find_fixed_points(60.0, 120, 0, max_attempts=5)
        assert len(points) == 1
        assert points[0].blocking < 1e-6

    def test_bistability_without_reservation(self):
        # The classical phenomenon (Akinpelu [1], Gibbens-Hunt-Kelly [10]):
        # just below capacity, with alternates retried, two stable operating
        # points coexist.
        points = find_fixed_points(104.0, 120, 0, max_attempts=5)
        assert len(points) >= 2
        low, high = points[0], points[-1]
        assert low.blocking < 0.01
        assert high.blocking > 0.1
        # The high point carries most calls on two links: heavy overflow.
        assert high.overflow_rate > 10 * low.overflow_rate

    def test_reservation_removes_bistability(self):
        loads = [95.0, 100.0, 104.0, 108.0]
        assert bistable_loads(120, 0, loads, max_attempts=5)
        assert bistable_loads(120, 5, loads, max_attempts=5) == []
        assert bistable_loads(120, 12, loads, max_attempts=5) == []

    def test_fixed_points_are_consistent(self):
        for load in (80.0, 104.0, 130.0):
            for point in find_fixed_points(load, 120, 0, max_attempts=5):
                state = (point.direct_blocking, point.protection_occupancy)
                image = mean_field_map(load, 120, 0, state, max_attempts=5)
                assert image[0] == pytest.approx(state[0], abs=1e-6)
                assert image[1] == pytest.approx(state[1], abs=1e-6)

    def test_heavy_overload_unique_high_point(self):
        points = find_fixed_points(140.0, 120, 0, max_attempts=5)
        assert len(points) == 1
        assert points[0].blocking > 0.1

    def test_sorted_by_blocking(self):
        points = find_fixed_points(104.0, 120, 0, max_attempts=5)
        blockings = [p.blocking for p in points]
        assert blockings == sorted(blockings)
