"""Tests for the repro-routing command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("figure2", "table1", "quadrangle", "nsfnet", "theorem1"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_nsfnet_flags(self):
        args = build_parser().parse_args(["nsfnet", "--hops", "6", "--seeds", "2"])
        assert args.hops == 6
        assert args.seeds == 2


class TestCommands:
    def test_figure2(self, capsys):
        assert main(["figure2", "--step", "50"]) == 0
        out = capsys.readouterr().out
        assert "r(H=120)" in out
        assert "50" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "10->11" in out
        assert "agreement" in out

    def test_theorem1(self, capsys):
        assert main(["theorem1", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("yes") == 3
        assert " NO" not in out

    def test_quadrangle_tiny(self, capsys):
        assert main(["quadrangle", "--seeds", "1", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "controlled" in out

    def test_nsfnet_tiny(self, capsys):
        assert main(["nsfnet", "--seeds", "1", "--duration", "5", "--hops", "6"]) == 0
        out = capsys.readouterr().out
        assert "H=6" in out

    def test_census(self, capsys):
        assert main(["census", "--hops", "6", "11"]) == 0
        out = capsys.readouterr().out
        assert "mean" in out
        assert "11" in out

    def test_bistability(self, capsys):
        assert main(["bistability", "--loads", "104", "--attempts", "5"]) == 0
        out = capsys.readouterr().out
        assert "#fp(r=0)" in out
        assert "2" in out  # bistable at 104
