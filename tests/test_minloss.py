"""Tests for the min-link-loss primary-flow optimizer (flow deviation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.erlang import expected_lost_calls
from repro.routing.minloss import optimize_primary_flows
from repro.topology.generators import fully_connected
from repro.topology.graph import Network
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads
from repro.traffic.matrix import TrafficMatrix


def two_parallel_paths() -> tuple[Network, object]:
    """0 -> 1 directly (capacity 10) and via 2 (capacity-10 links)."""
    net = Network(3)
    net.add_link(0, 1, 10)
    net.add_link(0, 2, 10)
    net.add_link(2, 1, 10)
    return net, build_path_table(net)


class TestToyProblems:
    def test_light_load_stays_on_short_path(self):
        net, table = two_parallel_paths()
        traffic = TrafficMatrix({(0, 1): 1.0}, num_nodes=3)
        solution = optimize_primary_flows(net, table, traffic)
        entries = dict((tuple(p), f) for p, f in solution.splits[(0, 1)])
        assert entries.get((0, 1), 0.0) > 0.95

    def test_heavy_load_bifurcates(self):
        net, table = two_parallel_paths()
        traffic = TrafficMatrix({(0, 1): 16.0}, num_nodes=3)
        solution = optimize_primary_flows(net, table, traffic)
        assert solution.bifurcated_pairs() == 1
        entries = dict((tuple(p), f) for p, f in solution.splits[(0, 1)])
        # Both routes must carry real traffic at the optimum.
        assert entries[(0, 1)] > 0.2
        assert entries[(0, 2, 1)] > 0.1

    def test_optimum_beats_all_on_primary(self):
        net, table = two_parallel_paths()
        traffic = TrafficMatrix({(0, 1): 16.0}, num_nodes=3)
        solution = optimize_primary_flows(net, table, traffic)
        all_direct = expected_lost_calls(16.0, 10)
        assert solution.objective < all_direct

    def test_duality_gap_certifies_near_optimality(self):
        net, table = two_parallel_paths()
        traffic = TrafficMatrix({(0, 1): 14.0}, num_nodes=3)
        solution = optimize_primary_flows(net, table, traffic, gap_tolerance=1e-4)
        assert solution.optimality_gap <= 1e-4 * 14.0 + 1e-9

    def test_split_fractions_normalized(self):
        net, table = two_parallel_paths()
        traffic = TrafficMatrix({(0, 1): 16.0}, num_nodes=3)
        solution = optimize_primary_flows(net, table, traffic)
        for entries in solution.splits.values():
            assert sum(f for __, f in entries) == pytest.approx(1.0)
            assert all(f > 0 for __, f in entries)

    def test_link_loads_consistent_with_splits(self):
        net, table = two_parallel_paths()
        traffic = TrafficMatrix({(0, 1): 16.0}, num_nodes=3)
        solution = optimize_primary_flows(net, table, traffic)
        rebuilt = np.zeros(net.num_links)
        for od, entries in solution.splits.items():
            demand = traffic.demand(*od)
            for path, fraction in entries:
                for link in net.path_links(path):
                    rebuilt[link] += demand * fraction
        assert rebuilt == pytest.approx(solution.link_loads, abs=1e-6)

    def test_demand_without_path_rejected(self):
        net = Network(3)
        net.add_link(0, 1, 5)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 2): 1.0})
        with pytest.raises(ValueError):
            optimize_primary_flows(net, table, traffic)


class TestOnPaperNetworks:
    def test_symmetric_quadrangle_keeps_direct_primaries(self, quad_network, quad_table):
        # Under symmetric load every direct link is equally loaded; deviating
        # to 2-hop paths doubles resource use, so the optimum is all-direct.
        traffic = TrafficMatrix(
            {od: 70.0 for od in quad_network.node_pairs()}, num_nodes=4
        )
        solution = optimize_primary_flows(quad_network, quad_table, traffic)
        for od, entries in solution.splits.items():
            main = dict((tuple(p), f) for p, f in entries).get(tuple(od), 0.0)
            assert main > 0.9

    @pytest.mark.slow
    def test_nsfnet_improves_on_min_hop(self, nsfnet, nsfnet_table):
        traffic = nsfnet_nominal_traffic().scaled(1.1)
        min_hop_loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
        capacities = nsfnet.capacities()
        min_hop_objective = sum(
            expected_lost_calls(float(l), int(c))
            for l, c in zip(min_hop_loads, capacities)
        )
        solution = optimize_primary_flows(
            nsfnet, nsfnet_table, traffic, max_iterations=60
        )
        # The paper: min-loss primaries do better than min-hop (before
        # alternate routing is added).
        assert solution.objective < min_hop_objective
        assert solution.bifurcated_pairs() > 0
