"""Tests for the DALFAR-style distributed route computation."""

from __future__ import annotations

import pytest

from repro.topology.dalfar import compute_distance_vectors, dalfar_routes
from repro.topology.generators import fully_connected, grid, random_mesh, ring
from repro.topology.graph import Network
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import min_hop_distances, simple_paths_by_length

MESHES = [
    fully_connected(4, 1),
    ring(7, 1),
    grid(3, 4, 1),
    random_mesh(9, 4, 1, seed=5),
    nsfnet_backbone(),
]


class TestDistanceVectors:
    @pytest.mark.parametrize("network", MESHES)
    def test_converged_distances_match_bfs(self, network):
        tables = compute_distance_vectors(network)
        for node in network.nodes():
            bfs = min_hop_distances(network, node)
            for dst in network.nodes():
                assert tables.distance(node, dst) == bfs[dst]

    def test_rounds_bounded_by_diameter(self):
        network = ring(8, 1)
        tables = compute_distance_vectors(network)
        # Ring of 8: diameter 4; one extra quiescence round.
        assert tables.rounds <= 5 + 1

    def test_table_copy_is_defensive(self):
        network = ring(4, 1)
        tables = compute_distance_vectors(network)
        copy = tables.table(0)
        copy[1] = -99
        assert tables.distance(0, 1) == 1

    def test_unreachable_stays_infinite(self):
        net = Network(3)
        net.add_link(0, 1, 1)
        tables = compute_distance_vectors(net)
        assert tables.distance(1, 0) == float("inf")
        assert tables.distance(0, 2) == float("inf")


class TestDalfarRoutes:
    @pytest.mark.parametrize("network", MESHES)
    def test_equals_centralized_enumeration(self, network):
        pairs = [(0, network.num_nodes - 1), (1, 2), (network.num_nodes - 1, 0)]
        for max_hops in (2, 4, None):
            for src, dst in pairs:
                assert dalfar_routes(network, src, dst, max_hops) == (
                    simple_paths_by_length(network, src, dst, max_hops)
                )

    def test_shared_tables_accepted(self):
        network = ring(5, 1)
        tables = compute_distance_vectors(network)
        routes = dalfar_routes(network, 0, 2, tables=tables)
        assert routes == simple_paths_by_length(network, 0, 2)

    def test_infeasible_budget_empty(self):
        network = ring(6, 1)  # distance 0 -> 3 is 3
        assert dalfar_routes(network, 0, 3, max_hops=2) == []

    def test_same_node_rejected(self):
        with pytest.raises(ValueError):
            dalfar_routes(ring(4, 1), 1, 1)

    def test_respects_failed_links(self):
        network = nsfnet_backbone()
        network.fail_duplex_link(2, 3)
        routes = dalfar_routes(network, 2, 3, max_hops=None)
        assert routes == simple_paths_by_length(network, 2, 3)
        assert all(len(path) > 2 for path in routes)
