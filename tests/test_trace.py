"""Tests for arrival-trace generation and the substream helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import substream
from repro.sim.trace import generate_trace
from repro.traffic.matrix import TrafficMatrix


class TestSubstream:
    def test_deterministic(self):
        a = substream(7, "arrivals").random(5)
        b = substream(7, "arrivals").random(5)
        assert (a == b).all()

    def test_distinct_keys_give_distinct_streams(self):
        a = substream(7, "arrivals").random(5)
        b = substream(7, "holding").random(5)
        assert not (a == b).all()

    def test_int_keys_supported(self):
        a = substream(7, 3).random(3)
        b = substream(7, 3).random(3)
        assert (a == b).all()

    def test_bad_key_type_rejected(self):
        with pytest.raises(TypeError):
            substream(1, 2.5)  # type: ignore[arg-type]


class TestGenerateTrace:
    @pytest.fixture()
    def traffic(self):
        return TrafficMatrix({(0, 1): 30.0, (1, 0): 10.0})

    def test_deterministic_per_seed(self, traffic):
        a = generate_trace(traffic, 50.0, seed=3)
        b = generate_trace(traffic, 50.0, seed=3)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.od_index, b.od_index)
        assert np.array_equal(a.holding_times, b.holding_times)

    def test_different_seeds_differ(self, traffic):
        a = generate_trace(traffic, 50.0, seed=3)
        b = generate_trace(traffic, 50.0, seed=4)
        assert a.num_calls != b.num_calls or not np.array_equal(a.times, b.times)

    def test_times_sorted_within_duration(self, traffic):
        trace = generate_trace(traffic, 25.0, seed=0)
        assert (np.diff(trace.times) >= 0).all()
        assert trace.times[0] >= 0.0
        assert trace.times[-1] <= 25.0

    def test_total_rate_statistics(self, traffic):
        # 40 Erlangs over 100 time units: ~4000 calls, sd ~63.
        trace = generate_trace(traffic, 100.0, seed=1)
        assert abs(trace.num_calls - 4000) < 4 * 63

    def test_od_mix_statistics(self, traffic):
        trace = generate_trace(traffic, 100.0, seed=2)
        share = trace.calls_for_pair((0, 1)) / trace.num_calls
        assert share == pytest.approx(0.75, abs=0.03)
        assert trace.calls_for_pair((5, 5)) == 0

    def test_holding_times_unit_mean(self, traffic):
        trace = generate_trace(traffic, 200.0, seed=5)
        assert trace.holding_times.mean() == pytest.approx(1.0, abs=0.05)
        assert (trace.holding_times > 0).all()

    def test_uniforms_in_unit_interval(self, traffic):
        trace = generate_trace(traffic, 20.0, seed=0)
        assert (trace.uniforms >= 0).all()
        assert (trace.uniforms < 1).all()

    def test_empty_traffic(self):
        trace = generate_trace(TrafficMatrix(np.zeros((3, 3))), 10.0, seed=0)
        assert trace.num_calls == 0

    def test_nonpositive_duration_rejected(self, traffic):
        with pytest.raises(ValueError):
            generate_trace(traffic, 0.0, seed=0)
