"""Tests for the online protection-level control loop (repro.control).

Three layers of guarantee, mirroring the subsystem's design:

* **safety** — property-style tests that every controller proposal,
  across seeded adversarial traces, satisfies the Theorem-1 displacement
  inequality *after* the :class:`~repro.control.controllers.SafetyClamp`
  projection, and that the clamp is a structural no-op on proposals that
  are already feasible;
* **determinism** — the loop is driven on request time, so a replayed
  trace yields a bit-stable ``decisions_sha256`` (what the CI smoke job
  asserts across interpreter runs);
* **swap equivalence** — the hot-swap path is proven safe by oracles:
  the batch kernel's ``threshold_schedule`` support must match an engine
  replay with ``NetworkState.hot_swap`` at the same times, and an
  ordered-mode cluster replay with ``ClusterRouter.hot_swap`` must be
  bit-identical to the single-process engine given the same swap
  schedule (the ISSUE's acceptance criterion).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import Scenario
from repro.control import (
    ControlProposal,
    DemandEstimator,
    SafetyClamp,
    make_control_loop,
)
from repro.core.protection import min_protection_levels
from repro.routing.alternate import (
    ControlledAlternateRouting,
    LengthAdaptiveControlledRouting,
)
from repro.serve import ClusterConfig, ClusterRouter, RequestEngine
from repro.serve.loadgen import aggregate_decisions, trace_requests
from repro.serve.shard import ShardWorker
from repro.serve.state import NetworkState
from repro.sim.batch import batch_ineligibility, simulate_batch
from repro.sim.trace import generate_trace
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic

INTERVAL = 5.0


def _adversarial_scenario() -> Scenario:
    return Scenario(
        topology="quadrangle", traffic=55.0, policy="controlled",
        workload="adversarial:0",
    )


class RecordingClamp(SafetyClamp):
    """SafetyClamp that keeps every (proposal, loads, projection) triple."""

    def __init__(self, network):
        super().__init__(network)
        self.records = []

    def project(self, proposal, link_loads):
        safe, lifted = super().project(proposal, link_loads)
        self.records.append(
            (proposal, np.asarray(link_loads, dtype=float).copy(), safe, lifted)
        )
        return safe, lifted


def _closed_loop_replay(seed: int, *, controller: str = "gradient"):
    """One closed-loop engine replay on the adversarial workload."""
    scenario = _adversarial_scenario()
    network = scenario.network
    policy = scenario.build_policy()
    trace = scenario.make_trace(30.0, seed)
    state = NetworkState(network, policy)
    loop = make_control_loop(
        state, scenario.path_table, scenario.traffic_matrix,
        controller=controller, interval=INTERVAL,
    )
    loop.clamp = RecordingClamp(network)
    engine = RequestEngine(network, policy, state=state, control=loop)
    decisions = engine.decide_batch(trace_requests(trace))
    result = aggregate_decisions(trace, decisions, warmup=5.0)
    return loop, state, result


class TestSafetyClamp:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("controller", ["gradient", "markov"])
    def test_every_projected_proposal_satisfies_theorem1(
        self, seed, controller
    ):
        # The property the ISSUE names: across seeded adversarial traces,
        # whatever the strategy proposes, the projection satisfies the
        # displacement inequality at the loads it was projected against.
        loop, state, __ = _closed_loop_replay(seed, controller=controller)
        clamp = loop.clamp
        assert clamp.records, "control loop never stepped"
        for proposal, loads, safe, lifted in clamp.records:
            assert clamp.verify(safe.levels, loads)
            if lifted == 0:
                # Feasible proposals pass through structurally unchanged.
                assert set(safe.levels) == set(proposal.levels)
                for h, arr in proposal.levels.items():
                    assert np.array_equal(safe.levels[h], arr)

    def test_clamp_lifts_infeasible_proposal_to_the_floor(self, quad_network):
        clamp = SafetyClamp(quad_network)
        caps = quad_network.capacities().astype(np.int64)
        loads = np.full(quad_network.num_links, 80.0)
        reckless = ControlProposal(
            time=1.0, levels={2: np.zeros(quad_network.num_links, np.int64)}
        )
        safe, lifted = clamp.project(reckless, loads)
        floor = min_protection_levels(loads, caps, 2)
        assert lifted == int((floor > 0).sum()) > 0
        assert np.array_equal(safe.levels[2], floor)
        assert clamp.verify(safe.levels, loads)
        assert clamp.violations == lifted
        assert clamp.max_deficit == int(floor.max())

    def test_clamp_is_noop_on_feasible_proposal(self, quad_network):
        clamp = SafetyClamp(quad_network)
        caps = quad_network.capacities().astype(np.int64)
        loads = np.full(quad_network.num_links, 80.0)
        floor = min_protection_levels(loads, caps, 2)
        polite = ControlProposal(time=1.0, levels={2: floor + 1})
        safe, lifted = clamp.project(polite, loads)
        assert lifted == 0
        assert clamp.violations == 0
        assert np.array_equal(safe.levels[2], floor + 1)

    def test_full_protection_passes_vacuously(self, quad_network):
        # r = C (threshold 0) is Table 1's convention for overloaded
        # links: no alternate traffic at all, safe by definition.
        clamp = SafetyClamp(quad_network)
        caps = quad_network.capacities().astype(np.int64)
        loads = caps.astype(float) * 2.0  # no r < C satisfies Eq. 15
        assert clamp.verify({3: caps.copy()}, loads)


class TestEstimator:
    def _pieces(self, quad_network, quad_table):
        traffic = uniform_traffic(quad_network.num_nodes, 50.0)
        return traffic, DemandEstimator(
            quad_network, quad_table, traffic, prior_strength=100.0
        )

    def test_estimate_starts_at_the_prior(self, quad_network, quad_table):
        traffic, est = self._pieces(quad_network, quad_table)
        snap = est.estimate(0.0)
        assert snap.confidence == 0.0
        assert np.allclose(snap.matrix.as_array(), traffic.as_array())
        assert np.allclose(
            snap.link_loads,
            primary_link_loads(quad_network, quad_table, traffic),
        )

    def test_shrinkage_moves_toward_measurements(
        self, quad_network, quad_table
    ):
        traffic, est = self._pieces(quad_network, quad_table)
        doubled = {od: int(2 * rate * 10.0) for od, rate in traffic.positive_pairs()}
        confidences = []
        for k in range(1, 11):
            est.observe(k * 10.0, 10.0, doubled)
            confidences.append(est.estimate(k * 10.0).confidence)
        snap = est.estimate(100.0)
        prior = traffic.as_array()
        estimate = snap.matrix.as_array()
        positive = prior > 0
        # Strictly between the prior and the doubled measurement...
        assert (estimate[positive] > prior[positive]).all()
        assert (estimate[positive] < 2.0 * prior[positive] + 1e-9).all()
        # ...and confidence grows monotonically with exposure.
        assert confidences == sorted(confidences)
        assert 0.0 < snap.confidence < 1.0

    def test_volatility_inflates_the_prior(self, quad_network, quad_table):
        traffic, est = self._pieces(quad_network, quad_table)
        base = est.gated_prior_strength()
        quiet = {od: int(rate * 10.0) for od, rate in traffic.positive_pairs()}
        loud = {od: 4 * count for od, count in quiet.items()}
        for k, counts in enumerate((quiet, loud, quiet, loud), start=1):
            est.observe(k * 10.0, 10.0, counts)
        assert est.volatility > 0.0
        assert est.gated_prior_strength() > base
        snap = est.estimate(40.0)
        assert snap.volatility == est.volatility
        assert snap.staleness == 0.0
        assert est.estimate(47.5).staleness == 7.5

    def test_validation(self, quad_network, quad_table):
        traffic = uniform_traffic(quad_network.num_nodes, 50.0)
        with pytest.raises(ValueError, match="prior_strength"):
            DemandEstimator(quad_network, quad_table, traffic, prior_strength=0)
        est = DemandEstimator(quad_network, quad_table, traffic)
        with pytest.raises(ValueError, match="span"):
            est.observe(1.0, 0.0, {})


class TestControlLoop:
    def test_decisions_are_replay_deterministic(self):
        first, __, first_result = _closed_loop_replay(4)
        second, __, second_result = _closed_loop_replay(4)
        assert first.decisions_sha256() == second.decisions_sha256()

        def logical(loop):
            # swap_seconds is wall clock; everything else must replay.
            return [
                {k: v for k, v in step.items() if k != "swap_seconds"}
                for step in loop.trajectory()
            ]

        assert logical(first) == logical(second)
        assert np.array_equal(first_result.blocked, second_result.blocked)

    def test_loop_swaps_and_exports_the_epoch(self):
        loop, state, result = _closed_loop_replay(5)
        assert len(loop.steps) > 0
        assert state.policy_epoch == sum(1 for s in loop.steps if s.applied)
        assert state.policy_epoch > 0
        assert len(state.swaps) == state.policy_epoch
        # The serve-plane gauge tracks the version in force (satellite a).
        gauge = loop.telemetry.gauge("control_objective")
        assert gauge.value == loop.steps[-1].objective
        assert 0.0 <= result.network_blocking < 1.0

    def test_markov_controller_proposes_route_prefixes(self):
        loop, __, ___ = _closed_loop_replay(6, controller="markov")
        assert loop.steps
        assert all(s.alt_prefix is not None for s in loop.steps)
        # Markov proposals sit exactly on the floor, so nothing lifts.
        assert loop.clamp.violations == 0
        assert loop.active_prefix == loop.steps[-1].alt_prefix

    def test_pinning_records_but_does_not_apply(self):
        scenario = _adversarial_scenario()
        policy = scenario.build_policy()
        trace = scenario.make_trace(20.0, 7)
        state = NetworkState(scenario.network, policy)
        loop = make_control_loop(
            state, scenario.path_table, scenario.traffic_matrix,
            interval=INTERVAL,
        )
        assert loop.pin() == 0
        engine = RequestEngine(
            scenario.network, policy, state=state, control=loop
        )
        engine.decide_batch(trace_requests(trace))
        assert loop.steps and not any(s.applied for s in loop.steps)
        assert state.policy_epoch == 0 and not state.swaps
        loop.unpin()
        assert loop.pinned_epoch is None

    def test_loop_rejects_adaptive_state(self, quad_network, quad_table):
        from repro.serve import AdaptationConfig

        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        state = NetworkState(
            quad_network, policy,
            adaptation=AdaptationConfig(update_interval=5.0),
        )
        with pytest.raises(ValueError, match="adaptation"):
            make_control_loop(state, quad_table, traffic)

    def test_factory_rejects_unknown_controller(
        self, quad_network, quad_table
    ):
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        state = NetworkState(quad_network, policy)
        with pytest.raises(ValueError, match="unknown controller"):
            make_control_loop(state, quad_table, traffic, controller="pid")


class TestHotSwapState:
    def _state(self, quad_network, quad_table):
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        return NetworkState(quad_network, policy)

    def test_swap_replaces_thresholds_and_bumps_epoch(
        self, quad_network, quad_table
    ):
        state = self._state(quad_network, quad_table)
        before = state.alt_thresholds.copy()
        incoming = np.clip(before - 3, 0, None)
        delta = state.hot_swap(alt_thresholds=incoming, now=7.0)
        assert delta == float(np.abs(incoming - before).max())
        assert np.array_equal(state.alt_thresholds, incoming)
        assert state.policy_epoch == 1
        (swap,) = state.swaps
        assert (swap.time, swap.epoch, swap.max_delta) == (7.0, 1, delta)

    def test_swap_validation(self, quad_network, quad_table):
        state = self._state(quad_network, quad_table)
        ok = state.alt_thresholds.copy()
        with pytest.raises(ValueError, match="exactly one"):
            state.hot_swap()
        with pytest.raises(ValueError, match="exactly one"):
            state.hot_swap(alt_thresholds=ok, length_thresholds={2: ok})
        with pytest.raises(ValueError, match="scalar threshold"):
            state.hot_swap(length_thresholds={2: ok})
        with pytest.raises(ValueError, match="per-link"):
            state.hot_swap(alt_thresholds=ok[:-1])
        with pytest.raises(ValueError, match="capacity"):
            state.hot_swap(alt_thresholds=ok + state.capacities)
        assert state.policy_epoch == 0  # nothing above landed


class TestBatchScheduleEquivalence:
    """The batch kernel's piecewise-constant thresholds vs hot_swap."""

    def _engine_replay_with_swaps(self, network, policy, trace, schedule):
        """Engine oracle: decide in segments, hot_swap at the boundaries."""
        state = NetworkState(network, policy)
        engine = RequestEngine(network, policy, state=state)
        times = [t for t, __ in schedule]
        chunks = [[] for __ in range(len(schedule) + 1)]
        for request in trace_requests(trace):
            # Segment via `now >= t` — the same convention the kernel
            # compiles with searchsorted(..., side="right").
            chunks[int(np.searchsorted(times, request.time, side="right"))
                   ].append(request)
        decisions = []
        for k, chunk in enumerate(chunks):
            if k > 0:
                when, spec = schedule[k - 1]
                if isinstance(spec, dict):
                    state.hot_swap(length_thresholds=spec, now=when)
                else:
                    state.hot_swap(alt_thresholds=spec, now=when)
            decisions.extend(engine.decide_batch(chunk))
        return aggregate_decisions(trace, decisions, warmup=5.0), state

    def test_scalar_schedule_matches_engine_hot_swap(
        self, quad_network, quad_table
    ):
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, duration=20.0, seed=3)
        base = NetworkState(quad_network, policy).alt_thresholds
        caps = quad_network.capacities().astype(np.int64)
        schedule = [
            (8.0, np.clip(base - 2, 0, None)),
            (14.0, np.minimum(base + 1, caps)),
        ]
        oracle, state = self._engine_replay_with_swaps(
            quad_network, policy, trace, schedule
        )
        assert state.policy_epoch == 2
        (batch,) = simulate_batch(
            quad_network, policy, [trace], 5.0, threshold_schedule=schedule
        )
        assert np.array_equal(batch.offered, oracle.offered)
        assert np.array_equal(batch.blocked, oracle.blocked)
        assert batch.primary_carried == oracle.primary_carried
        assert batch.alternate_carried == oracle.alternate_carried

    def test_length_schedule_matches_engine_hot_swap(
        self, quad_network, quad_table
    ):
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = LengthAdaptiveControlledRouting(
            quad_network, quad_table, loads
        )
        trace = generate_trace(traffic, duration=20.0, seed=9)
        tables = NetworkState(quad_network, policy).length_thresholds
        schedule = [
            (7.0, {h: np.clip(row - 2, 0, None) for h, row in tables.items()}),
            (13.0, {h: row.copy() for h, row in tables.items()}),
        ]
        oracle, state = self._engine_replay_with_swaps(
            quad_network, policy, trace, schedule
        )
        assert state.policy_epoch == 2
        (batch,) = simulate_batch(
            quad_network, policy, [trace], 5.0, threshold_schedule=schedule
        )
        assert np.array_equal(batch.blocked, oracle.blocked)
        assert batch.alternate_carried == oracle.alternate_carried

    def test_identity_schedule_changes_nothing(self, quad_network, quad_table):
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, duration=15.0, seed=11)
        base = NetworkState(quad_network, policy).alt_thresholds
        (plain,) = simulate_batch(quad_network, policy, [trace], 5.0)
        (scheduled,) = simulate_batch(
            quad_network, policy, [trace], 5.0,
            threshold_schedule=[(6.0, base.copy())],
        )
        assert np.array_equal(plain.blocked, scheduled.blocked)
        assert plain.alternate_carried == scheduled.alternate_carried

    def test_ineligibility_names_the_schedule(self, quad_network, quad_table):
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, duration=10.0, seed=0)
        thr = NetworkState(quad_network, policy).alt_thresholds
        assert batch_ineligibility(policy, [trace]) is None
        assert batch_ineligibility(
            policy, [trace], threshold_schedule=[(5.0, thr)]
        ) is None
        reason = batch_ineligibility(
            policy, [trace], threshold_schedule=[(5.0, thr), (5.0, thr)]
        )
        assert "strictly" in reason
        reason = batch_ineligibility(
            policy, [trace], threshold_schedule=[(0.0, thr)]
        )
        assert "positive" in reason
        reason = batch_ineligibility(
            policy, [trace], threshold_schedule=[(5.0,)]
        )
        assert "(time, thresholds)" in reason

    def test_random_alternate_policies_reject_schedules(
        self, quad_network, quad_table
    ):
        from repro.routing.dar import DynamicAlternateRouting

        policy = DynamicAlternateRouting(quad_network, quad_table)
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        trace = generate_trace(traffic, duration=10.0, seed=0)
        thr = np.zeros(quad_network.num_links, dtype=np.int64)
        reason = batch_ineligibility(
            policy, [trace], threshold_schedule=[(5.0, thr)]
        )
        assert "mid-run threshold updates" in reason


class TestClusterSwapEquivalence:
    """Hot-swap proven safe: cluster replay == engine, same swap schedule."""

    def test_ordered_cluster_matches_engine_across_swaps(
        self, quad_network, quad_table
    ):
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, duration=12.0, seed=21)
        base = NetworkState(quad_network, policy).alt_thresholds
        caps = quad_network.capacities().astype(np.int64)
        schedule = [
            (4.0, np.clip(base - 2, 0, None)),
            (8.0, np.minimum(base + 1, caps)),
        ]
        times = [t for t, __ in schedule]
        chunks = [[] for __ in range(len(schedule) + 1)]
        for request in trace_requests(trace):
            chunks[int(np.searchsorted(times, request.time, side="right"))
                   ].append(request)

        # Single-process oracle: hot_swap between decide_batch calls.
        state = NetworkState(quad_network, policy)
        engine = RequestEngine(quad_network, policy, state=state)
        expected = []
        for k, chunk in enumerate(chunks):
            if k > 0:
                state.hot_swap(alt_thresholds=schedule[k - 1][1],
                               now=times[k - 1])
            expected.extend(engine.decide_batch(chunk))

        async def run():
            router = ClusterRouter(
                quad_network, policy,
                ClusterConfig(num_shards=3, mode="ordered"),
            )
            async with router:
                out = []
                for k, chunk in enumerate(chunks):
                    if k > 0:
                        await router.hot_swap(
                            alt_thresholds=schedule[k - 1][1],
                            now=times[k - 1],
                        )
                    out.extend(await router.submit_batch(chunk))
                audit = await router.audit()
                snapshots = [
                    snap
                    for sid in router.supervisor.shard_ids
                    for snap in await router._call(sid, [("snapshot",)])
                ]
                epoch = router.policy_epoch
                swaps = list(router.swaps)
            return out, audit, snapshots, epoch, swaps

        actual, audit, snapshots, epoch, swaps = asyncio.run(run())
        assert actual == expected  # bit-identical across both swaps
        assert epoch == 2
        assert [s.epoch for s in swaps] == [1, 2]
        assert audit["consistent"] and audit["leaked_circuits"] == 0
        for snapshot in snapshots:
            assert snapshot["epoch"] == 2
            assert snapshot["tallies"]["shard_swaps"] == 2

    def test_cluster_swap_validation(self, quad_network, quad_table):
        traffic = uniform_traffic(quad_network.num_nodes, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        router = ClusterRouter(
            quad_network, policy, ClusterConfig(num_shards=2)
        )
        thr = NetworkState(quad_network, policy).alt_thresholds

        async def check():
            with pytest.raises(ValueError, match="exactly one"):
                await router.hot_swap()
            with pytest.raises(ValueError, match="scalar threshold"):
                await router.hot_swap(length_thresholds={2: thr})
            with pytest.raises(ValueError, match="per-link"):
                await router.hot_swap(alt_thresholds=thr[:-1])
            with pytest.raises(ValueError, match="capacity"):
                await router.hot_swap(alt_thresholds=[-1] * len(thr))

        asyncio.run(check())


class TestShardSwapOp:
    def test_swap_changes_bounds_and_stamps_the_epoch(self):
        worker = ShardWorker({
            "shard_id": 0,
            "links": (0, 1),
            "capacities": {0: 10, 1: 10},
            "thresholds": {0: 7, 1: 7},
        })
        assert worker.policy_epoch == 0
        assert worker.handle(("rescommit", "a", (0,), 1, 3)) == 1
        assert worker.handle(("swap", 4, {0: 1, 1: 2}, None)) == 1
        assert worker.policy_epoch == 4
        assert worker.thresholds == {0: 1, 1: 2}
        # One circuit is already booked on link 0; the new bound of 1
        # refuses further alternates while the old bound admitted them.
        assert worker.handle(("rescommit", "b", (0,), 1, 3)) == 0
        assert worker.handle(("rescommit", "c", (1,), 1, 3)) == 1
        snapshot = worker.handle(("snapshot",))
        assert snapshot["epoch"] == 4
        assert snapshot["tallies"]["shard_swaps"] == 1

    def test_swap_installs_length_tables(self):
        worker = ShardWorker({
            "shard_id": 1,
            "links": (0,),
            "capacities": {0: 10},
            "thresholds": {0: 7},
        })
        worker.handle(("swap", 1, {0: 5}, {2: {0: 6}, 3: {0: 2}}))
        assert worker.tables == {2: {0: 6}, 3: {0: 2}}
        # kind = alternate hop length selects the per-length bound.
        for __ in range(2):
            worker.handle(("rescommit", f"r{__}", (0,), 1, 3))
        assert worker.occupancy[0] == 2
        assert worker.handle(("rescommit", "r2", (0,), 1, 3)) == 0  # 3-hop full
        assert worker.handle(("rescommit", "r3", (0,), 1, 2)) == 1  # 2-hop ok
