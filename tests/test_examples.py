"""Smoke tests for the runnable examples.

Every example must at least compile; the quickest one runs end to end as a
subprocess (the remaining examples are exercised by the benchmark suite's
equivalent code paths and run in seconds from the shell).
"""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "quadrangle_overload.py",
        "nsfnet_study.py",
        "qos_video_network.py",
        "cellular_borrowing.py",
        "multiclass_qos.py",
        "capacity_planning.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_end_to_end():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    out = completed.stdout
    assert "single-path" in out
    assert "controlled" in out
    assert "protection levels" in out
