"""End-to-end integration tests reproducing the paper's qualitative claims.

These exercise the full stack (topology -> traffic -> policies -> simulator
-> metrics) at reduced but statistically meaningful scale.  The benchmark
harnesses run the same experiments at paper fidelity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fairness import fairness_report
from repro.experiments.runner import ReplicationConfig, compare_policies
from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.single_path import SinglePathRouting
from repro.sim.failures import FailureScenario, apply_failures
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic

CONFIG = ReplicationConfig(measured_duration=40.0, warmup=10.0, seeds=(0, 1, 2, 3))


def standard_policies(network, table, traffic):
    loads = primary_link_loads(network, table, traffic)
    return {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, loads),
    }


class TestQuadrangleShape:
    """The Figure-3/4 story on the fully-connected quadrangle."""

    def test_uncontrolled_wins_at_low_load(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 80.0)
        stats = compare_policies(
            quad_network, standard_policies(quad_network, quad_table, traffic), traffic, CONFIG
        )
        assert stats["uncontrolled"].mean < stats["single-path"].mean
        assert stats["controlled"].mean < stats["single-path"].mean

    def test_uncontrolled_collapses_at_overload(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 100.0)
        stats = compare_policies(
            quad_network, standard_policies(quad_network, quad_table, traffic), traffic, CONFIG
        )
        assert stats["uncontrolled"].mean > stats["single-path"].mean
        # Controlled must stay with the better regime.
        assert stats["controlled"].mean < stats["uncontrolled"].mean

    def test_controlled_never_worse_than_single_path(self, quad_network, quad_table):
        # The paper's guarantee, checked across the load range (with a small
        # statistical tolerance).
        for load in (70.0, 85.0, 95.0, 105.0):
            traffic = uniform_traffic(4, load)
            stats = compare_policies(
                quad_network,
                standard_policies(quad_network, quad_table, traffic),
                traffic,
                CONFIG,
            )
            assert stats["controlled"].mean <= stats["single-path"].mean + 0.01

    def test_controlled_beats_both_in_crossover_window(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 90.0)
        stats = compare_policies(
            quad_network, standard_policies(quad_network, quad_table, traffic), traffic, CONFIG
        )
        assert stats["controlled"].mean <= stats["single-path"].mean + 0.005
        assert stats["controlled"].mean <= stats["uncontrolled"].mean + 0.005


class TestNsfnetShape:
    """The Figure-6/7 story on the NSFNet model."""

    @pytest.fixture(scope="class")
    def nominal(self):
        return nsfnet_nominal_traffic()

    def test_ordering_above_nominal(self, nsfnet, nsfnet_table, nominal):
        traffic = nominal.scaled(1.3)
        stats = compare_policies(
            nsfnet, standard_policies(nsfnet, nsfnet_table, traffic), traffic, CONFIG
        )
        assert stats["uncontrolled"].mean > stats["single-path"].mean
        assert stats["controlled"].mean <= stats["single-path"].mean + 0.01

    def test_ordering_below_nominal(self, nsfnet, nsfnet_table, nominal):
        traffic = nominal.scaled(0.9)
        stats = compare_policies(
            nsfnet, standard_policies(nsfnet, nsfnet_table, traffic), traffic, CONFIG
        )
        assert stats["uncontrolled"].mean < stats["single-path"].mean
        assert stats["controlled"].mean < stats["single-path"].mean

    def test_link_failures_preserve_ordering(self, nsfnet, nominal):
        # Section 4.2.2: with 2<->3 failed, blocking rises but the relative
        # position of the curves is maintained (at above-nominal load).
        traffic = nominal.scaled(1.3)
        failed = apply_failures(nsfnet, traffic, FailureScenario(((2, 3),)))
        policies = {
            "single-path": SinglePathRouting(failed.network, failed.table),
            "uncontrolled": UncontrolledAlternateRouting(failed.network, failed.table),
            "controlled": ControlledAlternateRouting(
                failed.network, failed.table, failed.primary_loads
            ),
        }
        stats = compare_policies(failed.network, policies, traffic, CONFIG)
        assert stats["uncontrolled"].mean > stats["single-path"].mean
        assert stats["controlled"].mean <= stats["single-path"].mean + 0.01

    def test_alternate_routing_is_fairer(self, nsfnet, nsfnet_table_h6, nominal):
        # Section 4.2.2: single-path most skewed, uncontrolled least.
        traffic = nominal.scaled(1.1)
        policies = standard_policies(nsfnet, nsfnet_table_h6, traffic)
        profiles = {}
        for name, policy in policies.items():
            blocked = np.zeros(0)
            offered = np.zeros(0)
            for seed in CONFIG.seeds:
                trace = generate_trace(traffic, CONFIG.duration, seed)
                result = simulate(nsfnet, policy, trace, CONFIG.warmup)
                if blocked.size == 0:
                    blocked = result.blocked.astype(float)
                    offered = result.offered.astype(float)
                else:
                    blocked += result.blocked
                    offered += result.offered
            pair_blocking = {
                od: blocked[i] / offered[i]
                for i, od in enumerate(result.od_pairs)
                if offered[i] > 0
            }
            profiles[name] = fairness_report(pair_blocking)
        assert profiles["single-path"].more_skewed_than(profiles["uncontrolled"])


class TestCommonRandomNumbers:
    def test_same_seed_same_result(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 90.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        a = simulate(quad_network, policy, generate_trace(traffic, 30.0, 5))
        b = simulate(quad_network, policy, generate_trace(traffic, 30.0, 5))
        assert np.array_equal(a.blocked, b.blocked)
        assert a.primary_carried == b.primary_carried
