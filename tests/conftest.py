"""Shared fixtures: canonical networks, path tables, and a fast sim config."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ReplicationConfig
from repro.topology.generators import quadrangle
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table


@pytest.fixture(scope="session")
def quad_network():
    return quadrangle(100)


@pytest.fixture(scope="session")
def quad_table(quad_network):
    return build_path_table(quad_network)


@pytest.fixture(scope="session")
def nsfnet():
    return nsfnet_backbone()


@pytest.fixture(scope="session")
def nsfnet_table(nsfnet):
    return build_path_table(nsfnet)


@pytest.fixture(scope="session")
def nsfnet_table_h6(nsfnet):
    return build_path_table(nsfnet, max_hops=6)


@pytest.fixture(scope="session")
def fast_config():
    """Short, few-seed replication config keeping simulation tests quick."""
    return ReplicationConfig(measured_duration=20.0, warmup=5.0, seeds=(0, 1))
