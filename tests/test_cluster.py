"""Tests for the sharded admission cluster (repro.serve.cluster).

The heart is the replay-equivalence oracle extending PR 5's: an
ordered-mode cluster of real worker processes must reproduce the
single-process :class:`~repro.serve.engine.RequestEngine`'s decisions
bit for bit on the same trace.  Around it: the pure-logic pieces
(reservation ids, partitioning, journal, config validation, seeded
chaos) and the fault paths (worker crash recovery, shard-down
degradation).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.routing.alternate import ControlledAlternateRouting
from repro.serve import (
    ChaosConfig,
    ClusterConfig,
    ClusterRouter,
    MessageChaos,
    RequestEngine,
    ReservationJournal,
    partition_links,
    replay_trace,
    replay_trace_cluster,
)
from repro.serve.cluster import _release_id, _reservation_id
from repro.sim.sigpolicy import HoldTimerPolicy, RetryPolicy
from repro.sim.trace import generate_trace
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic

WARMUP = 2.0


@pytest.fixture(scope="module")
def cluster_policy(quad_network, quad_table):
    traffic = uniform_traffic(quad_network.num_nodes, 95.0)
    loads = primary_link_loads(quad_network, quad_table, traffic)
    return ControlledAlternateRouting(quad_network, quad_table, loads)


@pytest.fixture(scope="module")
def cluster_trace(quad_network):
    traffic = uniform_traffic(quad_network.num_nodes, 95.0)
    return generate_trace(traffic, duration=8.0, seed=21)


@pytest.fixture(scope="module")
def engine_reference(quad_network, cluster_policy, cluster_trace):
    engine = RequestEngine(quad_network, cluster_policy)
    return replay_trace(engine, cluster_trace, warmup=WARMUP)


class TestPureLogic:
    def test_reservation_ids_are_disjoint(self):
        seen = set()
        for call in range(100):
            seen.add(_release_id(call))
            for index in range(4):
                seen.add(_reservation_id(call, index))
        assert len(seen) == 500  # no collisions across calls or attempts
        # String call ids survive too (the protocol does not require ints).
        assert _reservation_id("abc", 2) != _reservation_id("abc", 3)
        assert _release_id("abc") != _reservation_id("abc", 0)

    def test_partition_links_covers_every_link_once(self):
        for num_links, num_shards in ((7, 3), (8, 1), (3, 5)):
            parts = partition_links(num_links, num_shards)
            assert len(parts) == num_shards
            flat = [link for links in parts for link in links]
            assert sorted(flat) == list(range(num_links))
            sizes = [len(links) for links in parts]
            assert max(sizes) - min(sizes) <= 1  # balanced

    def test_config_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            ClusterConfig(num_shards=0)
        with pytest.raises(ValueError, match="mode"):
            ClusterConfig(mode="chaotic")
        with pytest.raises(ValueError, match="RetryPolicy"):
            ClusterConfig(
                retry=RetryPolicy(timeout=None),
                chaos=ChaosConfig(drop_probability=0.1),
            )

    def test_chaos_classify_is_seed_deterministic(self):
        config = ChaosConfig(seed=5, drop_probability=0.2, delay_probability=0.3)
        a = MessageChaos(config)
        b = MessageChaos(config)
        stream = [a.classify() for __ in range(200)]
        assert stream == [b.classify() for __ in range(200)]
        assert a.decisions["dropped"] > 0
        assert a.decisions["delayed"] > 0
        assert sum(a.decisions.values()) == 200

    def test_journal_round_trip_and_jsonl_mirror(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ReservationJournal(str(path))
        journal.record_admit(7, (0, 3), 1, "primary")
        journal.record_admit(8, (3, 5), 2, "alternate")
        assert journal.occupancy_for([0, 3, 5]) == {0: 1, 3: 3, 5: 2}
        assert journal.record_release(7) == ((0, 3), 1, "primary")
        assert journal.record_release(7) is None  # idempotent
        assert journal.occupancy_for([0, 3, 5]) == {0: 0, 3: 2, 5: 2}
        journal.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events] == ["admit", "admit", "release"]
        assert events[0]["path"] == [0, 3]

    def test_candidates_span_shards(self, quad_network, cluster_policy):
        # An unstarted router is enough to inspect the compiled dispatch:
        # the quadrangle's alternates must produce at least one candidate
        # whose links straddle shards (else two-phase never runs).
        router = ClusterRouter(
            quad_network, cluster_policy, ClusterConfig(num_shards=3)
        )
        multi = 0
        for od, choices in cluster_policy.choices.items():
            for k in range(len(choices)):
                uniform = (k + 0.5) / len(choices)
                candidates = router._candidates_for(od, uniform)
                for __, ___, ____, groups in candidates:
                    assert len(groups) >= 1
                    multi += len(groups) > 1
        assert multi > 0


class TestReplayEquivalence:
    def test_ordered_cluster_matches_engine_bit_for_bit(
        self, quad_network, cluster_policy, cluster_trace, engine_reference
    ):
        async def run():
            router = ClusterRouter(
                quad_network, cluster_policy,
                ClusterConfig(num_shards=3, mode="ordered"),
            )
            async with router:
                report = await replay_trace_cluster(
                    router, cluster_trace, warmup=WARMUP
                )
                audit = await router.audit()
                fastpath = router.telemetry.counter(
                    "serve_cluster_fastpath_total"
                ).value
                twophase = router.telemetry.counter(
                    "serve_cluster_twophase_total"
                ).value
            return report, audit, fastpath, twophase

        report, audit, fastpath, twophase = asyncio.run(run())
        assert report.decisions == engine_reference.decisions
        assert (
            report.result.network_blocking
            == engine_reference.result.network_blocking
        )
        # Both admission paths must actually have been exercised.
        assert fastpath > 0
        assert twophase > 0
        assert audit["consistent"]
        assert audit["leaked_circuits"] == 0

    def test_pipelined_cluster_is_leak_free_and_complete(
        self, quad_network, cluster_policy, cluster_trace
    ):
        from repro.serve.loadgen import trace_requests

        requests = trace_requests(cluster_trace)

        async def run():
            router = ClusterRouter(
                quad_network, cluster_policy,
                ClusterConfig(num_shards=3, mode="pipelined"),
            )
            async with router:
                decisions = []
                for i in range(0, len(requests), 512):
                    decisions.extend(
                        await router.submit_batch(requests[i:i + 512])
                    )
                audit = await router.audit()
            return decisions, audit

        decisions, audit = asyncio.run(run())
        assert len(decisions) == len(requests)
        admitted = sum(
            1 for d in decisions if d.admitted and d.tier != "release"
        )
        assert admitted > 0
        assert audit["consistent"]
        assert audit["leaked_circuits"] == 0
        # Mass balance: what stays held is exactly admissions minus the
        # releases that found their call — calls still up at trace end.
        released = sum(
            1 for d in decisions if d.tier == "release" and d.admitted
        )
        assert audit["held_calls"] == admitted - released


class TestFaultTolerance:
    def test_worker_crash_is_recovered_and_leak_free(
        self, quad_network, cluster_policy, cluster_trace
    ):
        hold = HoldTimerPolicy(duration=0.5)

        async def run():
            router = ClusterRouter(
                quad_network, cluster_policy,
                ClusterConfig(
                    num_shards=3,
                    mode="ordered",
                    retry=RetryPolicy(timeout=0.15, max_retries=5),
                    hold=hold,
                    chaos=ChaosConfig(seed=3, kill_after_ops={0: 800}),
                ),
            )
            async with router:
                report = await replay_trace_cluster(
                    router, cluster_trace, warmup=WARMUP
                )
                restarts = dict(router.supervisor.restarts)
                down = set(router._down)
                await asyncio.sleep(hold.duration + 0.6)
                audit = await router.audit()
            return report, restarts, down, audit

        report, restarts, down, audit = asyncio.run(run())
        assert restarts.get(0, 0) >= 1  # the killed shard came back
        assert not down  # and is up again by run end
        # Every request was answered despite the mid-run crash.
        assert len(report.decisions) == report.requests
        assert audit["consistent"]
        assert audit["leaked_circuits"] == 0
        assert audit["pending_reservations"] == 0

    def test_down_shard_degrades_instead_of_failing(
        self, quad_network, cluster_policy
    ):
        from repro.serve.engine import AdmitRequest

        async def run():
            router = ClusterRouter(
                quad_network, cluster_policy,
                # A lazy heartbeat keeps the monitor from resurrecting the
                # hand-downed shard mid-test.
                ClusterConfig(num_shards=3, mode="ordered",
                              heartbeat_interval=30.0),
            )
            async with router:
                # Declare shards 0 and 1 dead by hand: the router must
                # keep serving calls it can route entirely on shard 2 (on
                # the empty quadrangle an alternate dodges any *single*
                # shard) and refuse the rest with the dedicated reason.
                router._mark_down(0, "test-induced")
                router._mark_down(1, "test-induced")
                decisions = []
                i = 0
                for od in cluster_policy.choices:
                    decisions.append(await router.submit(
                        AdmitRequest(id=i, od=od, uniform=0.0, time=0.0)
                    ))
                    i += 1
                audit_down = sorted(router._down)
            return decisions, audit_down

        decisions, down = asyncio.run(run())
        assert down == [0, 1]
        served = [d for d in decisions if d.admitted]
        refused = [d for d in decisions if not d.admitted]
        assert served  # degradation, not blackout
        assert refused  # no route avoids two of three shards for every pair
        assert {d.reason for d in refused} == {"shard-down"}
