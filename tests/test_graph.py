"""Unit tests for the directed-link network model."""

from __future__ import annotations

import pytest

from repro.topology.graph import Link, Network


class TestLink:
    def test_endpoints(self):
        link = Link(index=0, src=1, dst=2, capacity=10)
        assert link.endpoints == (1, 2)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link(index=0, src=0, dst=1, capacity=-1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(index=0, src=3, dst=3, capacity=1)


class TestNetworkBuild:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network(0)

    def test_add_link(self):
        net = Network(3)
        link = net.add_link(0, 1, 5)
        assert link.index == 0
        assert net.num_links == 1
        assert net.link_between(0, 1) is link
        assert net.link_between(1, 0) is None

    def test_duplicate_link_rejected(self):
        net = Network(2)
        net.add_link(0, 1, 5)
        with pytest.raises(ValueError):
            net.add_link(0, 1, 5)

    def test_duplex_adds_both_directions(self):
        net = Network(2)
        forward, backward = net.add_duplex_link(0, 1, 7)
        assert forward.endpoints == (0, 1)
        assert backward.endpoints == (1, 0)
        assert net.num_links == 2

    def test_out_of_range_node_rejected(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.add_link(0, 2, 1)

    def test_node_names(self):
        net = Network(2, node_names=["alpha", "beta"])
        assert net.node_name(1) == "beta"
        assert Network(2).node_name(1) == "1"

    def test_node_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Network(3, node_names=["only", "two"])

    def test_node_pairs(self):
        net = Network(3)
        pairs = list(net.node_pairs())
        assert len(pairs) == 6
        assert (0, 0) not in pairs
        assert (2, 1) in pairs


class TestTopologyQueries:
    @pytest.fixture()
    def triangle(self):
        net = Network(3)
        net.add_duplex_link(0, 1, 4)
        net.add_duplex_link(1, 2, 4)
        net.add_duplex_link(0, 2, 4)
        return net

    def test_neighbors(self, triangle):
        assert sorted(triangle.neighbors(0)) == [1, 2]

    def test_out_links(self, triangle):
        assert {l.dst for l in triangle.out_links(1)} == {0, 2}

    def test_capacities_array(self, triangle):
        caps = triangle.capacities()
        assert caps.shape == (6,)
        assert (caps == 4).all()

    def test_path_links(self, triangle):
        links = triangle.path_links([0, 1, 2])
        assert len(links) == 2
        assert triangle.link(links[0]).endpoints == (0, 1)
        assert triangle.link(links[1]).endpoints == (1, 2)

    def test_path_links_rejects_missing_hop(self):
        net = Network(3)
        net.add_link(0, 1, 1)
        with pytest.raises(ValueError):
            net.path_links([0, 1, 2])

    def test_path_links_rejects_trivial_path(self, triangle):
        with pytest.raises(ValueError):
            triangle.path_links([0])

    def test_is_valid_path(self, triangle):
        assert triangle.is_valid_path([0, 1, 2])
        assert not triangle.is_valid_path([0, 1, 0])  # revisits a node
        assert not triangle.is_valid_path([0])


class TestFailures:
    @pytest.fixture()
    def net(self):
        network = Network(3)
        network.add_duplex_link(0, 1, 2)
        network.add_duplex_link(1, 2, 2)
        return network

    def test_fail_link_hides_it(self, net):
        net.fail_link(0, 1)
        assert net.link_between(0, 1) is None
        assert net.link_between(1, 0) is not None
        assert 1 not in net.neighbors(0)

    def test_fail_duplex(self, net):
        net.fail_duplex_link(0, 1)
        assert net.link_between(0, 1) is None
        assert net.link_between(1, 0) is None

    def test_failed_capacity_zeroed(self, net):
        net.fail_link(0, 1)
        caps = net.capacities()
        index = [l.index for l in net.links if l.endpoints == (0, 1)][0]
        assert caps[index] == 0

    def test_restore(self, net):
        net.fail_link(0, 1)
        net.restore_link(0, 1)
        assert net.link_between(0, 1) is not None

    def test_restore_all(self, net):
        net.fail_duplex_link(0, 1)
        net.restore_all()
        assert not net.failed_links

    def test_fail_missing_link_raises(self, net):
        with pytest.raises(KeyError):
            net.fail_link(0, 2)

    def test_path_through_failed_link_invalid(self, net):
        net.fail_link(1, 2)
        assert not net.is_valid_path([0, 1, 2])
        with pytest.raises(ValueError):
            net.path_links([0, 1, 2])

    def test_copy_preserves_failures_independently(self, net):
        net.fail_link(0, 1)
        clone = net.copy()
        assert clone.link_between(0, 1) is None
        clone.restore_all()
        assert net.link_between(0, 1) is None  # original untouched
        assert clone.link_between(0, 1) is not None
