"""Tests for the packet-level call-setup signaling protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.shadow import OttKrishnanRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.signaling import (
    SignalingConfig,
    SignalingSimulator,
    simulate_signaling,
)
from repro.sim.simulator import simulate
from repro.sim.trace import generate_multiclass_trace, generate_trace
from repro.topology.generators import line
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix


class TestConfig:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SignalingConfig(propagation_delay=-1.0)

    def test_shadow_policy_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = OttKrishnanRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, 20.0, 0)
        with pytest.raises(ValueError):
            SignalingSimulator(quad_network, policy, trace)

    def test_multiclass_trace_rejected(self, quad_network, quad_table):
        classes = [("a", uniform_traffic(4, 5.0), 2)]
        trace = generate_multiclass_trace(classes, 20.0, 0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            SignalingSimulator(quad_network, policy, trace)

    def test_bad_warmup_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        trace = generate_trace(traffic, 20.0, 0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            SignalingSimulator(quad_network, policy, trace, warmup=20.0)


class TestZeroDelayEquivalence:
    """With no propagation delay the protocol is atomic per arrival and must
    reproduce the flow-level simulator decision for decision."""

    @pytest.mark.parametrize("load", [80.0, 95.0, 105.0])
    def test_uncontrolled_matches_flow_simulator(self, quad_network, quad_table, load):
        traffic = uniform_traffic(4, load)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 1)
        flow = simulate(quad_network, policy, trace, 5.0)
        signaling, __ = simulate_signaling(quad_network, policy, trace, 5.0)
        assert np.array_equal(flow.blocked, signaling.blocked)
        assert flow.primary_carried == signaling.primary_carried
        assert flow.alternate_carried == signaling.alternate_carried

    def test_controlled_matches_flow_simulator(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, 25.0, 2)
        flow = simulate(quad_network, policy, trace, 5.0)
        signaling, stats = simulate_signaling(quad_network, policy, trace, 5.0)
        assert np.array_equal(flow.blocked, signaling.blocked)
        assert stats.race_aborts == 0  # atomic: no check/book separation

    def test_setup_latency_zero_without_delay(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 60.0)
        policy = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 3)
        __, stats = simulate_signaling(quad_network, policy, trace, 5.0)
        assert stats.mean_setup_latency == 0.0
        assert stats.established > 0


class TestProtocolMechanics:
    def test_crankbacks_counted(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 100.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 4)
        __, stats = simulate_signaling(quad_network, policy, trace, 5.0)
        assert stats.crankbacks > 0

    def test_latency_scales_with_route_length(self):
        # A lightly loaded 3-hop line: round trip = 6 hops of delay.
        net = line(4, 50)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 3): 5.0})
        policy = SinglePathRouting(net, table)
        trace = generate_trace(traffic, 60.0, 0)
        delay = 0.001
        __, stats = simulate_signaling(net, policy, trace, 10.0, propagation_delay=delay)
        assert stats.mean_setup_latency == pytest.approx(6 * delay, rel=1e-6)

    def test_race_aborts_appear_with_delay(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 100.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 5)
        __, stats = simulate_signaling(
            quad_network, policy, trace, 5.0, propagation_delay=0.005
        )
        assert stats.race_aborts > 0

    def test_occupancy_consistency_under_races(self, quad_network, quad_table):
        # Whatever the race outcomes, every booking must eventually be
        # released: rerunning the trace to completion leaves no leaked
        # circuits (blocking at light load returns to zero).
        heavy = uniform_traffic(4, 100.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(heavy, 30.0, 6)
        simulator = SignalingSimulator(
            quad_network, policy, trace, 5.0, SignalingConfig(propagation_delay=0.01)
        )
        simulator.run()
        # The event queue drained; follow with a light probe on fresh state
        # via a new simulator to assert the class has no global state.
        light = uniform_traffic(4, 1.0)
        probe = generate_trace(light, 30.0, 7)
        result, __ = simulate_signaling(quad_network, policy, probe, 5.0)
        assert result.network_blocking == 0.0

    def test_blocking_degrades_gracefully_with_delay(self, quad_network, quad_table):
        # More delay -> more stale checks -> no better blocking.
        traffic = uniform_traffic(4, 95.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 8)
        results = []
        for delay in (0.0, 0.01):
            result, __ = simulate_signaling(
                quad_network, policy, trace, 5.0, propagation_delay=delay
            )
            results.append(result.network_blocking)
        assert results[1] >= results[0] - 0.01


class TestNsfnetIntegration:
    def test_zero_delay_matches_flow_on_nsfnet(self, nsfnet, nsfnet_table):
        from repro.traffic.calibration import nsfnet_nominal_traffic
        from repro.traffic.demand import primary_link_loads

        traffic = nsfnet_nominal_traffic()
        loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
        policy = ControlledAlternateRouting(nsfnet, nsfnet_table, loads)
        trace = generate_trace(traffic, 15.0, 0)
        flow = simulate(nsfnet, policy, trace, 5.0)
        signaling, stats = simulate_signaling(nsfnet, policy, trace, 5.0)
        assert np.array_equal(flow.blocked, signaling.blocked)
        assert stats.established == flow.primary_carried + flow.alternate_carried

    def test_realistic_delay_negligible_on_nsfnet(self, nsfnet, nsfnet_table):
        from repro.traffic.calibration import nsfnet_nominal_traffic
        from repro.traffic.demand import primary_link_loads

        traffic = nsfnet_nominal_traffic()
        loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
        policy = ControlledAlternateRouting(nsfnet, nsfnet_table, loads)
        trace = generate_trace(traffic, 15.0, 1)
        atomic = simulate(nsfnet, policy, trace, 5.0).network_blocking
        delayed, stats = simulate_signaling(
            nsfnet, policy, trace, 5.0, propagation_delay=1e-4
        )
        assert abs(delayed.network_blocking - atomic) < 0.01
        assert stats.race_aborts < stats.established * 0.01
