"""Tests for the packet-level call-setup signaling protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.shadow import OttKrishnanRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.signaling import (
    SignalingConfig,
    SignalingSimulator,
    simulate_signaling,
)
from repro.sim.simulator import simulate
from repro.sim.trace import generate_multiclass_trace, generate_trace
from repro.topology.generators import line
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix


class TestConfig:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SignalingConfig(propagation_delay=-1.0)

    def test_shadow_policy_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = OttKrishnanRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, 20.0, 0)
        with pytest.raises(ValueError):
            SignalingSimulator(quad_network, policy, trace)

    def test_multiclass_trace_rejected(self, quad_network, quad_table):
        classes = [("a", uniform_traffic(4, 5.0), 2)]
        trace = generate_multiclass_trace(classes, 20.0, 0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            SignalingSimulator(quad_network, policy, trace)

    def test_bad_warmup_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        trace = generate_trace(traffic, 20.0, 0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            SignalingSimulator(quad_network, policy, trace, warmup=20.0)


class TestZeroDelayEquivalence:
    """With no propagation delay the protocol is atomic per arrival and must
    reproduce the flow-level simulator decision for decision."""

    @pytest.mark.parametrize("load", [80.0, 95.0, 105.0])
    def test_uncontrolled_matches_flow_simulator(self, quad_network, quad_table, load):
        traffic = uniform_traffic(4, load)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 1)
        flow = simulate(quad_network, policy, trace, 5.0)
        signaling, __ = simulate_signaling(quad_network, policy, trace, 5.0)
        assert np.array_equal(flow.blocked, signaling.blocked)
        assert flow.primary_carried == signaling.primary_carried
        assert flow.alternate_carried == signaling.alternate_carried

    def test_controlled_matches_flow_simulator(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, 25.0, 2)
        flow = simulate(quad_network, policy, trace, 5.0)
        signaling, stats = simulate_signaling(quad_network, policy, trace, 5.0)
        assert np.array_equal(flow.blocked, signaling.blocked)
        assert stats.race_aborts == 0  # atomic: no check/book separation

    def test_setup_latency_zero_without_delay(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 60.0)
        policy = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 3)
        __, stats = simulate_signaling(quad_network, policy, trace, 5.0)
        assert stats.mean_setup_latency == 0.0
        assert stats.established > 0


class TestProtocolMechanics:
    def test_crankbacks_counted(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 100.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 4)
        __, stats = simulate_signaling(quad_network, policy, trace, 5.0)
        assert stats.crankbacks > 0

    def test_latency_scales_with_route_length(self):
        # A lightly loaded 3-hop line: round trip = 6 hops of delay.
        net = line(4, 50)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 3): 5.0})
        policy = SinglePathRouting(net, table)
        trace = generate_trace(traffic, 60.0, 0)
        delay = 0.001
        __, stats = simulate_signaling(net, policy, trace, 10.0, propagation_delay=delay)
        assert stats.mean_setup_latency == pytest.approx(6 * delay, rel=1e-6)

    def test_race_aborts_appear_with_delay(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 100.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 5)
        __, stats = simulate_signaling(
            quad_network, policy, trace, 5.0, propagation_delay=0.005
        )
        assert stats.race_aborts > 0

    def test_occupancy_consistency_under_races(self, quad_network, quad_table):
        # Whatever the race outcomes, every booking must eventually be
        # released: rerunning the trace to completion leaves no leaked
        # circuits (blocking at light load returns to zero).
        heavy = uniform_traffic(4, 100.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(heavy, 30.0, 6)
        simulator = SignalingSimulator(
            quad_network, policy, trace, 5.0, SignalingConfig(propagation_delay=0.01)
        )
        simulator.run()
        # The event queue drained; follow with a light probe on fresh state
        # via a new simulator to assert the class has no global state.
        light = uniform_traffic(4, 1.0)
        probe = generate_trace(light, 30.0, 7)
        result, __ = simulate_signaling(quad_network, policy, probe, 5.0)
        assert result.network_blocking == 0.0

    def test_blocking_degrades_gracefully_with_delay(self, quad_network, quad_table):
        # More delay -> more stale checks -> no better blocking.
        traffic = uniform_traffic(4, 95.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 8)
        results = []
        for delay in (0.0, 0.01):
            result, __ = simulate_signaling(
                quad_network, policy, trace, 5.0, propagation_delay=delay
            )
            results.append(result.network_blocking)
        assert results[1] >= results[0] - 0.01


class TestNsfnetIntegration:
    def test_zero_delay_matches_flow_on_nsfnet(self, nsfnet, nsfnet_table):
        from repro.traffic.calibration import nsfnet_nominal_traffic
        from repro.traffic.demand import primary_link_loads

        traffic = nsfnet_nominal_traffic()
        loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
        policy = ControlledAlternateRouting(nsfnet, nsfnet_table, loads)
        trace = generate_trace(traffic, 15.0, 0)
        flow = simulate(nsfnet, policy, trace, 5.0)
        signaling, stats = simulate_signaling(nsfnet, policy, trace, 5.0)
        assert np.array_equal(flow.blocked, signaling.blocked)
        assert stats.established == flow.primary_carried + flow.alternate_carried

    def test_realistic_delay_negligible_on_nsfnet(self, nsfnet, nsfnet_table):
        from repro.traffic.calibration import nsfnet_nominal_traffic
        from repro.traffic.demand import primary_link_loads

        traffic = nsfnet_nominal_traffic()
        loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
        policy = ControlledAlternateRouting(nsfnet, nsfnet_table, loads)
        trace = generate_trace(traffic, 15.0, 1)
        atomic = simulate(nsfnet, policy, trace, 5.0).network_blocking
        delayed, stats = simulate_signaling(
            nsfnet, policy, trace, 5.0, propagation_delay=1e-4
        )
        assert abs(delayed.network_blocking - atomic) < 0.01
        assert stats.race_aborts < stats.established * 0.01


class TestHardenedSignaling:
    def test_loss_requires_timeout(self):
        with pytest.raises(ValueError, match="setup_timeout"):
            SignalingConfig(message_loss_probability=0.1, hold_timer=1.0)

    def test_loss_requires_hold_timer(self):
        with pytest.raises(ValueError, match="hold_timer"):
            SignalingConfig(message_loss_probability=0.1, setup_timeout=0.1)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            SignalingConfig(message_loss_probability=1.0)
        with pytest.raises(ValueError):
            SignalingConfig(setup_timeout=0.0)
        with pytest.raises(ValueError):
            SignalingConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            SignalingConfig(crankback_budget=-1)

    def test_fault_equivalence_with_flow_simulator(self, nsfnet, nsfnet_table):
        # Zero delay, no loss, default timers: the protocol is atomic per
        # arrival, so even with a mid-run failure it must match the flow
        # simulator decision for decision — blocked AND dropped.
        from repro.sim.faultplane import single_failure_timeline
        from repro.traffic.calibration import nsfnet_nominal_traffic
        from repro.traffic.demand import primary_link_loads

        traffic = nsfnet_nominal_traffic().scaled(1.2)
        loads = primary_link_loads(nsfnet, nsfnet_table, traffic)
        policy = ControlledAlternateRouting(nsfnet, nsfnet_table, loads)
        trace = generate_trace(traffic, 50.0, 4)
        timeline = single_failure_timeline(2, 3, fail_at=20.0, repair_at=35.0)
        flow = simulate(nsfnet, policy, trace, 10.0, faults=timeline)
        signaling, __ = simulate_signaling(
            nsfnet, policy, trace, 10.0, faults=timeline
        )
        assert flow.total_dropped > 0
        assert np.array_equal(flow.blocked, signaling.blocked)
        assert np.array_equal(flow.dropped, signaling.dropped)
        assert flow.primary_carried == signaling.primary_carried
        assert flow.alternate_carried == signaling.alternate_carried

    def test_loss_triggers_timeouts_and_retries(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 60.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 9)
        config = SignalingConfig(
            propagation_delay=0.01,
            message_loss_probability=0.2,
            setup_timeout=0.1,
            max_retries=2,
            hold_timer=0.5,
        )
        __, stats = simulate_signaling(
            quad_network, policy, trace, 5.0, config=config
        )
        assert stats.messages_lost > 0
        assert stats.setup_timeouts > 0
        assert stats.retries > 0

    def test_backoff_reduces_spurious_timeouts(self):
        # On a long path with a timeout shorter than the round trip, retry
        # k waits timeout * factor^k: a large factor lets later retries
        # outlast the round trip, so fewer attempts expire spuriously.
        net = line(5, 50)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 4): 3.0})
        policy = SinglePathRouting(net, table)
        trace = generate_trace(traffic, 40.0, 1)
        timeouts = []
        for factor in (1.0, 4.0):
            config = SignalingConfig(
                propagation_delay=0.01,  # round trip = 8 hops = 0.08
                setup_timeout=0.05,
                max_retries=3,
                backoff_factor=factor,
            )
            __, stats = simulate_signaling(net, policy, trace, 5.0, config=config)
            timeouts.append(stats.setup_timeouts)
        assert timeouts[1] < timeouts[0]

    def test_crankback_budget_blocks_instead_of_hunting(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 100.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 25.0, 10)
        unbounded, __ = simulate_signaling(quad_network, policy, trace, 5.0)
        budgeted, stats = simulate_signaling(
            quad_network, policy, trace, 5.0,
            config=SignalingConfig(crankback_budget=0),
        )
        # Budget 0: the first crankback exhausts the budget, so no call ever
        # reaches an alternate — every would-be overflow blocks instead.
        assert stats.budget_blocked > 0
        assert budgeted.alternate_carried == 0
        assert unbounded.alternate_carried > 0

    def test_hold_timers_release_orphaned_bookings(self, quad_network, quad_table):
        # Hammer the network through a lossy signaling plane, then probe
        # with a light lossless trace: if lost CONFIRMs leaked circuits the
        # probe would see phantom occupancy and block.
        heavy = uniform_traffic(4, 100.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(heavy, 30.0, 11)
        config = SignalingConfig(
            propagation_delay=0.01,
            message_loss_probability=0.3,
            setup_timeout=0.1,
            max_retries=1,
            hold_timer=0.5,
        )
        simulator = SignalingSimulator(
            quad_network, policy, trace, 5.0, config=config
        )
        simulator.run()
        assert simulator.stats.hold_expirations > 0
        light = generate_trace(uniform_traffic(4, 1.0), 30.0, 12)
        probe, __ = simulate_signaling(quad_network, policy, light, 5.0)
        assert probe.network_blocking == 0.0

    def test_dropped_calls_counted_against_availability(self, nsfnet, nsfnet_table):
        from repro.sim.faultplane import single_failure_timeline
        from repro.traffic.calibration import nsfnet_nominal_traffic

        traffic = nsfnet_nominal_traffic()
        policy = UncontrolledAlternateRouting(nsfnet, nsfnet_table)
        trace = generate_trace(traffic, 40.0, 5)
        result, stats = simulate_signaling(
            nsfnet, policy, trace, 10.0,
            faults=single_failure_timeline(2, 3, fail_at=20.0),
        )
        assert stats.dropped_calls >= result.total_dropped > 0
        assert result.availability < 1.0 - result.network_blocking


class TestCrankbackReservationAudit:
    """Regression audit for the partially-reserved-then-refused paths.

    Every crankback outcome — setup-phase refusal, race abort mid-CONFIRM
    (the walk that releases partial bookings), timeout rollback, budget
    exhaustion, and lost release messages reaped by hold timers — must
    return its bookings: the run-end occupancy audit
    (``stats.leaked_reservations``) is zero for any correct configuration.
    """

    SCENARIOS = {
        "atomic": SignalingConfig(),
        "race-aborts-bare": SignalingConfig(propagation_delay=0.01),
        "race-aborts-held": SignalingConfig(
            propagation_delay=0.01, hold_timer=0.5
        ),
        "timeout-rollback": SignalingConfig(
            propagation_delay=0.01, setup_timeout=0.05, max_retries=2
        ),
        "budget-exhaustion": SignalingConfig(
            propagation_delay=0.01, crankback_budget=1
        ),
        "lossy-plane": SignalingConfig(
            propagation_delay=0.01,
            message_loss_probability=0.2,
            setup_timeout=0.1,
            max_retries=2,
            hold_timer=0.5,
        ),
        "lossy-budgeted": SignalingConfig(
            propagation_delay=0.01,
            message_loss_probability=0.25,
            setup_timeout=0.1,
            max_retries=1,
            crankback_budget=2,
            hold_timer=0.4,
        ),
    }

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_zero_leaked_reservations(self, quad_network, quad_table, name):
        config = self.SCENARIOS[name]
        traffic = uniform_traffic(4, 105.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 30.0, 13)
        simulator = SignalingSimulator(
            quad_network, policy, trace, 5.0, config=config
        )
        simulator.run()
        stats = simulator.stats
        # The scenario must actually exercise the reroute machinery it
        # names — a quiet run would vacuously pass the audit.
        assert stats.crankbacks > 0
        if config.propagation_delay > 0:
            assert stats.race_aborts > 0
        if config.crankback_budget is not None:
            assert stats.budget_blocked > 0
        if config.message_loss_probability > 0:
            assert stats.messages_lost > 0
            assert stats.hold_expirations > 0
        assert stats.leaked_reservations == 0
