"""Documentation guards: docs stay consistent with the code."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["gen_api_docs"] = module
    spec.loader.exec_module(module)
    return module


class TestApiIndex:
    def test_api_docs_up_to_date(self):
        generator = load_generator()
        committed = (REPO / "docs" / "API.md").read_text()
        assert generator.build() == committed, (
            "docs/API.md is stale; run `python tools/gen_api_docs.py`"
        )

    def test_api_index_covers_core_names(self):
        text = (REPO / "docs" / "API.md").read_text()
        for name in (
            "min_protection_level",
            "ControlledAlternateRouting",
            "LossNetworkSimulator",
            "nsfnet_backbone",
            "erlang_bound",
        ):
            assert f"`{name}`" in text


class TestReadmeQuickstart:
    @staticmethod
    def _snippets(count: int) -> list[str]:
        readme = (REPO / "README.md").read_text()
        snippets, position = [], 0
        for __ in range(count):
            start = readme.index("```python", position) + len("```python")
            end = readme.index("```", start)
            snippets.append(readme[start:end])
            position = end
        return snippets

    def test_facade_snippet_executes(self, monkeypatch):
        # The first python block is the repro.api quickstart; it documents
        # the paper's full replication protocol, so run it with a quick
        # config patched into the façade entry points.
        import repro
        import repro.api
        from repro.experiments.runner import ReplicationConfig

        quick = ReplicationConfig(measured_duration=4.0, warmup=1.0, seeds=(0, 1))
        run_scenario, run_study = repro.api.run_scenario, repro.api.run_study

        def quick_scenario(scenario, **kwargs):
            kwargs["duration"], kwargs["warmup"] = 5.0, 1.0
            return run_scenario(scenario, **kwargs)

        def quick_study(scenario, **kwargs):
            kwargs.setdefault("config", quick)
            return run_study(scenario, **kwargs)

        for module in (repro, repro.api):
            monkeypatch.setattr(module, "run_scenario", quick_scenario)
            monkeypatch.setattr(module, "run_study", quick_study)
        snippet = self._snippets(1)[0]
        exec(compile(snippet, "<README facade quickstart>", "exec"), {})

    def test_deep_import_snippet_executes(self):
        # The second python block is the deep-module wiring; substitute a
        # fast duration, guarding the documented API surface.
        snippet = self._snippets(2)[1]
        assert "duration=110.0" in snippet
        snippet = snippet.replace("duration=110.0", "duration=12.0")
        exec(compile(snippet, "<README quickstart>", "exec"), {})

    def test_readme_mentions_all_examples(self):
        readme = (REPO / "README.md").read_text()
        for example in (REPO / "examples").glob("*.py"):
            assert example.name in readme, f"README does not mention {example.name}"


class TestDesignDocument:
    def test_every_bench_file_mentioned_in_design(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in (REPO / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, f"DESIGN.md does not index {bench.name}"

    def test_experiments_doc_mentions_every_bench(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for bench in (REPO / "benchmarks").glob("bench_*.py"):
            if bench.name == "bench_core_primitives.py":
                continue  # microbenchmarks, not a paper artifact
            assert bench.name in experiments, f"EXPERIMENTS.md misses {bench.name}"


class TestUsageCookbook:
    def test_first_recipe_executes(self):
        usage = (REPO / "docs" / "USAGE.md").read_text()
        start = usage.index("```python") + len("```python")
        end = usage.index("```", start)
        snippet = usage[start:end]
        snippet = snippet.replace(
            "measured_duration=100.0, warmup=10.0, seeds=tuple(range(10))",
            "measured_duration=8.0, warmup=2.0, seeds=(0,)",
        )
        namespace: dict = {}
        exec(compile(snippet, "<USAGE recipe 1>", "exec"), namespace)

    def test_docs_exist(self):
        for name in ("USAGE.md", "THEORY.md", "API.md"):
            assert (REPO / "docs" / name).exists()
