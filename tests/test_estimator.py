"""Tests for the online primary-load estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.estimator import EwmaRateEstimator, estimate_loads_from_trace
from repro.routing.single_path import SinglePathRouting
from repro.sim.trace import generate_trace
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic


class TestEwmaRateEstimator:
    def test_converges_to_poisson_rate(self):
        rng = np.random.default_rng(0)
        rate, tau = 20.0, 5.0
        estimator = EwmaRateEstimator(time_constant=tau)
        t = 0.0
        for __ in range(20_000):
            t += rng.exponential(1.0 / rate)
            estimator.observe(t)
        assert estimator.rate(t) == pytest.approx(rate, rel=0.3)

    def test_decays_without_events(self):
        estimator = EwmaRateEstimator(time_constant=1.0, initial_rate=10.0)
        assert estimator.rate(0.0) == 10.0
        assert estimator.rate(1.0) == pytest.approx(10.0 / np.e)
        assert estimator.rate(50.0) < 1e-10

    def test_single_event_impulse(self):
        estimator = EwmaRateEstimator(time_constant=2.0)
        estimator.observe(1.0)
        assert estimator.rate(1.0) == pytest.approx(0.5)

    def test_time_cannot_go_backwards(self):
        estimator = EwmaRateEstimator(time_constant=1.0)
        estimator.observe(5.0)
        with pytest.raises(ValueError):
            estimator.observe(4.0)
        with pytest.raises(ValueError):
            estimator.rate(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EwmaRateEstimator(time_constant=0.0)
        with pytest.raises(ValueError):
            EwmaRateEstimator(time_constant=1.0, initial_rate=-1.0)

    def test_zero_events_estimates_zero(self):
        # A cold estimator that never observes anything must report exactly
        # zero at any query time, not NaN or a stale initial value.
        estimator = EwmaRateEstimator(time_constant=3.0)
        assert estimator.rate(0.0) == 0.0
        assert estimator.rate(100.0) == 0.0
        # Querying never perturbs the state: an event after long silence
        # still contributes its full impulse.
        estimator.observe(100.0)
        assert estimator.rate(100.0) == pytest.approx(1.0 / 3.0)


class TestEstimateLoadsFromTrace:
    def test_estimates_approach_equation_one(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 40.0)
        truth = primary_link_loads(quad_network, quad_table, traffic)
        policy = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 210.0, seed=0)
        estimate = estimate_loads_from_trace(quad_network, policy, trace, warmup=10.0)
        # Per-link Poisson counts over 200 units: relative error ~ 1/sqrt(8000).
        assert estimate == pytest.approx(truth, rel=0.12)

    def test_nsfnet_estimates(self, nsfnet, nsfnet_table):
        traffic = nsfnet_nominal_traffic()
        truth = primary_link_loads(nsfnet, nsfnet_table, traffic)
        policy = SinglePathRouting(nsfnet, nsfnet_table)
        trace = generate_trace(traffic, 110.0, seed=1)
        estimate = estimate_loads_from_trace(nsfnet, policy, trace, warmup=10.0)
        relative = np.abs(estimate - truth) / np.maximum(truth, 1.0)
        assert np.median(relative) < 0.15

    def test_counts_blocked_setups_too(self):
        # Setup packets fly past the link even when the call will be blocked,
        # so estimates track *demand*, not carried load.  Use a capacity-1
        # network under heavy demand: carried load saturates at ~1 Erlang but
        # the estimate must track the full offered rate.
        from repro.topology.generators import line

        net = line(2, 1)
        table = build_path_table(net)
        traffic = uniform_traffic(2, 20.0)
        policy = SinglePathRouting(net, table)
        trace = generate_trace(traffic, 110.0, seed=2)
        estimate = estimate_loads_from_trace(net, policy, trace, warmup=10.0)
        assert estimate.max() > 15.0

    def test_empty_trace_estimates_all_zero(self, quad_network, quad_table):
        # Zero demand generates a trace with no arrivals at all; the
        # estimator must return finite all-zero loads, not divide by a
        # zero count or choke on the empty arrays.
        traffic = uniform_traffic(4, 0.0)
        policy = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 20.0, seed=0)
        assert trace.num_calls == 0
        estimate = estimate_loads_from_trace(
            quad_network, policy, trace, warmup=10.0
        )
        assert estimate.shape == (quad_network.num_links,)
        assert np.all(estimate == 0.0)
        assert np.all(np.isfinite(estimate))

    def test_bad_warmup_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        policy = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 20.0, seed=0)
        with pytest.raises(ValueError):
            estimate_loads_from_trace(quad_network, policy, trace, warmup=25.0)
