"""The ``repro.api`` façade and the keyword-only config shims."""

from __future__ import annotations

import pytest

from repro.api import Scenario, StudyResult, run_scenario, run_study
from repro.experiments.runner import ReplicationConfig
from repro.routing.alternate import ControlledAlternateRouting
from repro.sim.signaling import SignalingConfig
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.generators import uniform_traffic

QUICK = ReplicationConfig(measured_duration=5.0, warmup=1.0, seeds=(0, 1))


def _quick_scenario(**overrides) -> Scenario:
    defaults = dict(topology="quadrangle", traffic=90.0, policy="controlled")
    defaults.update(overrides)
    return Scenario(**defaults)


class TestScenario:
    def test_defaults_resolve_paper_setting(self):
        scenario = Scenario()
        assert scenario.network.num_nodes == 12
        assert scenario.traffic_matrix.total == pytest.approx(1015.6, abs=1.0)
        assert isinstance(scenario.build_policy(), ControlledAlternateRouting)

    def test_resolution_is_cached(self):
        scenario = Scenario(topology="quadrangle", traffic=2.0)
        assert scenario.network is scenario.network
        assert scenario.path_table is scenario.path_table

    def test_load_scale_applies(self):
        base = _quick_scenario()
        scaled = _quick_scenario(load_scale=1.5)
        assert scaled.traffic_matrix.total == pytest.approx(
            1.5 * base.traffic_matrix.total
        )

    def test_with_policy_keeps_everything_else(self):
        scenario = _quick_scenario(max_hops=2)
        other = scenario.with_policy("uncontrolled")
        assert other.policy == "uncontrolled"
        assert other.topology == scenario.topology
        assert other.max_hops == 2

    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Scenario(policy="mystery")
        with pytest.raises(ValueError, match="unknown topology"):
            Scenario(topology="torus").network
        with pytest.raises(ValueError, match="nominal"):
            Scenario(topology="quadrangle", traffic="nominal").traffic_matrix
        with pytest.raises(ValueError, match="load_scale"):
            Scenario(load_scale=0.0)

    def test_fields_are_keyword_only(self):
        with pytest.raises(TypeError):
            Scenario("nsfnet")


class TestRunScenario:
    def test_matches_manual_wiring(self):
        scenario = _quick_scenario(policy="single-path")
        via_api = run_scenario(scenario, seed=4, duration=11.0, warmup=1.0)

        network = quadrangle()
        table = build_path_table(network)
        traffic = uniform_traffic(4, 90.0)
        from repro.routing.single_path import SinglePathRouting

        manual = simulate(
            network, SinglePathRouting(network, table),
            generate_trace(traffic, 11.0, 4), warmup=1.0,
        )
        assert via_api.network_blocking == manual.network_blocking
        assert via_api.total_offered == manual.total_offered

    def test_reference_backend_reaches_simulator(self):
        scenario = _quick_scenario()
        fast = run_scenario(scenario, seed=1, duration=6.0, warmup=1.0)
        ref = run_scenario(
            scenario, seed=1, duration=6.0, warmup=1.0, backend="reference"
        )
        assert fast.network_blocking == ref.network_blocking


class TestRunStudy:
    def test_single_policy_study(self):
        study = run_study(_quick_scenario(), config=QUICK)
        assert isinstance(study, StudyResult)
        assert set(study.outcomes) == {"controlled"}
        assert study.outcome.all_completed
        assert study.stat.num_runs == len(QUICK.seeds)

    def test_multi_policy_study_shares_traces(self):
        study = run_study(
            _quick_scenario(),
            policies=("single-path", "uncontrolled", "controlled"),
            config=QUICK,
        )
        blocking = study.blocking()
        assert set(blocking) == {"single-path", "uncontrolled", "controlled"}
        # Common random numbers: every policy saw identical arrivals.
        offered = {
            name: [r.total_offered for r in outcome.results]
            for name, outcome in study.outcomes.items()
        }
        assert offered["single-path"] == offered["uncontrolled"]
        assert offered["single-path"] == offered["controlled"]
        with pytest.raises(ValueError, match="policies"):
            study.outcome

    def test_top_level_reexports(self):
        import repro

        assert repro.Scenario is Scenario
        assert repro.run_scenario is run_scenario
        assert repro.run_study is run_study


class TestKeywordOnlyConfigs:
    def test_replication_config_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="positionally"):
            config = ReplicationConfig(25.0, 5.0, (0, 1))
        assert config.measured_duration == 25.0
        assert config.warmup == 5.0
        assert config.seeds == (0, 1)

    def test_signaling_config_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="positionally"):
            config = SignalingConfig(0.01)
        assert config.propagation_delay == 0.01

    def test_keyword_construction_stays_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ReplicationConfig(measured_duration=25.0)
            SignalingConfig(propagation_delay=0.01)

    def test_positional_overflow_and_duplicates_raise(self):
        with pytest.raises(TypeError, match="at most"):
            ReplicationConfig(1.0, 2.0, (0,), "extra")
        with pytest.raises(TypeError, match="multiple values"):
            with pytest.warns(DeprecationWarning):
                ReplicationConfig(1.0, measured_duration=2.0)
