"""Tests for the deprecation shims in ``repro._compat``.

Two shims live there: :func:`positional_shim` keeps the kw-only config
dataclasses accepting positional construction (the pre-keyword-only calling
convention), and :func:`resolve_backend` keeps the legacy ``reference=``
boolean working on the simulation entry points after the ``backend=``
redesign.  These tests pin down both contracts directly instead of relying
on the incidental coverage the callers provide.
"""

from __future__ import annotations

import warnings

import pytest

from repro._compat import resolve_backend
from repro.experiments.runner import ReplicationConfig
from repro.sim.signaling import SignalingConfig


class TestReplicationConfigShim:
    def test_positional_maps_in_declaration_order(self):
        with pytest.warns(DeprecationWarning, match="ReplicationConfig"):
            config = ReplicationConfig(25.0, 5.0, (0, 1))
        assert config.measured_duration == 25.0
        assert config.warmup == 5.0
        assert config.seeds == (0, 1)

    def test_positional_equals_keyword(self):
        with pytest.warns(DeprecationWarning):
            positional = ReplicationConfig(25.0, 5.0, (0, 1))
        keyword = ReplicationConfig(measured_duration=25.0, warmup=5.0, seeds=(0, 1))
        assert positional == keyword

    def test_mixed_positional_and_keyword(self):
        with pytest.warns(DeprecationWarning):
            config = ReplicationConfig(25.0, warmup=7.0)
        assert config.measured_duration == 25.0
        assert config.warmup == 7.0
        assert config.seeds == tuple(range(10))

    def test_keyword_only_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ReplicationConfig(measured_duration=25.0)

    def test_too_many_positional_raises(self):
        with pytest.raises(TypeError, match="at most 3"):
            ReplicationConfig(25.0, 5.0, (0,), "extra")

    def test_duplicate_positional_and_keyword_raises(self):
        with pytest.raises(TypeError, match="multiple values"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                ReplicationConfig(25.0, measured_duration=30.0)

    def test_derived_properties_survive_shim(self):
        with pytest.warns(DeprecationWarning):
            config = ReplicationConfig(25.0, 5.0)
        assert config.duration == 30.0
        assert config.scaled(duration_factor=2.0).measured_duration == 50.0


class TestSignalingConfigShim:
    def test_positional_maps_in_declaration_order(self):
        with pytest.warns(DeprecationWarning, match="SignalingConfig"):
            config = SignalingConfig(1e-4, 0.0, 0.5)
        assert config.propagation_delay == 1e-4
        assert config.message_loss_probability == 0.0
        assert config.setup_timeout == 0.5

    def test_keyword_only_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SignalingConfig(propagation_delay=1e-4)

    def test_validation_still_runs_after_shim(self):
        # Positive loss without a setup timeout is rejected by the real
        # __post_init__ — the shim must not bypass it.
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                SignalingConfig(0.0, 0.5)


class TestResolveBackend:
    def test_plain_backend_passes_through(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for name in ("auto", "batch", "fast", "reference"):
                assert resolve_backend(name, None) == name

    def test_defaults_to_auto(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend(None, None) == "auto"

    def test_reference_true_maps_with_warning(self):
        with pytest.warns(DeprecationWarning, match="backend"):
            assert resolve_backend(None, True) == "reference"

    def test_reference_false_maps_with_warning(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_backend(None, False) == "auto"

    def test_conflicting_flags_raise(self):
        with pytest.raises(ValueError, match="conflicting"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                resolve_backend("fast", True)

    def test_agreeing_flags_allowed(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_backend("reference", True) == "reference"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu", None)


class TestBackendShim:
    """The public entry points honour the legacy ``reference=`` flag."""

    def _scenario(self):
        from repro.api import Scenario

        return Scenario(topology="quadrangle", traffic=2.0, policy="controlled")

    def test_run_scenario_reference_flag_warns_and_matches(self):
        from repro.api import run_scenario

        scenario = self._scenario()
        with pytest.warns(DeprecationWarning, match="run_scenario"):
            legacy = run_scenario(scenario, seed=3, duration=8.0, warmup=1.0,
                                  reference=True)
        modern = run_scenario(scenario, seed=3, duration=8.0, warmup=1.0,
                              backend="reference")
        assert legacy.network_blocking == modern.network_blocking
        assert (legacy.blocked == modern.blocked).all()

    def test_simulate_reference_flag_warns(self):
        from repro.sim.simulator import simulate
        from repro.sim.trace import generate_trace

        scenario = self._scenario()
        trace = generate_trace(scenario.traffic_matrix, 8.0, 1)
        policy = scenario.build_policy("controlled")
        with pytest.warns(DeprecationWarning, match="simulate"):
            legacy = simulate(scenario.network, policy, trace, warmup=1.0,
                              reference=True)
        modern = simulate(scenario.network, policy, trace, warmup=1.0,
                          backend="reference")
        assert legacy.network_blocking == modern.network_blocking

    def test_simulate_conflict_raises(self):
        from repro.sim.simulator import simulate
        from repro.sim.trace import generate_trace

        scenario = self._scenario()
        trace = generate_trace(scenario.traffic_matrix, 4.0, 0)
        policy = scenario.build_policy("controlled")
        with pytest.raises(ValueError, match="conflicting"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                simulate(scenario.network, policy, trace, warmup=1.0,
                         backend="fast", reference=True)

    def test_simulate_unknown_backend_raises(self):
        from repro.sim.simulator import simulate
        from repro.sim.trace import generate_trace

        scenario = self._scenario()
        trace = generate_trace(scenario.traffic_matrix, 4.0, 0)
        policy = scenario.build_policy("controlled")
        with pytest.raises(ValueError, match="unknown backend"):
            simulate(scenario.network, policy, trace, warmup=1.0,
                     backend="warp")
