"""Tests for the positional-argument deprecation shims in ``repro._compat``.

The kw-only config dataclasses keep accepting positional construction (the
pre-keyword-only calling convention) through :func:`positional_shim`; these
tests pin down the shim's contract directly instead of relying on the
incidental coverage the config-using tests provide.
"""

from __future__ import annotations

import warnings

import pytest

from repro.experiments.runner import ReplicationConfig
from repro.sim.signaling import SignalingConfig


class TestReplicationConfigShim:
    def test_positional_maps_in_declaration_order(self):
        with pytest.warns(DeprecationWarning, match="ReplicationConfig"):
            config = ReplicationConfig(25.0, 5.0, (0, 1))
        assert config.measured_duration == 25.0
        assert config.warmup == 5.0
        assert config.seeds == (0, 1)

    def test_positional_equals_keyword(self):
        with pytest.warns(DeprecationWarning):
            positional = ReplicationConfig(25.0, 5.0, (0, 1))
        keyword = ReplicationConfig(measured_duration=25.0, warmup=5.0, seeds=(0, 1))
        assert positional == keyword

    def test_mixed_positional_and_keyword(self):
        with pytest.warns(DeprecationWarning):
            config = ReplicationConfig(25.0, warmup=7.0)
        assert config.measured_duration == 25.0
        assert config.warmup == 7.0
        assert config.seeds == tuple(range(10))

    def test_keyword_only_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ReplicationConfig(measured_duration=25.0)

    def test_too_many_positional_raises(self):
        with pytest.raises(TypeError, match="at most 3"):
            ReplicationConfig(25.0, 5.0, (0,), "extra")

    def test_duplicate_positional_and_keyword_raises(self):
        with pytest.raises(TypeError, match="multiple values"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                ReplicationConfig(25.0, measured_duration=30.0)

    def test_derived_properties_survive_shim(self):
        with pytest.warns(DeprecationWarning):
            config = ReplicationConfig(25.0, 5.0)
        assert config.duration == 30.0
        assert config.scaled(duration_factor=2.0).measured_duration == 50.0


class TestSignalingConfigShim:
    def test_positional_maps_in_declaration_order(self):
        with pytest.warns(DeprecationWarning, match="SignalingConfig"):
            config = SignalingConfig(1e-4, 0.0, 0.5)
        assert config.propagation_delay == 1e-4
        assert config.message_loss_probability == 0.0
        assert config.setup_timeout == 0.5

    def test_keyword_only_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SignalingConfig(propagation_delay=1e-4)

    def test_validation_still_runs_after_shim(self):
        # Positive loss without a setup timeout is rejected by the real
        # __post_init__ — the shim must not bypass it.
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                SignalingConfig(0.0, 0.5)
