"""Tests for the NSFNet T3 backbone model (Figure 5 / Table 1 data)."""

from __future__ import annotations

import pytest

from repro.topology.nsfnet import (
    NSFNET_DUPLEX_LINKS,
    NSFNET_TABLE1_LOADS,
    NSFNET_TABLE1_PROTECTION,
    nsfnet_backbone,
)
from repro.topology.paths import min_hop_distances


class TestTopology:
    def test_node_and_link_counts(self):
        net = nsfnet_backbone()
        assert net.num_nodes == 12
        assert net.num_links == 30  # 15 duplex links

    def test_strongly_connected(self):
        net = nsfnet_backbone()
        for src in net.nodes():
            assert max(min_hop_distances(net, src)) < float("inf")

    def test_adjacency_matches_table1(self):
        net = nsfnet_backbone()
        directed = {link.endpoints for link in net.links}
        assert directed == set(NSFNET_TABLE1_LOADS)

    def test_every_duplex_link_is_bidirectional(self):
        net = nsfnet_backbone()
        for a, b in NSFNET_DUPLEX_LINKS:
            assert net.has_link(a, b)
            assert net.has_link(b, a)

    def test_default_capacity(self):
        net = nsfnet_backbone()
        assert all(link.capacity == 100 for link in net.links)

    def test_custom_capacity(self):
        net = nsfnet_backbone(capacity=40)
        assert all(link.capacity == 40 for link in net.links)

    def test_degree_profile(self):
        # Figure 5: degree-2 chain nodes and degree-3 junctions only.
        net = nsfnet_backbone()
        degrees = sorted(len(net.neighbors(n)) for n in net.nodes())
        assert set(degrees) == {2, 3}

    def test_node_names_present(self):
        net = nsfnet_backbone()
        assert net.node_name(0) != "0"

    def test_sparse_mesh_cycle_dimension(self):
        # 15 undirected edges on 12 nodes: cycle-space dimension 4, the
        # sparseness that bounds the simple-path counts.
        assert len(NSFNET_DUPLEX_LINKS) - 12 + 1 == 4


class TestTable1Data:
    def test_tables_cover_all_directed_links(self):
        assert len(NSFNET_TABLE1_LOADS) == 30
        assert set(NSFNET_TABLE1_LOADS) == set(NSFNET_TABLE1_PROTECTION)

    def test_protection_levels_are_valid(self):
        for (r6, r11) in NSFNET_TABLE1_PROTECTION.values():
            assert 0 <= r6 <= 100
            assert 0 <= r11 <= 100
            assert r11 >= r6  # larger H demands at least as much protection

    def test_overloaded_links_fully_protected_at_h11(self):
        for endpoints, load in NSFNET_TABLE1_LOADS.items():
            if load > 100:
                assert NSFNET_TABLE1_PROTECTION[endpoints][1] == 100

    def test_loads_positive(self):
        assert all(load > 0 for load in NSFNET_TABLE1_LOADS.values())
