"""Tests for the generic discrete-event queue."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventQueue


class TestScheduling:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda q, p: fired.append(p), "late")
        queue.schedule(1.0, lambda q, p: fired.append(p), "early")
        queue.schedule(2.0, lambda q, p: fired.append(p), "middle")
        assert queue.run() == 3
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.schedule(1.0, lambda q, p: fired.append(p), label)
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda q, p: seen.append(q.now), None)
        queue.run()
        assert seen == [5.0]
        assert queue.now == 5.0

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(2.0, lambda q, p: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule(1.0, lambda q, p: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_in(-1.0, lambda q, p: None)

    def test_callbacks_can_schedule_more(self):
        queue = EventQueue()
        fired = []

        def chain(q, depth):
            fired.append(depth)
            if depth < 3:
                q.schedule_in(1.0, chain, depth + 1)

        queue.schedule(0.0, chain, 0)
        assert queue.run() == 4
        assert fired == [0, 1, 2, 3]
        assert queue.now == 3.0


class TestRunUntil:
    def test_until_leaves_later_events_queued(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda q, p: fired.append(1), None)
        queue.schedule(10.0, lambda q, p: fired.append(10), None)
        assert queue.run(until=5.0) == 1
        assert fired == [1]
        assert queue.now == 5.0
        assert len(queue) == 1
        queue.run()
        assert fired == [1, 10]

    def test_reentrant_run_rejected(self):
        queue = EventQueue()

        def recurse(q, p):
            q.run()

        queue.schedule(1.0, recurse)
        with pytest.raises(RuntimeError):
            queue.run()


class TestBoundaryTiming:
    def test_until_includes_events_at_exactly_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5.0, lambda q, p: fired.append(p), "at")
        queue.run(until=5.0)
        assert fired == ["at"]

    def test_len_reflects_pending_events(self):
        queue = EventQueue()
        assert len(queue) == 0
        queue.schedule(1.0, lambda q, p: None)
        queue.schedule(2.0, lambda q, p: None)
        assert len(queue) == 2
        queue.run()
        assert len(queue) == 0
