"""Unit tests for path computation, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.topology.generators import fully_connected, grid, line, random_mesh, ring
from repro.topology.graph import Network
from repro.topology.paths import (
    all_min_hop_paths,
    alternate_path_census,
    build_path_table,
    k_shortest_paths,
    min_hop_distances,
    min_hop_path,
    simple_paths_by_length,
)


def to_networkx(network: Network) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(network.nodes())
    for link in network.links:
        if not network.is_failed(link.index):
            graph.add_edge(link.src, link.dst)
    return graph


MESHES = [
    fully_connected(4, 1),
    ring(6, 1),
    grid(3, 3, 1),
    random_mesh(8, 5, 1, seed=3),
]


class TestMinHop:
    @pytest.mark.parametrize("network", MESHES)
    def test_distances_match_networkx(self, network):
        graph = to_networkx(network)
        for src in network.nodes():
            ours = min_hop_distances(network, src)
            reference = nx.single_source_shortest_path_length(graph, src)
            for dst in network.nodes():
                assert ours[dst] == reference.get(dst, float("inf"))

    @pytest.mark.parametrize("network", MESHES)
    def test_min_hop_path_is_shortest(self, network):
        graph = to_networkx(network)
        for src in network.nodes():
            for dst in network.nodes():
                if src == dst:
                    continue
                path = min_hop_path(network, src, dst)
                assert path is not None
                assert len(path) - 1 == nx.shortest_path_length(graph, src, dst)
                assert network.is_valid_path(path)

    def test_lexicographic_tie_break(self):
        net = fully_connected(4, 1)
        # All 2-hop paths 0->x->3 tie; min-hop is the direct link, but check
        # the all-paths enumeration is lexicographic.
        paths = all_min_hop_paths(net, 0, 3)
        assert paths == [(0, 3)]
        # Remove the direct links; now 2-hop paths tie and 0->1->3 wins.
        net.fail_duplex_link(0, 3)
        assert min_hop_path(net, 0, 3) == (0, 1, 3)
        assert all_min_hop_paths(net, 0, 3) == [(0, 1, 3), (0, 2, 3)]

    def test_unreachable_returns_none(self):
        net = Network(3)
        net.add_link(0, 1, 1)
        assert min_hop_path(net, 0, 2) is None
        assert all_min_hop_paths(net, 0, 2) == []

    def test_same_node_rejected(self):
        net = fully_connected(3, 1)
        with pytest.raises(ValueError):
            min_hop_path(net, 1, 1)

    def test_respects_directionality(self):
        net = Network(3)
        net.add_link(0, 1, 1)
        net.add_link(1, 2, 1)
        net.add_link(2, 0, 1)
        assert min_hop_path(net, 0, 2) == (0, 1, 2)
        assert min_hop_path(net, 2, 1) == (2, 0, 1)


class TestSimplePaths:
    @pytest.mark.parametrize("network", MESHES)
    def test_matches_networkx_enumeration(self, network):
        graph = to_networkx(network)
        for src, dst in [(0, network.num_nodes - 1), (1, 2)]:
            ours = simple_paths_by_length(network, src, dst)
            reference = sorted(
                (tuple(p) for p in nx.all_simple_paths(graph, src, dst)),
                key=lambda p: (len(p), p),
            )
            assert ours == reference

    @pytest.mark.parametrize("network", MESHES)
    def test_hop_limit_respected(self, network):
        for limit in (1, 2, 3):
            paths = simple_paths_by_length(network, 0, network.num_nodes - 1, limit)
            assert all(len(p) - 1 <= limit for p in paths)

    def test_sorted_by_length_then_lex(self):
        net = fully_connected(4, 1)
        paths = simple_paths_by_length(net, 0, 1)
        keys = [(len(p), p) for p in paths]
        assert keys == sorted(keys)

    def test_zero_limit_empty(self):
        net = fully_connected(3, 1)
        assert simple_paths_by_length(net, 0, 1, max_hops=0) == []


class TestKShortest:
    @pytest.mark.parametrize("network", MESHES)
    def test_prefix_of_full_enumeration(self, network):
        src, dst = 0, network.num_nodes - 1
        full = simple_paths_by_length(network, src, dst)
        for k in (1, 3, 7):
            assert k_shortest_paths(network, src, dst, k) == full[: min(k, len(full))]

    def test_matches_networkx_lengths(self):
        network = random_mesh(9, 6, 1, seed=11)
        graph = to_networkx(network)
        ours = k_shortest_paths(network, 0, 8, 6)
        reference = []
        for path in nx.shortest_simple_paths(graph, 0, 8):
            reference.append(tuple(path))
            if len(reference) == 6:
                break
        assert [len(p) for p in ours] == [len(p) for p in reference]

    def test_unreachable(self):
        net = Network(2)
        net.add_link(1, 0, 1)
        assert k_shortest_paths(net, 0, 1, 3) == []

    def test_zero_k(self):
        net = fully_connected(3, 1)
        assert k_shortest_paths(net, 0, 1, 0) == []

    def test_does_not_mutate_network(self):
        net = fully_connected(4, 1)
        k_shortest_paths(net, 0, 3, 5)
        assert not net.failed_links


class TestPathTable:
    def test_quadrangle_routes(self, quad_network, quad_table):
        routes = quad_table.routes((0, 1))
        assert routes[0] == (0, 1)
        assert set(routes[1:3]) == {(0, 2, 1), (0, 3, 1)}
        assert len(routes) == 5  # direct + two 2-hop + two 3-hop

    def test_alternates_exclude_primary(self, quad_table):
        for od in quad_table.od_pairs():
            assert quad_table.primary[od] not in quad_table.alternates[od]

    def test_alternates_ordered_by_length(self, nsfnet_table):
        for od in nsfnet_table.od_pairs():
            lengths = [len(p) for p in nsfnet_table.alternates[od]]
            assert lengths == sorted(lengths)

    def test_census_matches_paper_h11(self, nsfnet_table):
        census = alternate_path_census(nsfnet_table)
        # Paper: "about 9 alternate paths, with a maximum of 15 and a minimum of 5".
        assert 8.0 <= census["mean"] <= 9.5
        assert census["max"] == 15.0
        assert census["min"] == 5.0
        assert census["pairs"] == 132.0

    def test_custom_primary_respected(self, quad_network):
        table = build_path_table(quad_network, primary={(0, 1): (0, 2, 1)})
        assert table.primary[(0, 1)] == (0, 2, 1)
        assert (0, 1) in table.alternates[(0, 1)]

    def test_invalid_custom_primary_rejected(self, quad_network):
        with pytest.raises(ValueError):
            build_path_table(quad_network, primary={(0, 1): (0, 1, 1)})

    def test_disconnected_pair_absent(self):
        net = Network(3)
        net.add_duplex_link(0, 1, 1)
        table = build_path_table(net)
        assert (0, 2) not in table.primary
        assert table.routes((0, 2)) == ()

    def test_line_topology_has_no_alternates(self):
        net = line(5, 1)
        table = build_path_table(net)
        assert all(not alts for alts in table.alternates.values())

    def test_empty_census(self):
        net = Network(2)
        net.add_link(0, 1, 1)
        table = build_path_table(net)
        census = alternate_path_census(table)
        assert census["mean"] == 0.0
