"""Tests for the experiment registry and its CLI surface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.registry import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)
from repro.experiments.runner import ReplicationConfig

TINY = ReplicationConfig(measured_duration=3.0, warmup=1.0, seeds=(0,))


class TestRegistry:
    def test_ids_match_design_document(self):
        assert {
            "FIG2", "TAB1", "FIG3", "FIG6", "EXP-H6", "EXP-OK",
            "EXP-FAIL", "EXP-FAIR", "EXP-MINLOSS", "EXT-BIST",
        } <= set(EXPERIMENTS)

    def test_bistability_report(self):
        report = run_experiment("EXT-BIST", TINY)
        assert "#fp(r=0)" in report

    def test_every_entry_names_a_benchmark_file(self):
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        for experiment in EXPERIMENTS.values():
            assert (bench_dir / experiment.bench).exists(), experiment.bench

    def test_list_output(self):
        text = list_experiments()
        assert "FIG3" in text
        assert "bench_fig3_quadrangle.py" in text

    def test_run_analytic_experiments(self):
        fig2 = run_experiment("FIG2", TINY)
        assert "r(H=6)" in fig2
        tab1 = run_experiment("tab1", TINY)  # case-insensitive
        assert "agreement" in tab1

    def test_run_simulation_experiment(self):
        report = run_experiment("FIG3", TINY)
        assert "controlled" in report
        assert "single-path" in report

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("FIG99", TINY)


class TestCliIntegration:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        assert "TAB1" in capsys.readouterr().out

    def test_experiment_command(self, capsys):
        assert main(["experiment", "FIG2", "--seeds", "1", "--duration", "3"]) == 0
        assert "Lambda" in capsys.readouterr().out


class TestRunAll:
    def test_report_contains_every_experiment(self, tmp_path):
        from repro.experiments.registry import run_all

        report = run_all(TINY)
        for experiment_id in EXPERIMENTS:
            assert f"## {experiment_id} " in report

    def test_cli_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(
            ["report", "--seeds", "1", "--duration", "3", "--output", str(out)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert "Regenerated paper artifacts" in out.read_text()


class TestJobGraphs:
    def test_lab_runnable_ids(self):
        from repro.experiments.registry import lab_runnable_experiments

        runnable = lab_runnable_experiments()
        assert {"FIG3", "FIG6", "EXP-H6", "EXP-OK"} <= set(runnable)
        assert "FIG2" not in runnable  # analytic: nothing to simulate

    def test_fig3_graph_covers_every_load(self):
        from repro.experiments.figures import QUADRANGLE_LOADS
        from repro.experiments.registry import experiment_job_graph

        graph = experiment_job_graph("FIG3")
        assert len(graph) == len(QUADRANGLE_LOADS)
        loads = [scenario.traffic for scenario, __ in graph]
        assert loads == [float(load) for load in QUADRANGLE_LOADS]
        assert all(policies == ("single-path", "uncontrolled", "controlled")
                   for __, policies in graph)

    def test_h6_graph_restricts_hops(self):
        from repro.experiments.registry import experiment_job_graph

        graph = experiment_job_graph("EXP-H6")
        assert all(scenario.max_hops == 6 for scenario, __ in graph)

    def test_ott_krishnan_graph_adds_policy(self):
        from repro.experiments.registry import experiment_job_graph

        graph = experiment_job_graph("EXP-OK")
        assert all("ott-krishnan" in policies for __, policies in graph)

    def test_case_insensitive_and_errors(self):
        from repro.experiments.registry import experiment_job_graph

        assert experiment_job_graph("fig6") == experiment_job_graph("FIG6")
        with pytest.raises(KeyError, match="FIG99"):
            experiment_job_graph("FIG99")
        with pytest.raises(ValueError, match="FIG2"):
            experiment_job_graph("FIG2")
