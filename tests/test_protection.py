"""Unit tests for state-protection level selection (Section 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.erlang import erlang_b
from repro.core.protection import (
    displacement_bound,
    figure2_curve,
    min_protection_level,
    protection_levels,
)

# Table 1 of the paper, keyed by the printed integer load (C = 100):
# load -> (r for H=6, r for H=11).  Four rows of the paper's table disagree
# by <= 2 with the values computed from the printed loads because the paper
# rounded Lambda before printing; those rows are listed separately.
TABLE1_EXACT = {
    74: (7, 10), 77: (8, 12), 71: (6, 8), 37: (2, 3), 46: (3, 4), 34: (2, 3),
    16: (1, 2), 49: (3, 4), 54: (3, 4), 65: (5, 6), 81: (11, 15), 87: (16, 26),
    73: (7, 9), 43: (3, 3), 76: (8, 11), 124: (100, 100), 39: (2, 3),
    48: (3, 4), 167: (100, 100), 85: (14, 22), 154: (100, 100),
}
TABLE1_ROUNDING_AFFECTED = {63: (4, 6), 103: (56, 100), 107: (70, 100), 104: (60, 100)}


class TestDisplacementBound:
    def test_zero_protection_gives_unity(self):
        assert displacement_bound(50.0, 100, 0) == pytest.approx(1.0)

    def test_matches_erlang_ratio(self):
        load, capacity, protection = 80.0, 100, 10
        expected = erlang_b(load, capacity) / erlang_b(load, capacity - protection)
        assert displacement_bound(load, capacity, protection) == pytest.approx(expected)

    def test_monotone_nonincreasing_in_protection(self):
        values = [displacement_bound(70.0, 100, r) for r in range(0, 101)]
        assert all(b2 <= b1 + 1e-15 for b1, b2 in zip(values, values[1:]))

    def test_zero_load(self):
        # No primary traffic means nothing to displace at any protection.
        assert displacement_bound(0.0, 10, 3) == 0.0
        assert displacement_bound(0.0, 10, 10) == 0.0

    def test_tiny_load_ratio_computed_in_log_space(self):
        # B(1e-7, 39) underflows, but the ratio B(.,39)/B(.,38) ~ load/39
        # must still come out right.
        bound = displacement_bound(1.192092896e-07, 39, 1)
        assert bound == pytest.approx(1.192092896e-07 / 39.0, rel=1e-6)
        # And Equation 15 therefore needs r = 1 for any H >= 2.
        assert min_protection_level(1.192092896e-07, 39, 2) == 1

    def test_out_of_range_protection_rejected(self):
        with pytest.raises(ValueError):
            displacement_bound(10.0, 10, 11)
        with pytest.raises(ValueError):
            displacement_bound(10.0, 10, -1)


class TestMinProtectionLevel:
    @pytest.mark.parametrize("load,expected", sorted(TABLE1_EXACT.items()))
    def test_table1_values(self, load, expected):
        r6, r11 = expected
        assert min_protection_level(load, 100, 6) == r6
        assert min_protection_level(load, 100, 11) == r11

    @pytest.mark.parametrize("load,expected", sorted(TABLE1_ROUNDING_AFFECTED.items()))
    def test_table1_rounding_affected_rows_are_close(self, load, expected):
        r6, r11 = expected
        assert abs(min_protection_level(load, 100, 6) - r6) <= 2
        assert abs(min_protection_level(load, 100, 11) - r11) <= 2

    def test_result_satisfies_inequality(self):
        for load in (10.0, 50.0, 90.0, 99.0):
            for hops in (2, 6, 11):
                r = min_protection_level(load, 100, hops)
                assert displacement_bound(load, 100, r) <= 1.0 / hops + 1e-12

    def test_result_is_minimal(self):
        for load in (30.0, 75.0, 95.0):
            for hops in (3, 8):
                r = min_protection_level(load, 100, hops)
                if r > 0:
                    assert displacement_bound(load, 100, r - 1) > 1.0 / hops

    def test_monotone_in_hops(self):
        for load in (40.0, 80.0):
            values = [min_protection_level(load, 100, h) for h in range(1, 30)]
            assert all(r2 >= r1 for r1, r2 in zip(values, values[1:]))

    def test_monotone_in_load(self):
        values = [min_protection_level(load, 100, 6) for load in range(1, 101)]
        assert all(r2 >= r1 for r1, r2 in zip(values, values[1:]))

    def test_h_equals_one_never_needs_protection(self):
        # 1/H = 1 and the bound at r=0 is exactly 1.
        assert min_protection_level(60.0, 100, 1) == 0

    def test_overload_gives_full_protection(self):
        assert min_protection_level(200.0, 100, 6) == 100

    def test_zero_load_needs_no_protection(self):
        assert min_protection_level(0.0, 100, 11) == 0

    def test_paper_section32_heavy_h_claim(self):
        # Section 3.2: for H in [1000, 2000], r is in [10, 20] at 50 Erlangs
        # on a 100-capacity link.
        for hops in (1000, 1500, 2000):
            r = min_protection_level(50.0, 100, hops)
            assert 10 <= r <= 20

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            min_protection_level(10.0, 0, 6)
        with pytest.raises(ValueError):
            min_protection_level(10.0, 100, 0)
        with pytest.raises(ValueError):
            min_protection_level(-5.0, 100, 6)


class TestProtectionLevels:
    def test_mapping_form(self):
        loads = {"a": 74.0, "b": 16.0}
        caps = {"a": 100, "b": 100}
        levels = protection_levels(loads, caps, 6)
        assert levels == {"a": 7, "b": 1}

    def test_sequence_form(self):
        levels = protection_levels([74.0, 16.0], [100, 100], 6)
        assert levels == {0: 7, 1: 1}

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            protection_levels({"a": 1.0}, {"b": 100}, 6)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            protection_levels([1.0], [100, 100], 6)

    def test_mixed_types_rejected(self):
        with pytest.raises(TypeError):
            protection_levels({"a": 1.0}, [100], 6)


class TestFigure2:
    def test_default_range(self):
        loads, r = figure2_curve(100, 6)
        assert loads[0] == 1.0
        assert loads[-1] == 100.0
        assert len(loads) == len(r) == 100

    def test_curves_ordered_by_hops(self):
        __, r2 = figure2_curve(100, 2)
        __, r6 = figure2_curve(100, 6)
        __, r120 = figure2_curve(100, 120)
        assert (r6 >= r2).all()
        assert (r120 >= r6).all()

    def test_contained_growth_claim(self):
        # The paper: the increase of r with H is contained; at half load the
        # H=120 curve is still a small fraction of capacity.
        __, r120 = figure2_curve(100, 120)
        assert r120[49] <= 15  # Lambda = 50

    def test_custom_loads(self):
        loads, r = figure2_curve(100, 6, loads=[25.0, 75.0])
        assert list(loads) == [25.0, 75.0]
        assert r.shape == (2,)
        assert (np.diff(r) >= 0).all()
