"""Unit tests for the Erlang blocking functions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.erlang import (
    erlang_b,
    erlang_b_derivative,
    erlang_b_fixed_capacity_solve,
    erlang_b_inverse_sequence,
    erlang_b_sequence,
    expected_lost_calls,
    expected_lost_calls_derivative,
    generalized_erlang_b,
)


def erlang_b_by_sum(load: float, capacity: int) -> float:
    """Direct evaluation of the defining sum, for cross-checking."""
    terms = [load**k / math.factorial(k) for k in range(capacity + 1)]
    return terms[-1] / sum(terms)


class TestErlangB:
    def test_single_server(self):
        # B(a, 1) = a / (1 + a)
        for load in (0.1, 1.0, 5.0, 50.0):
            assert erlang_b(load, 1) == pytest.approx(load / (1 + load))

    def test_against_defining_sum(self):
        for load in (0.5, 3.0, 10.0, 42.0, 95.0):
            for capacity in (1, 2, 5, 20, 100):
                assert erlang_b(load, capacity) == pytest.approx(
                    erlang_b_by_sum(load, capacity), rel=1e-12
                )

    def test_classical_table_value(self):
        # B(10 Erlangs, 10 servers) is the textbook 0.2146 (4 d.p.).
        assert erlang_b(10.0, 10) == pytest.approx(0.2146, abs=5e-5)

    def test_zero_capacity_blocks_everything(self):
        assert erlang_b(5.0, 0) == 1.0
        assert erlang_b(0.0, 0) == 1.0

    def test_zero_load_never_blocks(self):
        assert erlang_b(0.0, 1) == 0.0
        assert erlang_b(0.0, 50) == 0.0

    def test_monotone_increasing_in_load(self):
        values = [erlang_b(load, 30) for load in np.linspace(1, 100, 25)]
        assert all(b2 > b1 for b1, b2 in zip(values, values[1:]))

    def test_monotone_decreasing_in_capacity(self):
        values = [erlang_b(20.0, c) for c in range(1, 50)]
        assert all(b2 < b1 for b1, b2 in zip(values, values[1:]))

    def test_bounded_in_unit_interval(self):
        for load in (0.01, 1.0, 500.0):
            for capacity in (1, 10, 200):
                assert 0.0 <= erlang_b(load, capacity) <= 1.0

    def test_large_capacity_is_stable(self):
        # The inverse recursion must not overflow or lose positivity.
        value = erlang_b(900.0, 1000)
        assert 0.0 < value < 1e-3

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            erlang_b(-1.0, 5)

    def test_rejects_fractional_capacity(self):
        with pytest.raises(ValueError):
            erlang_b(1.0, 2.5)  # type: ignore[arg-type]

    def test_rejects_nan_load(self):
        with pytest.raises(ValueError):
            erlang_b(float("nan"), 5)


class TestSequences:
    def test_sequence_matches_scalar(self):
        seq = erlang_b_sequence(12.0, 30)
        for capacity in (0, 1, 7, 30):
            assert seq[capacity] == pytest.approx(erlang_b(12.0, capacity))

    def test_inverse_sequence_recursion(self):
        y = erlang_b_inverse_sequence(8.0, 20)
        for x in range(1, 21):
            assert y[x] == pytest.approx(1.0 + (x / 8.0) * y[x - 1])

    def test_zero_load_sequence(self):
        seq = erlang_b_sequence(0.0, 4)
        assert seq[0] == 1.0
        assert (seq[1:] == 0.0).all()


class TestDerivatives:
    @pytest.mark.parametrize("load,capacity", [(2.0, 3), (10.0, 10), (80.0, 100), (130.0, 100)])
    def test_derivative_matches_finite_difference(self, load, capacity):
        h = 1e-6 * load
        numeric = (erlang_b(load + h, capacity) - erlang_b(load - h, capacity)) / (2 * h)
        assert erlang_b_derivative(load, capacity) == pytest.approx(numeric, rel=1e-4)

    def test_lost_calls_derivative_matches_finite_difference(self):
        load, capacity = 45.0, 50
        h = 1e-5
        numeric = (
            expected_lost_calls(load + h, capacity) - expected_lost_calls(load - h, capacity)
        ) / (2 * h)
        assert expected_lost_calls_derivative(load, capacity) == pytest.approx(
            numeric, rel=1e-5
        )

    def test_lost_calls_is_convex(self):
        # Krishnan [23]: Lambda * B(Lambda, C) is convex in Lambda.
        capacity = 20
        loads = np.linspace(0.5, 60, 120)
        values = [expected_lost_calls(load, capacity) for load in loads]
        second_diff = np.diff(values, 2)
        assert (second_diff > -1e-9).all()

    def test_zero_capacity_derivative(self):
        assert erlang_b_derivative(3.0, 0) == 0.0


class TestGeneralizedErlangB:
    def test_constant_rates_reduce_to_classical(self):
        for load in (1.0, 7.5, 30.0):
            for capacity in (1, 5, 25):
                rates = [load] * capacity
                assert generalized_erlang_b(rates) == pytest.approx(
                    erlang_b(load, capacity), rel=1e-12
                )

    def test_empty_rate_vector_is_full_block(self):
        assert generalized_erlang_b([]) == 1.0

    def test_increasing_rates_raise_blocking(self):
        flat = generalized_erlang_b([5.0, 5.0, 5.0])
        rising = generalized_erlang_b([5.0, 10.0, 20.0])
        assert rising > flat

    def test_zero_top_rate_empties_top_state(self):
        assert generalized_erlang_b([5.0, 5.0, 0.0]) == 0.0

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            generalized_erlang_b([1.0, -0.5])

    def test_huge_rates_do_not_overflow(self):
        value = generalized_erlang_b([1e6] * 50)
        assert 0.9 < value <= 1.0


class TestInverseSolve:
    def test_roundtrip(self):
        for target in (0.001, 0.05, 0.5, 0.95):
            load = erlang_b_fixed_capacity_solve(target, 25)
            assert erlang_b(load, 25) == pytest.approx(target, rel=1e-8)

    def test_rejects_degenerate_targets(self):
        with pytest.raises(ValueError):
            erlang_b_fixed_capacity_solve(0.0, 10)
        with pytest.raises(ValueError):
            erlang_b_fixed_capacity_solve(1.0, 10)
        with pytest.raises(ValueError):
            erlang_b_fixed_capacity_solve(0.1, 0)
