"""Tests for online protection adaptation and the length-aware policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protection import min_protection_level
from repro.routing.adaptive import AdaptiveProtectionSimulator, simulate_adaptive
from repro.routing.alternate import (
    ControlledAlternateRouting,
    LengthAdaptiveControlledRouting,
    per_link_max_hops,
)
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import fully_connected, line, ring
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic
from repro.traffic.profiles import LoadProfile, generate_nonstationary_trace


class TestPerLinkMaxHops:
    def test_quadrangle_uniform(self, quad_network, quad_table):
        # Every K4 link carries 3-hop alternates.
        hops = per_link_max_hops(quad_network, quad_table)
        assert (hops == 3).all()

    def test_line_has_no_alternates(self):
        net = line(4, 5)
        table = build_path_table(net)
        hops = per_link_max_hops(net, table)
        assert (hops == 1).all()

    def test_nsfnet_unrestricted_saturates(self, nsfnet, nsfnet_table):
        # On the sparse NSFNet the longest loop-free alternates cross every
        # link, so the unrestricted table gives H^k = 11 everywhere.
        hops = per_link_max_hops(nsfnet, nsfnet_table)
        assert (hops == 11).all()

    def test_nsfnet_h6_also_saturates(self, nsfnet, nsfnet_table_h6):
        # Even hop-limited, some 6-hop alternate crosses every NSFNet link.
        hops = per_link_max_hops(nsfnet, nsfnet_table_h6)
        assert (hops == 6).all()

    def test_exact_values_on_barbell(self):
        # Triangle 0-1-2 with a pendant chain 2-3-4.  The longest alternates
        # are the 4-hop detours like (4,3,2,1,0) for the pair (4,0); they
        # cross the pendant links too, so H^k = 4 on every link — a worked
        # example of why H^k rarely drops below the global maximum on
        # connected meshes (long alternates reuse most links as segments).
        from repro.topology.graph import Network

        net = Network(5)
        for a, b in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]:
            net.add_duplex_link(a, b, 5)
        table = build_path_table(net)
        hops = per_link_max_hops(net, table)
        assert (hops == 4).all()
        # With alternates capped at 3 hops, the pendant pairs lose their
        # detours and the pendant tail link drops out of all alternates.
        capped = build_path_table(net, max_hops=3)
        capped_hops = per_link_max_hops(net, capped)
        by_endpoints = {
            net.link(i).endpoints: int(capped_hops[i]) for i in range(net.num_links)
        }
        assert by_endpoints[(0, 1)] == 3
        assert by_endpoints[(3, 4)] < 3

    def test_controlled_policy_accepts_per_link_hops(self, nsfnet, nsfnet_table):
        from repro.traffic.calibration import nsfnet_nominal_traffic

        loads = primary_link_loads(nsfnet, nsfnet_table, nsfnet_nominal_traffic())
        hops = per_link_max_hops(nsfnet, nsfnet_table)
        global_policy = ControlledAlternateRouting(nsfnet, nsfnet_table, loads)
        per_link_policy = ControlledAlternateRouting(
            nsfnet, nsfnet_table, loads, per_link_hops=hops
        )
        # Per-link H never exceeds the global maximum, so levels can only drop.
        assert (per_link_policy.protection_levels <= global_policy.protection_levels).all()

    def test_mutually_exclusive_with_max_hops(self, quad_network, quad_table):
        loads = np.zeros(quad_network.num_links)
        with pytest.raises(ValueError):
            ControlledAlternateRouting(
                quad_network,
                quad_table,
                loads,
                max_hops=2,
                per_link_hops=np.ones(quad_network.num_links, dtype=np.int64),
            )

    def test_per_link_hops_validated(self, quad_network, quad_table):
        loads = np.zeros(quad_network.num_links)
        with pytest.raises(ValueError):
            ControlledAlternateRouting(
                quad_network, quad_table, loads, per_link_hops=np.array([1, 2])
            )
        with pytest.raises(ValueError):
            ControlledAlternateRouting(
                quad_network,
                quad_table,
                loads,
                per_link_hops=np.zeros(quad_network.num_links, dtype=np.int64),
            )


class TestLengthAdaptivePolicy:
    def test_levels_monotone_in_length(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 85.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = LengthAdaptiveControlledRouting(quad_network, quad_table, loads)
        assert set(policy.protection_by_length) == {2, 3}
        assert (
            policy.protection_by_length[2] <= policy.protection_by_length[3]
        ).all()
        for length, levels in policy.protection_by_length.items():
            expected = [
                min_protection_level(loads[l.index], l.capacity, length)
                for l in quad_network.links
            ]
            assert list(levels) == expected

    def test_shortest_length_matches_equation15(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 85.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = LengthAdaptiveControlledRouting(quad_network, quad_table, loads)
        controlled_h2 = ControlledAlternateRouting(
            quad_network, quad_table, loads, max_hops=2
        )
        assert np.array_equal(
            policy.protection_by_length[2], controlled_h2.protection_levels
        )

    def test_never_worse_than_single_path(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = LengthAdaptiveControlledRouting(quad_network, quad_table, loads)
        single = SinglePathRouting(quad_network, quad_table)
        diffs = []
        for seed in range(4):
            trace = generate_trace(traffic, 40.0, seed)
            ctl = simulate(quad_network, policy, trace, 10.0)
            sp = simulate(quad_network, single, trace, 10.0)
            diffs.append(sp.network_blocking - ctl.network_blocking)
        assert np.mean(diffs) > -0.01

    def test_at_least_as_permissive_as_global_h(self, quad_network, quad_table):
        # The refinement admits every alternate the global-H scheme admits:
        # r(h) <= r(H) for h <= H, so blocking can only improve (statistically).
        traffic = uniform_traffic(4, 90.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        adaptive = LengthAdaptiveControlledRouting(quad_network, quad_table, loads)
        global_h = ControlledAlternateRouting(quad_network, quad_table, loads)
        diffs = []
        for seed in range(4):
            trace = generate_trace(traffic, 40.0, seed)
            a = simulate(quad_network, adaptive, trace, 10.0)
            g = simulate(quad_network, global_h, trace, 10.0)
            diffs.append(g.network_blocking - a.network_blocking)
        assert np.mean(diffs) > -0.005

    def test_line_topology_degenerates(self):
        net = line(3, 5)
        table = build_path_table(net)
        policy = LengthAdaptiveControlledRouting(net, table, np.zeros(net.num_links))
        assert policy.length_thresholds  # has at least the fallback entry


class TestAdaptiveProtectionSimulator:
    def test_validation(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 20.0)
        trace = generate_trace(traffic, 20.0, 0)
        with pytest.raises(ValueError):
            AdaptiveProtectionSimulator(quad_network, quad_table, trace, warmup=30.0)
        with pytest.raises(ValueError):
            AdaptiveProtectionSimulator(
                quad_network, quad_table, trace, update_interval=0.0
            )
        with pytest.raises(ValueError):
            AdaptiveProtectionSimulator(quad_network, quad_table, trace, ewma_weight=0.0)
        with pytest.raises(ValueError):
            AdaptiveProtectionSimulator(
                quad_network, quad_table, trace, initial_loads=np.zeros(3)
            )

    def test_estimates_converge_to_true_loads(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 60.0)
        truth = primary_link_loads(quad_network, quad_table, traffic)
        trace = generate_trace(traffic, 120.0, 0)
        __, updates = simulate_adaptive(
            quad_network, quad_table, trace, update_interval=5.0, ewma_weight=0.3
        )
        final = updates[-1].estimated_loads
        assert final == pytest.approx(truth, rel=0.2)

    def test_updates_recorded_on_schedule(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 40.0)
        trace = generate_trace(traffic, 52.0, 1)
        __, updates = simulate_adaptive(
            quad_network, quad_table, trace, update_interval=10.0
        )
        times = [u.time for u in updates]
        assert times[0] == 0.0
        assert times[1:] == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_cold_start_hardens_over_time(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 90.0)
        trace = generate_trace(traffic, 60.0, 2)
        __, updates = simulate_adaptive(
            quad_network, quad_table, trace, update_interval=5.0
        )
        assert updates[0].protection_levels.sum() == 0  # cold: unprotected
        assert updates[-1].protection_levels.sum() > 0  # learned protection

    def test_tracks_surge(self, nsfnet, nsfnet_table):
        # Blocking with adaptation should not lag a static policy sized for
        # the pre-surge load.
        from repro.traffic.calibration import nsfnet_nominal_traffic

        nominal = nsfnet_nominal_traffic()
        profile = LoadProfile.step(at=30.0, before=0.8, after=1.3)
        static = ControlledAlternateRouting(
            nsfnet, nsfnet_table, primary_link_loads(nsfnet, nsfnet_table, nominal) * 0.8
        )
        deltas = []
        for seed in range(2):
            trace = generate_nonstationary_trace(nominal, profile, 70.0, seed)
            static_result = simulate(nsfnet, static, trace, 10.0)
            adaptive_result, __ = simulate_adaptive(
                nsfnet,
                nsfnet_table,
                trace,
                warmup=10.0,
                update_interval=5.0,
                initial_loads=static.primary_loads,
            )
            deltas.append(static_result.network_blocking - adaptive_result.network_blocking)
        assert np.mean(deltas) > -0.01

    def test_accounting_identity(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 80.0)
        trace = generate_trace(traffic, 30.0, 3)
        result, __ = simulate_adaptive(quad_network, quad_table, trace, warmup=5.0)
        carried = result.primary_carried + result.alternate_carried
        assert carried + result.total_blocked == result.total_offered
