"""Tests for simulation metrics and multi-seed aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.metrics import SimulationResult, SweepStatistic, aggregate


def make_result(offered, blocked, primary=0, alternate=0):
    pairs = tuple((0, i + 1) for i in range(len(offered)))
    return SimulationResult(
        od_pairs=pairs,
        offered=np.asarray(offered, dtype=np.int64),
        blocked=np.asarray(blocked, dtype=np.int64),
        primary_carried=primary,
        alternate_carried=alternate,
        warmup=10.0,
        duration=110.0,
        seed=0,
    )


class TestSimulationResult:
    def test_network_blocking(self):
        result = make_result([100, 100], [10, 0])
        assert result.network_blocking == pytest.approx(0.05)
        assert result.total_offered == 200
        assert result.total_blocked == 10

    def test_zero_offered(self):
        assert make_result([0], [0]).network_blocking == 0.0

    def test_pair_blocking_skips_unoffered(self):
        result = make_result([50, 0], [5, 0])
        blocking = result.pair_blocking()
        assert blocking == {(0, 1): 0.1}

    def test_alternate_fraction(self):
        result = make_result([10], [0], primary=6, alternate=2)
        assert result.alternate_fraction == pytest.approx(0.25)
        assert make_result([0], [0]).alternate_fraction == 0.0


class TestAggregate:
    def test_single_value(self):
        stat = aggregate([0.3])
        assert stat.mean == 0.3
        assert stat.half_width == 0.0
        assert stat.num_runs == 1

    def test_mean_and_std(self):
        stat = aggregate([0.1, 0.2, 0.3])
        assert stat.mean == pytest.approx(0.2)
        assert stat.std == pytest.approx(0.1)
        assert stat.num_runs == 3

    def test_confidence_interval_known_case(self):
        # n=3, dof=2: t = 4.303, half-width = 4.303 * std / sqrt(3).
        stat = aggregate([0.1, 0.2, 0.3])
        assert stat.half_width == pytest.approx(4.303 * 0.1 / np.sqrt(3), rel=1e-6)
        assert stat.low == pytest.approx(stat.mean - stat.half_width)
        assert stat.high == pytest.approx(stat.mean + stat.half_width)

    def test_identical_values_zero_width(self):
        stat = aggregate([0.5] * 10)
        assert stat.half_width == 0.0

    def test_values_preserved(self):
        stat = aggregate([1.0, 2.0])
        assert stat.values == (1.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_large_sample_uses_near_normal_quantile(self):
        values = list(np.linspace(0, 1, 50))
        stat = aggregate(values)
        std = np.std(values, ddof=1)
        assert stat.half_width <= 2.1 * std / np.sqrt(50)


class TestSweepStatistic:
    def test_fields(self):
        stat = SweepStatistic(mean=0.5, std=0.1, half_width=0.05, num_runs=4)
        assert stat.low == pytest.approx(0.45)
        assert stat.high == pytest.approx(0.55)


class TestFormatSweepEdgeCases:
    def test_sweep_without_bounds(self):
        from repro.experiments.report import format_sweep
        from repro.experiments.runner import SweepPoint

        point = SweepPoint(load=10.0)
        point.blocking = {"only": SweepStatistic(0.5, 0.0, 0.0, 1)}
        text = format_sweep([point])
        assert "erlang-bound" not in text
        assert "only" in text
