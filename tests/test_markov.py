"""Unit tests for birth-death chains and the link occupancy chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.erlang import erlang_b
from repro.core.markov import BirthDeathChain, link_chain


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BirthDeathChain([1.0, 2.0], [1.0])

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            BirthDeathChain([1.0, -1.0], [1.0, 2.0])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            BirthDeathChain([], [])

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            BirthDeathChain([[1.0]], [[1.0]])

    def test_state_counts(self):
        chain = BirthDeathChain([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])
        assert chain.num_states == 4
        assert chain.top_state == 3


class TestStationaryDistribution:
    def test_mm1k_geometric(self):
        # M/M/1/K with lambda, mu: pi_s proportional to (lambda/mu)^s.
        lam, mu, k = 2.0, 3.0, 5
        chain = BirthDeathChain([lam] * k, [mu] * k)
        pi = chain.stationary_distribution()
        rho = lam / mu
        expected = np.array([rho**s for s in range(k + 1)])
        expected /= expected.sum()
        assert pi == pytest.approx(expected, rel=1e-12)

    def test_mmcc_matches_erlang(self):
        load, capacity = 9.0, 12
        chain = link_chain(load, capacity)
        assert chain.time_blocking() == pytest.approx(erlang_b(load, capacity), rel=1e-12)

    def test_distribution_sums_to_one(self):
        chain = BirthDeathChain([3.0, 1.0, 0.5], [1.0, 2.0, 3.0])
        assert chain.stationary_distribution().sum() == pytest.approx(1.0)

    def test_zero_birth_blocks_upper_states(self):
        chain = BirthDeathChain([1.0, 0.0, 1.0], [1.0, 2.0, 3.0])
        pi = chain.stationary_distribution()
        assert pi[2] == 0.0
        assert pi[3] == 0.0

    def test_zero_death_concentrates_above(self):
        chain = BirthDeathChain([1.0, 1.0], [0.0, 1.0])
        pi = chain.stationary_distribution()
        assert pi[0] == 0.0  # state 0 is transient: no return from state 1

    def test_mean_occupancy_single_server(self):
        # M/M/1/1: mean = pi_1 = a / (1 + a).
        chain = link_chain(2.0, 1)
        assert chain.mean_occupancy() == pytest.approx(2.0 / 3.0)


class TestBlockingViews:
    def test_pasta_for_state_independent_arrivals(self):
        chain = link_chain(6.0, 8)
        assert chain.call_blocking() == pytest.approx(chain.time_blocking(), rel=1e-12)

    def test_state_dependent_arrivals_diverge_from_pasta(self):
        # Arrival rate rises with state: arrivals see more congestion
        # than the time average.
        chain = BirthDeathChain([1.0, 5.0, 25.0], [1.0, 2.0, 3.0])
        assert chain.call_blocking() > chain.time_blocking()


class TestPassageTimes:
    def test_pure_birth_from_empty(self):
        # From state 0 the passage to 1 is a single exponential wait.
        chain = link_chain(4.0, 3)
        tau = chain.upward_passage_times()
        assert tau[0] == pytest.approx(1.0 / 4.0)

    def test_recursion_consistency(self):
        chain = link_chain(3.0, 5)
        tau = chain.upward_passage_times()
        births = chain.births
        deaths = chain.deaths
        for s in range(1, 5):
            expected = (1.0 + deaths[s - 1] * tau[s - 1]) / births[s]
            assert tau[s] == pytest.approx(expected)

    def test_passage_times_against_monte_carlo(self):
        rng = np.random.default_rng(7)
        lam, capacity = 5.0, 4
        chain = link_chain(lam, capacity)
        tau = chain.upward_passage_times()
        # Simulate first passage 2 -> 3 many times.
        samples = []
        for __ in range(4000):
            state, clock = 2, 0.0
            while state < 3:
                rate = lam + state
                clock += rng.exponential(1.0 / rate)
                if rng.random() < lam / rate:
                    state += 1
                else:
                    state -= 1
            samples.append(clock)
        assert np.mean(samples) == pytest.approx(tau[2], rel=0.08)

    def test_zero_birth_rate_gives_infinite_passage(self):
        chain = BirthDeathChain([1.0, 0.0], [1.0, 2.0])
        tau = chain.upward_passage_times()
        assert np.isinf(tau[1])

    def test_passage_counts_recursion(self):
        chain = link_chain(2.0, 4)
        x = chain.upward_passage_counts()
        assert x[0] == 1.0
        for s in range(1, 4):
            expected = 1.0 + (chain.deaths[s - 1] / chain.births[s]) * x[s - 1]
            assert x[s] == pytest.approx(expected)


class TestLinkChain:
    def test_protection_truncates_overflow(self):
        capacity, protection = 6, 2
        overflow = [10.0] * capacity
        chain = link_chain(1.0, capacity, protection, overflow)
        # States >= capacity - protection receive primary rate only.
        assert chain.births[capacity - protection - 1] == pytest.approx(11.0)
        assert chain.births[capacity - protection] == pytest.approx(1.0)
        assert chain.births[capacity - 1] == pytest.approx(1.0)

    def test_short_overflow_vector_accepted(self):
        chain = link_chain(1.0, 5, 0, [2.0, 2.0])
        assert chain.births[0] == pytest.approx(3.0)
        assert chain.births[2] == pytest.approx(1.0)

    def test_full_protection_excludes_all_overflow(self):
        chain = link_chain(1.0, 4, 4, [9.0] * 4)
        assert (chain.births == 1.0).all()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            link_chain(1.0, 0)
        with pytest.raises(ValueError):
            link_chain(1.0, 4, 5)
        with pytest.raises(ValueError):
            link_chain(-1.0, 4)
        with pytest.raises(ValueError):
            link_chain(1.0, 4, 0, [-2.0])


class TestDegenerateChains:
    def test_zero_arrival_chain_call_blocking(self):
        chain = BirthDeathChain([0.0], [1.0])
        assert chain.call_blocking() == 0.0
        pi = chain.stationary_distribution()
        assert pi[0] == 1.0
        assert pi[1] == 0.0

    def test_mean_occupancy_empty_chain(self):
        chain = BirthDeathChain([0.0], [1.0])
        assert chain.mean_occupancy() == 0.0
