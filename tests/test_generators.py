"""Tests for the topology generators."""

from __future__ import annotations

import pytest

from repro.topology.generators import (
    fully_connected,
    grid,
    line,
    quadrangle,
    random_mesh,
    ring,
    star,
)
from repro.topology.paths import min_hop_distances


def is_strongly_connected(network) -> bool:
    return all(
        max(min_hop_distances(network, src)) < float("inf")
        for src in network.nodes()
    )


class TestFullyConnected:
    def test_link_count(self):
        net = fully_connected(5, 3)
        assert net.num_links == 5 * 4  # ordered pairs

    def test_quadrangle_is_k4(self):
        net = quadrangle(100)
        assert net.num_nodes == 4
        assert net.num_links == 12
        assert all(link.capacity == 100 for link in net.links)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            fully_connected(1, 1)


class TestRingLineStar:
    def test_ring_structure(self):
        net = ring(6, 2)
        assert net.num_links == 12
        assert sorted(net.neighbors(0)) == [1, 5]

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring(2, 1)

    def test_line_structure(self):
        net = line(4, 1)
        assert net.num_links == 6
        assert net.neighbors(0) == [1]
        assert sorted(net.neighbors(1)) == [0, 2]

    def test_star_structure(self):
        net = star(5, 1)
        assert net.num_nodes == 6
        assert sorted(net.neighbors(0)) == [1, 2, 3, 4, 5]
        assert net.neighbors(3) == [0]


class TestGrid:
    def test_corner_and_center_degrees(self):
        net = grid(3, 3, 1)
        assert len(net.neighbors(0)) == 2       # corner
        assert len(net.neighbors(4)) == 4       # center
        assert len(net.neighbors(1)) == 3       # edge

    def test_link_count(self):
        rows, cols = 3, 4
        net = grid(rows, cols, 1)
        undirected = rows * (cols - 1) + cols * (rows - 1)
        assert net.num_links == 2 * undirected

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            grid(1, 1, 1)


class TestRandomMesh:
    def test_connected(self):
        for seed in range(5):
            net = random_mesh(10, 4, 1, seed=seed)
            assert is_strongly_connected(net)

    def test_deterministic_for_seed(self):
        a = random_mesh(8, 3, 1, seed=42)
        b = random_mesh(8, 3, 1, seed=42)
        assert [l.endpoints for l in a.links] == [l.endpoints for l in b.links]

    def test_extra_links_added(self):
        tree_only = random_mesh(8, 0, 1, seed=0)
        dense = random_mesh(8, 5, 1, seed=0)
        assert dense.num_links == tree_only.num_links + 2 * 5

    def test_extra_links_capped_at_complete_graph(self):
        net = random_mesh(4, 100, 1, seed=0)
        assert net.num_links == 12  # K4, no duplicates

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_mesh(1, 0, 1)


class TestTorus:
    def test_uniform_degree_four(self):
        from repro.topology.generators import torus

        net = torus(3, 4, 1)
        assert all(len(net.neighbors(n)) == 4 for n in net.nodes())

    def test_link_count(self):
        from repro.topology.generators import torus

        net = torus(4, 5, 1)
        assert net.num_links == 2 * 2 * 4 * 5  # two duplex links per node

    def test_too_small_rejected(self):
        from repro.topology.generators import torus

        with pytest.raises(ValueError):
            torus(2, 5, 1)

    def test_wraparound_shortens_paths(self):
        from repro.topology.generators import torus
        from repro.topology.paths import min_hop_path

        net = torus(5, 5, 1)
        # Opposite corners are 2+2 hops away thanks to the wraparound.
        path = min_hop_path(net, 0, 4 * 5 + 4)
        assert len(path) - 1 == 2


class TestWaxman:
    def test_connected(self):
        from repro.topology.generators import waxman_mesh

        for seed in range(4):
            net = waxman_mesh(12, 1, seed=seed)
            assert is_strongly_connected(net)

    def test_deterministic(self):
        from repro.topology.generators import waxman_mesh

        a = waxman_mesh(10, 1, seed=5)
        b = waxman_mesh(10, 1, seed=5)
        assert [l.endpoints for l in a.links] == [l.endpoints for l in b.links]

    def test_alpha_grows_density(self):
        from repro.topology.generators import waxman_mesh

        sparse = waxman_mesh(20, 1, alpha=0.1, seed=0)
        dense = waxman_mesh(20, 1, alpha=0.9, seed=0)
        assert dense.num_links > sparse.num_links

    def test_validation(self):
        from repro.topology.generators import waxman_mesh

        with pytest.raises(ValueError):
            waxman_mesh(1, 1)
        with pytest.raises(ValueError):
            waxman_mesh(5, 1, alpha=0.0)
        with pytest.raises(ValueError):
            waxman_mesh(5, 1, beta=-1.0)
