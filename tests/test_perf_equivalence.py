"""Vectorized hot paths vs their retained reference implementations.

The perf core keeps every original code path callable — the simulator via
``backend="reference"``, the analysis kernels via their ``reference=True``
flag.  The simulator's fast loop makes the exact same
admission decisions in the exact same order, so its statistics must be
bit-identical; the analysis kernels change only float accumulation order
(the batch Erlang kernel sums the Horner recursion as one cumulative
product), so they agree to tight relative tolerance rather than bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.alternate_fixed_point import alternate_routing_fixed_point
from repro.analysis.erlang_bound import erlang_bound
from repro.analysis.fixed_point import erlang_fixed_point
from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.single_path import SinglePathRouting
from repro.sim.faultplane import single_failure_timeline
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import quadrangle
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic

_COUNTERS = ("offered", "blocked", "primary_carried", "alternate_carried")


def _nsfnet_setup(load_scale: float = 1.0):
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic()
    if load_scale != 1.0:
        traffic = traffic.scaled(load_scale)
    return network, table, traffic


def _policies(network, table, traffic):
    loads = primary_link_loads(network, table, traffic)
    return {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, loads),
    }


class TestAnalysisEquivalence:
    @pytest.mark.parametrize("load_scale", [0.8, 1.0, 1.3])
    def test_erlang_fixed_point_matches_reference(self, load_scale):
        network, table, traffic = _nsfnet_setup(load_scale)
        fast = erlang_fixed_point(network, table, traffic)
        ref = erlang_fixed_point(network, table, traffic, reference=True)
        assert fast.iterations == ref.iterations
        np.testing.assert_allclose(
            fast.link_blocking, ref.link_blocking, rtol=1e-9, atol=1e-15
        )
        assert fast.network_blocking == pytest.approx(
            ref.network_blocking, rel=1e-9, abs=1e-15
        )

    @pytest.mark.parametrize("reservation", [0, 5])
    def test_alternate_fixed_point_matches_reference(self, reservation):
        network = quadrangle(100)
        table = build_path_table(network)
        traffic = uniform_traffic(4, 90.0)
        levels = np.full(network.num_links, reservation)
        fast = alternate_routing_fixed_point(network, table, traffic, levels)
        ref = alternate_routing_fixed_point(
            network, table, traffic, levels, reference=True
        )
        assert fast.iterations == ref.iterations
        assert fast.converged == ref.converged
        np.testing.assert_allclose(
            fast.full_probability, ref.full_probability, rtol=1e-9, atol=1e-15
        )
        np.testing.assert_allclose(
            fast.protected_probability, ref.protected_probability,
            rtol=1e-9, atol=1e-15,
        )
        np.testing.assert_allclose(
            fast.overflow_rates, ref.overflow_rates, rtol=1e-9, atol=1e-12
        )
        for od, value in ref.pair_blocking.items():
            assert fast.pair_blocking[od] == pytest.approx(value, rel=1e-9, abs=1e-15)
        assert fast.network_blocking == pytest.approx(
            ref.network_blocking, rel=1e-9, abs=1e-15
        )

    def test_erlang_bound_matches_reference(self):
        for network, traffic in (
            (nsfnet_backbone(), nsfnet_nominal_traffic().scaled(1.2)),
            (quadrangle(100), uniform_traffic(4, 95.0)),
        ):
            fast = erlang_bound(network, traffic)
            ref = erlang_bound(network, traffic, reference=True)
            assert fast == pytest.approx(ref, rel=1e-12, abs=1e-15)

    def test_erlang_bound_matches_reference_after_failure(self):
        network = nsfnet_backbone()
        network.fail_link(2, 3)
        network.fail_link(3, 2)
        traffic = nsfnet_nominal_traffic()
        assert erlang_bound(network, traffic) == pytest.approx(
            erlang_bound(network, traffic, reference=True), rel=1e-12
        )


class TestSimulatorEquivalence:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_blocking_statistics_bit_identical(self, seed):
        network, table, traffic = _nsfnet_setup()
        trace = generate_trace(traffic, 40.0, seed)
        for name, policy in _policies(network, table, traffic).items():
            fast = simulate(network, policy, trace, warmup=10.0)
            ref = simulate(
                network, policy, trace, warmup=10.0, backend="reference"
            )
            for counter in _COUNTERS:
                assert np.array_equal(
                    getattr(fast, counter), getattr(ref, counter)
                ), f"{name}: {counter} diverged"
            assert fast.network_blocking == ref.network_blocking
            assert fast.network_drop_rate == ref.network_drop_rate
            assert fast.availability == ref.availability

    def test_warm_start_bit_identical(self):
        network, table, traffic = _nsfnet_setup()
        policy = _policies(network, table, traffic)["controlled"]
        trace = generate_trace(traffic, 30.0, 3)
        rng = np.random.default_rng(0)
        occupancy = rng.integers(0, 5, size=network.num_links)
        fast = simulate(
            network, policy, trace, warmup=5.0, initial_occupancy=occupancy
        )
        ref = simulate(
            network, policy, trace, warmup=5.0, initial_occupancy=occupancy,
            backend="reference",
        )
        for counter in _COUNTERS:
            assert np.array_equal(getattr(fast, counter), getattr(ref, counter))

    def test_fault_timeline_bit_identical(self):
        """Under a fault timeline both flags route through the general loop;
        drops, availability and blocking must still match exactly."""
        network, table, traffic = _nsfnet_setup(1.2)
        policy = _policies(network, table, traffic)["controlled"]
        trace = generate_trace(traffic, 40.0, 11)
        timeline = single_failure_timeline(2, 3, fail_at=15.0, repair_at=30.0)
        fast = simulate(network, policy, trace, warmup=10.0, faults=timeline)
        ref = simulate(
            network, policy, trace, warmup=10.0, faults=timeline,
            backend="reference",
        )
        for counter in _COUNTERS + ("dropped",):
            assert np.array_equal(getattr(fast, counter), getattr(ref, counter))
        assert fast.network_blocking == ref.network_blocking
        assert fast.network_drop_rate == ref.network_drop_rate
        assert fast.availability == ref.availability
