"""Tests for the two-tier (alternate-routing) reduced-load fixed point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.alternate_fixed_point import alternate_routing_fixed_point
from repro.analysis.fixed_point import erlang_fixed_point
from repro.routing.alternate import ControlledAlternateRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import line, quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix


def zero_levels(network):
    return np.zeros(network.num_links, dtype=np.int64)


class TestDegenerateCases:
    def test_no_alternates_reduces_to_classical_fixed_point(self):
        # On a line there are no alternates: the two-tier model must agree
        # with the classical single-path Erlang fixed point.
        net = line(3, 8)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 2): 6.0, (2, 0): 3.0})
        classical = erlang_fixed_point(net, table, traffic)
        two_tier = alternate_routing_fixed_point(net, table, traffic, zero_levels(net))
        assert two_tier.converged
        assert two_tier.network_blocking == pytest.approx(
            classical.network_blocking, rel=1e-4
        )
        assert two_tier.full_probability == pytest.approx(
            classical.link_blocking, abs=1e-5
        )

    def test_single_isolated_link(self):
        net = line(2, 10)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 1): 8.0}, num_nodes=2)
        result = alternate_routing_fixed_point(net, table, traffic, zero_levels(net))
        from repro.core.erlang import erlang_b

        assert result.network_blocking == pytest.approx(erlang_b(8.0, 10), rel=1e-6)

    def test_zero_traffic(self):
        net = quadrangle(10)
        table = build_path_table(net)
        traffic = TrafficMatrix(np.zeros((4, 4)))
        result = alternate_routing_fixed_point(net, table, traffic, zero_levels(net))
        assert result.network_blocking == 0.0
        assert (result.overflow_rates == 0.0).all()


class TestAgainstSimulation:
    @pytest.mark.parametrize("per_pair", [90.0, 100.0])
    def test_controlled_scheme_matches_simulation(self, quad_network, quad_table, per_pair):
        traffic = uniform_traffic(4, per_pair)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        fp = alternate_routing_fixed_point(
            quad_network, quad_table, traffic, policy.protection_levels
        )
        sims = [
            simulate(
                quad_network, policy, generate_trace(traffic, 110.0, seed), 10.0
            ).network_blocking
            for seed in range(3)
        ]
        assert fp.converged
        assert fp.network_blocking == pytest.approx(float(np.mean(sims)), rel=0.35)

    def test_uncontrolled_collapse_predicted(self, quad_network, quad_table):
        # Past the critical load the r=0 fixed point lands on the high-
        # blocking branch — worse than the protected fixed point, as the
        # mean-field story requires.
        traffic = uniform_traffic(4, 100.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        unprotected = alternate_routing_fixed_point(
            quad_network, quad_table, traffic, zero_levels(quad_network)
        )
        protected = alternate_routing_fixed_point(
            quad_network, quad_table, traffic, policy.protection_levels
        )
        assert unprotected.network_blocking > protected.network_blocking
        assert unprotected.overflow_rates.max() > protected.overflow_rates.max()


class TestStructure:
    def test_blocking_monotone_in_load(self, quad_network, quad_table):
        values = []
        for per_pair in (70.0, 90.0, 110.0):
            traffic = uniform_traffic(4, per_pair)
            loads = primary_link_loads(quad_network, quad_table, traffic)
            policy = ControlledAlternateRouting(quad_network, quad_table, loads)
            values.append(
                alternate_routing_fixed_point(
                    quad_network, quad_table, traffic, policy.protection_levels
                ).network_blocking
            )
        assert values[0] < values[1] < values[2]

    def test_protected_probability_dominates_full(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        result = alternate_routing_fixed_point(
            quad_network, quad_table, traffic, policy.protection_levels
        )
        assert (result.protected_probability >= result.full_probability - 1e-12).all()

    def test_pair_blocking_in_unit_interval(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        result = alternate_routing_fixed_point(
            quad_network, quad_table, traffic, zero_levels(quad_network)
        )
        for value in result.pair_blocking.values():
            assert 0.0 <= value <= 1.0

    def test_validation(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        with pytest.raises(ValueError):
            alternate_routing_fixed_point(
                quad_network, quad_table, traffic, np.zeros(3, dtype=np.int64)
            )
        with pytest.raises(ValueError):
            alternate_routing_fixed_point(
                quad_network,
                quad_table,
                traffic,
                np.full(quad_network.num_links, 101, dtype=np.int64),
            )
        with pytest.raises(ValueError):
            alternate_routing_fixed_point(
                quad_network, quad_table, traffic,
                zero_levels(quad_network), damping=0.0,
            )

    def test_demand_without_path_rejected(self):
        net = line(3, 5)
        net.fail_duplex_link(1, 2)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 2): 1.0})
        with pytest.raises(ValueError):
            alternate_routing_fixed_point(net, table, traffic, zero_levels(net))


class TestRandomMeshProperties:
    def test_converges_and_bounded_on_random_meshes(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.topology.generators import random_mesh
        from repro.traffic.generators import gravity_traffic

        @settings(max_examples=10, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=200),
            load_scale=st.floats(min_value=5.0, max_value=60.0),
        )
        def check(seed, load_scale):
            net = random_mesh(6, 4, 15, seed=seed)
            table = build_path_table(net, max_hops=4)
            weights = [1.0 + 0.5 * n for n in range(6)]
            traffic = gravity_traffic(weights, total=load_scale * 6)
            result = alternate_routing_fixed_point(
                net, table, traffic, zero_levels(net), max_iterations=4000
            )
            assert 0.0 <= result.network_blocking <= 1.0
            assert (result.full_probability >= 0).all()
            assert (result.full_probability <= 1).all()
            assert (result.protected_probability >= result.full_probability - 1e-9).all()

        check()
