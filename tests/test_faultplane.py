"""Tests for the dynamic fault plane and its simulator integration."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.routing.alternate import UncontrolledAlternateRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.faultplane import (
    FaultEvent,
    FaultTimeline,
    FlappingLink,
    MarkovLinkFaults,
    ScheduledFailure,
    build_fault_timeline,
    single_failure_timeline,
)
from repro.sim.signaling import SignalingConfig, simulate_signaling
from repro.sim.simulator import LossNetworkSimulator, simulate
from repro.sim.trace import ArrivalTrace, generate_trace
from repro.topology.generators import line
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.generators import uniform_traffic


class TestFaultEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, (0, 1), up=False)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, (2, 2), up=False)

    def test_timeline_sorts_events(self):
        timeline = FaultTimeline((
            FaultEvent(5.0, (0, 1), up=True),
            FaultEvent(2.0, (0, 1), up=False),
        ))
        assert [e.time for e in timeline.events] == [2.0, 5.0]
        assert len(timeline) == 2 and bool(timeline)
        assert not FaultTimeline()

    def test_resolve_unknown_pair_names_it(self, nsfnet):
        timeline = single_failure_timeline(0, 5, fail_at=1.0)
        with pytest.raises(KeyError, match="0<->5"):
            timeline.resolve(nsfnet)

    def test_resolve_yields_both_directions(self, nsfnet):
        timeline = single_failure_timeline(2, 3, fail_at=1.0, repair_at=2.0)
        resolved = timeline.resolve(nsfnet)
        assert len(resolved) == 2
        for __, links, __ in resolved:
            assert len(links) == 2
            endpoints = {nsfnet.links[i].endpoints for i in links}
            assert endpoints == {(2, 3), (3, 2)}


class TestFaultProcesses:
    def test_scheduled_failure_orders_repair_after_failure(self):
        with pytest.raises(ValueError):
            ScheduledFailure(0, 1, fail_at=5.0, repair_at=5.0)

    def test_events_beyond_duration_discarded(self):
        spec = ScheduledFailure(0, 1, fail_at=5.0, repair_at=50.0)
        events = spec.events(duration=20.0, seed=0)
        assert [e.up for e in events] == [False]

    def test_flapping_link_cycles(self):
        spec = FlappingLink(0, 1, start=10.0, period=4.0, cycles=3, outage=1.0)
        events = spec.events(duration=100.0, seed=0)
        assert [e.time for e in events] == [10.0, 11.0, 14.0, 15.0, 18.0, 19.0]
        assert [e.up for e in events] == [False, True] * 3

    def test_flapping_outage_must_fit_period(self):
        with pytest.raises(ValueError):
            FlappingLink(0, 1, start=0.0, period=4.0, cycles=2, outage=4.0)

    def test_markov_faults_alternate(self):
        spec = MarkovLinkFaults(0, 1, mean_uptime=5.0, mean_downtime=1.0)
        events = spec.events(duration=200.0, seed=3)
        assert events, "200 time units at mean uptime 5 must produce events"
        assert [e.up for e in events] == [i % 2 == 1 for i in range(len(events))]

    def test_markov_faults_deterministic_per_seed(self):
        spec = MarkovLinkFaults(2, 3, mean_uptime=10.0, mean_downtime=2.0)
        first = spec.events(duration=300.0, seed=11)
        second = spec.events(duration=300.0, seed=11)
        assert first == second
        assert spec.events(duration=300.0, seed=12) != first

    def test_per_link_substreams_independent(self, nsfnet):
        # Adding a fault model on another link must not perturb the events
        # generated for this one (per-link named substreams).
        solo = build_fault_timeline(
            nsfnet, [MarkovLinkFaults(2, 3, 10.0, 2.0)], duration=200.0, seed=5
        )
        paired = build_fault_timeline(
            nsfnet,
            [MarkovLinkFaults(2, 3, 10.0, 2.0), MarkovLinkFaults(7, 9, 10.0, 2.0)],
            duration=200.0,
            seed=5,
        )
        own = [e for e in paired.events if e.duplex == (2, 3)]
        assert own == list(solo.events)


class TestBuildTimeline:
    def test_unknown_pair_names_it(self, nsfnet):
        with pytest.raises(KeyError, match="0<->5"):
            build_fault_timeline(
                nsfnet, [ScheduledFailure(0, 5, fail_at=1.0)], duration=10.0
            )

    def test_duplicate_pair_rejected(self, nsfnet):
        specs = [
            ScheduledFailure(2, 3, fail_at=1.0),
            FlappingLink(3, 2, start=5.0, period=2.0, cycles=1),
        ]
        with pytest.raises(ValueError, match="3<->2|2<->3"):
            build_fault_timeline(nsfnet, specs, duration=10.0)

    def test_merged_and_sorted(self, nsfnet):
        timeline = build_fault_timeline(
            nsfnet,
            [
                ScheduledFailure(2, 3, fail_at=8.0, repair_at=9.0),
                FlappingLink(7, 9, start=1.0, period=4.0, cycles=2, outage=1.0),
            ],
            duration=20.0,
        )
        times = [e.time for e in timeline.events]
        assert times == sorted(times)
        assert len(timeline) == 6


def _surgical_trace() -> ArrivalTrace:
    """One hand-built call: arrives at t=1, holds 10 — alive at the failure."""
    return ArrivalTrace(
        od_pairs=((0, 1),),
        times=np.array([1.0]),
        od_index=np.array([0]),
        holding_times=np.array([10.0]),
        uniforms=np.array([0.0]),
        duration=20.0,
        seed=0,
    )


class TestDynamicSimulation:
    def test_in_progress_call_dropped_not_blocked(self):
        net = line(2, 5)
        policy = SinglePathRouting(net, build_path_table(net))
        trace = _surgical_trace()
        result = simulate(
            net, policy, trace, warmup=0.5,
            faults=single_failure_timeline(0, 1, fail_at=5.0),
        )
        assert result.total_blocked == 0
        assert result.total_dropped == 1
        assert result.availability == 0.0

    def test_call_ending_before_failure_not_dropped(self):
        net = line(2, 5)
        policy = SinglePathRouting(net, build_path_table(net))
        trace = _surgical_trace()
        result = simulate(
            net, policy, trace, warmup=0.5,
            faults=single_failure_timeline(0, 1, fail_at=12.0),
        )
        assert result.total_dropped == 0

    def test_warmup_call_drop_not_measured(self):
        net = line(2, 5)
        policy = SinglePathRouting(net, build_path_table(net))
        trace = _surgical_trace()
        result = simulate(
            net, policy, trace, warmup=2.0,  # the call arrives inside warm-up
            faults=single_failure_timeline(0, 1, fail_at=5.0),
        )
        assert result.total_dropped == 0

    def test_repair_restores_capacity(self):
        net = line(2, 5)
        policy = SinglePathRouting(net, build_path_table(net))
        late_call = ArrivalTrace(
            od_pairs=((0, 1),),
            times=np.array([8.0]),
            od_index=np.array([0]),
            holding_times=np.array([1.0]),
            uniforms=np.array([0.0]),
            duration=20.0,
            seed=0,
        )
        down = simulate(
            net, policy, late_call, warmup=0.5,
            faults=single_failure_timeline(0, 1, fail_at=2.0),
        )
        repaired = simulate(
            net, policy, late_call, warmup=0.5,
            faults=single_failure_timeline(0, 1, fail_at=2.0, repair_at=6.0),
        )
        assert down.total_blocked == 1
        assert repaired.total_blocked == 0

    def test_reconvergences_recorded(self, nsfnet, nsfnet_table):
        traffic = uniform_traffic(14, 1.0)
        trace = generate_trace(traffic, 40.0, 0)
        policy = UncontrolledAlternateRouting(nsfnet, nsfnet_table)
        simulator = LossNetworkSimulator(
            nsfnet, policy, trace, warmup=5.0,
            faults=single_failure_timeline(2, 3, fail_at=10.0, repair_at=25.0),
            reconvergence_delay=2.0,
            rebuild_policy=lambda net: UncontrolledAlternateRouting(
                net, build_path_table(net)
            ),
        )
        simulator.run()
        assert simulator.fault_stats.reconvergences == [12.0, 27.0]
        assert simulator.fault_stats.events_applied == 2

    def test_binned_series_covers_run(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 90.0)
        trace = generate_trace(traffic, 30.0, 2)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        simulator = LossNetworkSimulator(
            quad_network, policy, trace, warmup=5.0, timeline_bin=5.0
        )
        result = simulator.run()
        series = simulator.binned_series
        assert series.num_bins == 6
        assert int(series.offered.sum()) == result.total_offered
        assert int(series.blocked.sum()) == result.total_blocked


def _dynamic_replication(seed: int):
    """One dynamic NSFNet replication, reduced to plain comparables.

    Module-level so it can cross a process boundary: determinism must hold
    not just across calls but across interpreter processes.
    """
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = uniform_traffic(14, 2.0)
    trace = generate_trace(traffic, 50.0, seed)
    policy = UncontrolledAlternateRouting(network, table)
    simulator = LossNetworkSimulator(
        network, policy, trace, warmup=10.0,
        faults=build_fault_timeline(
            network,
            [
                ScheduledFailure(2, 3, fail_at=20.0, repair_at=35.0),
                MarkovLinkFaults(7, 9, mean_uptime=30.0, mean_downtime=5.0),
            ],
            duration=50.0,
            seed=seed,
        ),
        reconvergence_delay=1.0,
        rebuild_policy=lambda net: UncontrolledAlternateRouting(
            net, build_path_table(net)
        ),
        timeline_bin=5.0,
    )
    result = simulator.run()
    return (
        result.blocked.tolist(),
        result.dropped.tolist(),
        result.primary_carried,
        result.alternate_carried,
        simulator.fault_stats.reconvergences,
        simulator.binned_series.dropped.tolist(),
    )


def _lossy_signaling_replication(seed: int):
    """One lossy signaling run (retry/backoff exercised), plain comparables."""
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = uniform_traffic(14, 2.0)
    trace = generate_trace(traffic, 40.0, seed)
    policy = UncontrolledAlternateRouting(network, table)
    config = SignalingConfig(
        propagation_delay=0.001,
        message_loss_probability=0.05,
        setup_timeout=0.05,
        max_retries=2,
        backoff_factor=2.0,
        crankback_budget=8,
        hold_timer=0.5,
    )
    result, stats = simulate_signaling(
        network, policy, trace, warmup=10.0, config=config,
        faults=single_failure_timeline(2, 3, fail_at=15.0, repair_at=30.0),
    )
    return (
        result.blocked.tolist(),
        result.dropped.tolist(),
        stats.messages_lost,
        stats.setup_timeouts,
        stats.retries,
        stats.hold_expirations,
    )


class TestDeterminism:
    def test_fault_timeline_identical_across_processes(self, nsfnet):
        specs = [
            MarkovLinkFaults(2, 3, mean_uptime=10.0, mean_downtime=2.0),
            FlappingLink(7, 9, start=5.0, period=6.0, cycles=4),
        ]
        local = build_fault_timeline(nsfnet, specs, duration=100.0, seed=7)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(
                build_fault_timeline, nsfnet, specs, 100.0, 7
            ).result()
        assert remote == local

    def test_dynamic_simulation_identical_across_runs_and_processes(self):
        local_a = _dynamic_replication(3)
        local_b = _dynamic_replication(3)
        assert local_a == local_b
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_dynamic_replication, 3).result()
        assert remote == local_a
        assert _dynamic_replication(4) != local_a

    def test_lossy_signaling_identical_across_runs_and_processes(self):
        local_a = _lossy_signaling_replication(3)
        local_b = _lossy_signaling_replication(3)
        assert local_a == local_b
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_lossy_signaling_replication, 3).result()
        assert remote == local_a
