"""Tests for routing-policy compilation (base, single-path, alternate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protection import min_protection_level
from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.base import RouteChoice, RoutingPolicy, compile_route_choices
from repro.routing.single_path import SinglePathRouting
from repro.topology.generators import fully_connected
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic


class TestCompileRouteChoices:
    def test_primary_first_alternates_by_length(self, quad_network, quad_table):
        choices, cum = compile_route_choices(
            quad_network, quad_table, include_alternates=True
        )
        choice = choices[(0, 1)][0]
        assert choice.primary == quad_network.path_links((0, 1))
        lengths = [len(alt) for alt in choice.alternates]
        assert lengths == sorted(lengths)
        assert cum[(0, 1)][-1] == pytest.approx(1.0)

    def test_without_alternates(self, quad_network, quad_table):
        choices, __ = compile_route_choices(
            quad_network, quad_table, include_alternates=False
        )
        assert all(
            choice.alternates == ()
            for entries in choices.values()
            for choice in entries
        )

    def test_splits_create_multiple_choices(self, quad_network, quad_table):
        splits = {(0, 1): [((0, 1), 0.5), ((0, 2, 1), 0.5)]}
        choices, cum = compile_route_choices(
            quad_network, quad_table, include_alternates=True, splits=splits
        )
        assert len(choices[(0, 1)]) == 2
        assert list(cum[(0, 1)]) == pytest.approx([0.5, 1.0])
        # Each choice's alternates exclude its own primary.
        for choice in choices[(0, 1)]:
            assert choice.primary not in choice.alternates

    def test_bad_split_probabilities_rejected(self, quad_network, quad_table):
        with pytest.raises(ValueError):
            compile_route_choices(
                quad_network,
                quad_table,
                include_alternates=True,
                splits={(0, 1): [((0, 1), 0.4)]},
            )


class TestRoutingPolicyBase:
    def test_select_choice_uses_uniform(self, quad_network, quad_table):
        splits = {(0, 1): [((0, 1), 0.25), ((0, 2, 1), 0.75)]}
        choices, cum = compile_route_choices(
            quad_network, quad_table, include_alternates=False, splits=splits
        )
        policy = RoutingPolicy(quad_network, choices, cum)
        direct = quad_network.path_links((0, 1))
        relay = quad_network.path_links((0, 2, 1))
        assert policy.select_choice((0, 1), 0.1).primary == direct
        assert policy.select_choice((0, 1), 0.24).primary == direct
        assert policy.select_choice((0, 1), 0.26).primary == relay
        assert policy.select_choice((0, 1), 0.99).primary == relay

    def test_single_choice_fast_path(self, quad_network, quad_table):
        choices, cum = compile_route_choices(
            quad_network, quad_table, include_alternates=False
        )
        policy = RoutingPolicy(quad_network, choices, cum)
        assert policy.select_choice((0, 1), 0.999) is policy.choices[(0, 1)][0]

    def test_mismatched_probabilities_rejected(self, quad_network):
        choice = RouteChoice(primary=(0,), alternates=())
        with pytest.raises(ValueError):
            RoutingPolicy(
                quad_network,
                {(0, 1): [choice]},
                {(0, 1): np.array([0.5])},  # does not end at 1
            )

    def test_describe(self, quad_network, quad_table):
        assert SinglePathRouting(quad_network, quad_table).describe() == "single-path"


class TestUncontrolled:
    def test_thresholds_equal_capacity(self, quad_network, quad_table):
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        assert (policy.alt_thresholds == 100).all()


class TestControlled:
    def test_thresholds_are_capacity_minus_r(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 85.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(quad_network, quad_table, loads)
        for link in quad_network.links:
            r = min_protection_level(loads[link.index], link.capacity, quad_table.max_hops)
            assert policy.protection_levels[link.index] == r
            assert policy.alt_thresholds[link.index] == link.capacity - r

    def test_custom_max_hops(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 85.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        h2 = ControlledAlternateRouting(quad_network, quad_table, loads, max_hops=2)
        h3 = ControlledAlternateRouting(quad_network, quad_table, loads, max_hops=3)
        assert (h2.protection_levels <= h3.protection_levels).all()
        assert h2.max_hops == 2

    def test_override_validated(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 50.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        with pytest.raises(ValueError):
            ControlledAlternateRouting(
                quad_network,
                quad_table,
                loads,
                protection_override=np.full(quad_network.num_links, 101),
            )
        with pytest.raises(ValueError):
            ControlledAlternateRouting(
                quad_network, quad_table, loads, protection_override=np.array([1])
            )

    def test_load_shape_validated(self, quad_network, quad_table):
        with pytest.raises(ValueError):
            ControlledAlternateRouting(quad_network, quad_table, np.zeros(3))

    def test_failed_link_gets_zero_level(self):
        net = fully_connected(3, 10)
        net.fail_link(0, 1)
        table = build_path_table(net)
        loads = np.full(net.num_links, 5.0)
        policy = ControlledAlternateRouting(net, table, loads)
        failed_index = [l.index for l in net.links if l.endpoints == (0, 1)][0]
        assert policy.protection_levels[failed_index] == 0


class TestMaxAlternates:
    def test_cap_truncates_shortest_first(self, quad_network, quad_table):
        full = UncontrolledAlternateRouting(quad_network, quad_table)
        capped = UncontrolledAlternateRouting(quad_network, quad_table, max_alternates=2)
        for od in quad_table.od_pairs():
            full_alts = full.choices[od][0].alternates
            capped_alts = capped.choices[od][0].alternates
            assert capped_alts == full_alts[:2]

    def test_zero_cap_is_single_path(self, quad_network, quad_table):
        import numpy as np
        from repro.sim.trace import generate_trace
        from repro.sim.simulator import simulate

        traffic = uniform_traffic(4, 95.0)
        capped = UncontrolledAlternateRouting(quad_network, quad_table, max_alternates=0)
        single = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 20.0, 0)
        a = simulate(quad_network, capped, trace, 5.0)
        b = simulate(quad_network, single, trace, 5.0)
        assert np.array_equal(a.blocked, b.blocked)

    def test_controlled_accepts_cap(self, quad_network, quad_table):
        import numpy as np

        traffic = uniform_traffic(4, 85.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = ControlledAlternateRouting(
            quad_network, quad_table, loads, max_alternates=1
        )
        assert all(
            len(choice.alternates) <= 1
            for entries in policy.choices.values()
            for choice in entries
        )

    def test_negative_cap_rejected(self, quad_network, quad_table):
        with pytest.raises(ValueError):
            UncontrolledAlternateRouting(quad_network, quad_table, max_alternates=-1)
