"""Tests for the per-O-D fairness metrics."""

from __future__ import annotations

import pytest

from repro.analysis.fairness import fairness_report


class TestFairnessReport:
    def test_uniform_profile_has_zero_skew(self):
        report = fairness_report({(0, 1): 0.1, (1, 0): 0.1, (0, 2): 0.1})
        assert report.coefficient_of_variation == pytest.approx(0.0, abs=1e-12)
        assert report.gini == pytest.approx(0.0, abs=1e-12)
        assert report.max == report.min == 0.1

    def test_known_moments(self):
        report = fairness_report({(0, 1): 0.0, (1, 0): 0.2})
        assert report.mean == pytest.approx(0.1)
        assert report.std == pytest.approx(0.1)
        assert report.coefficient_of_variation == pytest.approx(1.0)

    def test_known_gini(self):
        # Profile (0, 1): Gini = mean abs diff / (2 * mean) = 0.5 / (2*0.5) ...
        # sum|xi-xj| = 2, n^2 = 4, mean = 0.5 -> 2 / (2*4*0.5) = 0.5.
        report = fairness_report({(0, 1): 0.0, (1, 0): 1.0})
        assert report.gini == pytest.approx(0.5)

    def test_all_zero_profile(self):
        report = fairness_report({(0, 1): 0.0, (1, 0): 0.0})
        assert report.mean == 0.0
        assert report.coefficient_of_variation == 0.0
        assert report.gini == 0.0

    def test_comparison_helper(self):
        skewed = fairness_report({(0, 1): 0.0, (1, 0): 0.4})
        flat = fairness_report({(0, 1): 0.2, (1, 0): 0.2})
        assert skewed.more_skewed_than(flat)
        assert not flat.more_skewed_than(skewed)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fairness_report({})

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            fairness_report({(0, 1): 1.2})
        with pytest.raises(ValueError):
            fairness_report({(0, 1): -0.1})

    def test_pairs_counted(self):
        report = fairness_report({(0, 1): 0.1, (1, 2): 0.3, (2, 0): 0.2})
        assert report.pairs == 3
