"""Tests for the traffic-matrix calibration (the reproduction's substitution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.generators import fully_connected
from repro.topology.nsfnet import NSFNET_TABLE1_LOADS, nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import calibrate_traffic, nsfnet_nominal_traffic
from repro.traffic.demand import loads_by_endpoints, primary_link_loads
from repro.traffic.matrix import TrafficMatrix


class TestCalibrateTraffic:
    def test_roundtrip_on_synthetic_demand(self):
        # Build a known matrix, derive its loads, calibrate back: the loads
        # (not necessarily the matrix — the system is underdetermined) must
        # be recovered exactly.
        net = fully_connected(4, 50)
        table = build_path_table(net)
        truth = TrafficMatrix({(0, 1): 5.0, (2, 3): 7.0, (1, 3): 2.0})
        targets = loads_by_endpoints(net, primary_link_loads(net, table, truth))
        result = calibrate_traffic(net, targets)
        assert result.residual == pytest.approx(0.0, abs=1e-9)
        recovered = loads_by_endpoints(
            net, primary_link_loads(net, table, result.traffic)
        )
        for endpoints, value in targets.items():
            assert recovered[endpoints] == pytest.approx(value, abs=1e-9)

    def test_missing_target_rejected(self):
        net = fully_connected(3, 10)
        with pytest.raises(ValueError):
            calibrate_traffic(net, {(0, 1): 1.0})

    def test_prior_spreads_demand(self):
        net = fully_connected(4, 50)
        table = build_path_table(net)
        truth = TrafficMatrix({(0, 1): 6.0, (2, 3): 6.0})
        targets = loads_by_endpoints(net, primary_link_loads(net, table, truth))
        prior = np.full((4, 4), 0.5)
        np.fill_diagonal(prior, 0.0)
        result = calibrate_traffic(net, targets, prior=prior)
        positive = sum(1 for __ in result.traffic.positive_pairs())
        assert positive > 2  # more pairs than the sparse truth
        assert result.max_load_error(targets) < 0.5

    def test_prior_shape_checked(self):
        net = fully_connected(3, 10)
        table = build_path_table(net)
        truth = TrafficMatrix({(0, 1): 1.0})
        targets = loads_by_endpoints(net, primary_link_loads(net, table, truth))
        with pytest.raises(ValueError):
            calibrate_traffic(net, targets, prior=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            calibrate_traffic(net, targets, prior=-np.ones((3, 3)))
        with pytest.raises(ValueError):
            calibrate_traffic(net, targets, prior=np.zeros((3, 3)), smoothing=0.0)


class TestNominalNsfnetTraffic:
    def test_all_pairs_positive(self):
        traffic = nsfnet_nominal_traffic()
        assert sum(1 for __ in traffic.positive_pairs()) == 132

    def test_loads_round_to_table1(self):
        net = nsfnet_backbone()
        table = build_path_table(net)
        traffic = nsfnet_nominal_traffic()
        loads = loads_by_endpoints(net, primary_link_loads(net, table, traffic))
        for endpoints, printed in NSFNET_TABLE1_LOADS.items():
            assert round(loads[endpoints]) == printed

    def test_load_error_well_inside_rounding(self):
        net = nsfnet_backbone()
        table = build_path_table(net)
        traffic = nsfnet_nominal_traffic()
        loads = loads_by_endpoints(net, primary_link_loads(net, table, traffic))
        worst = max(
            abs(loads[endpoints] - printed)
            for endpoints, printed in NSFNET_TABLE1_LOADS.items()
        )
        assert worst < 0.01

    def test_cached_instance_is_stable(self):
        a = nsfnet_nominal_traffic()
        b = nsfnet_nominal_traffic()
        assert a is b
        # Scaling must not mutate the cached matrix.
        a.scaled(2.0)
        assert a == nsfnet_nominal_traffic()

    def test_wide_disparities_like_the_paper(self):
        # "Note the wide disparities in the values of the elements of T."
        traffic = nsfnet_nominal_traffic()
        values = [v for __, v in traffic.positive_pairs()]
        assert max(values) / np.median(values) > 3.0
