"""Tests for sweep persistence and the methodology (convergence) study."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.convergence import seed_convergence, warmup_sensitivity
from repro.experiments.runner import ReplicationConfig, SweepPoint
from repro.experiments.storage import load_sweep, save_sweep
from repro.sim.metrics import SweepStatistic
from repro.routing.single_path import SinglePathRouting
from repro.routing.alternate import UncontrolledAlternateRouting
from repro.traffic.generators import uniform_traffic


def make_points():
    point = SweepPoint(load=90.0)
    point.erlang_bound = 0.01
    point.blocking = {
        "single-path": SweepStatistic(0.05, 0.01, 0.004, 3, (0.04, 0.05, 0.06)),
        "controlled": SweepStatistic(0.03, 0.005, 0.002, 3, (0.025, 0.03, 0.035)),
    }
    return [point]


class TestStorage:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.json"
        config = ReplicationConfig(measured_duration=40.0, warmup=10.0, seeds=(0, 1, 2))
        save_sweep(path, make_points(), config=config, title="demo")
        points, loaded_config, title = load_sweep(path)
        assert title == "demo"
        assert loaded_config == config
        assert len(points) == 1
        assert points[0].load == 90.0
        assert points[0].erlang_bound == 0.01
        original = make_points()[0].blocking["single-path"]
        restored = points[0].blocking["single-path"]
        assert restored.mean == original.mean
        assert restored.values == original.values

    def test_no_config(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(path, make_points())
        __, config, title = load_sweep(path)
        assert config is None
        assert title == ""

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other", "points": []}))
        with pytest.raises(ValueError):
            load_sweep(path)

    def test_file_is_human_readable_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(path, make_points(), title="x")
        document = json.loads(path.read_text())
        assert document["schema"] == "repro-sweep-v2"
        assert document["points"][0]["blocking"]["controlled"]["mean"] == 0.03

    def test_legacy_v1_file_still_loads(self, tmp_path):
        # v1 files predate provenance; the migration shim loads them
        # unchanged and without warnings.
        path = tmp_path / "sweep.json"
        save_sweep(path, make_points(), title="legacy")
        document = json.loads(path.read_text())
        document["schema"] = "repro-sweep-v1"
        del document["provenance"]
        path.write_text(json.dumps(document))
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            points, __, title = load_sweep(path)
        assert title == "legacy"
        assert points[0].load == 90.0

    def test_provenance_mismatch_warns(self, tmp_path):
        from repro.experiments.storage import ProvenanceWarning

        path = tmp_path / "sweep.json"
        config = ReplicationConfig(measured_duration=40.0, warmup=10.0, seeds=(0, 1))
        save_sweep(path, make_points(), config=config)
        document = json.loads(path.read_text())
        document["provenance"]["repro_version"] = "0.0.0-other"
        path.write_text(json.dumps(document))
        with pytest.warns(ProvenanceWarning, match="0.0.0-other"):
            load_sweep(path)

    def test_edited_config_warns(self, tmp_path):
        from repro.experiments.storage import ProvenanceWarning

        path = tmp_path / "sweep.json"
        config = ReplicationConfig(measured_duration=40.0, warmup=10.0, seeds=(0, 1))
        save_sweep(path, make_points(), config=config)
        document = json.loads(path.read_text())
        document["config"]["seeds"] = [0, 1, 2, 3]
        path.write_text(json.dumps(document))
        with pytest.warns(ProvenanceWarning, match="config hash"):
            load_sweep(path)


class TestWarmupSensitivity:
    def test_zero_warmup_biases_low(self, quad_network, quad_table):
        # Starting from an idle network, early calls never block: measuring
        # from t=0 underestimates steady-state blocking.
        traffic = uniform_traffic(4, 95.0)
        policy = SinglePathRouting(quad_network, quad_table)
        outcome = warmup_sensitivity(
            quad_network, policy, traffic,
            warmups=(0.0, 10.0), measured_duration=30.0, seeds=range(4),
        )
        assert outcome[0.0].mean < outcome[10.0].mean

    def test_long_warmups_agree(self, quad_network, quad_table):
        # Past the transient, further warm-up changes nothing systematic.
        traffic = uniform_traffic(4, 95.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        outcome = warmup_sensitivity(
            quad_network, policy, traffic,
            warmups=(10.0, 20.0), measured_duration=40.0, seeds=range(4),
        )
        assert outcome[10.0].mean == pytest.approx(outcome[20.0].mean, abs=0.03)

    def test_empty_warmups_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            warmup_sensitivity(quad_network, policy, traffic, warmups=())


class TestSeedConvergence:
    def test_half_width_shrinks(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        policy = SinglePathRouting(quad_network, quad_table)
        outcome = seed_convergence(
            quad_network, policy, traffic,
            seed_counts=(5, 20), measured_duration=20.0,
        )
        assert outcome[20].half_width < outcome[5].half_width

    def test_means_consistent(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        policy = SinglePathRouting(quad_network, quad_table)
        outcome = seed_convergence(
            quad_network, policy, traffic,
            seed_counts=(5, 10), measured_duration=20.0,
        )
        assert outcome[5].mean == pytest.approx(outcome[10].mean, abs=0.03)

    def test_small_counts_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            seed_convergence(quad_network, policy, traffic, seed_counts=(1,))


class TestParallelRunner:
    def test_parallel_matches_serial_bitwise(self, quad_network, quad_table):
        import numpy as np

        from repro.experiments.runner import ReplicationConfig, run_replications
        from repro.routing.alternate import UncontrolledAlternateRouting

        config = ReplicationConfig(measured_duration=10.0, warmup=2.0, seeds=(0, 1, 2))
        traffic = uniform_traffic(4, 90.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        serial_stat, serial_results = run_replications(
            quad_network, policy, traffic, config
        )
        parallel_stat, parallel_results = run_replications(
            quad_network, policy, traffic, config, parallel=True, max_workers=2
        )
        assert parallel_stat.values == serial_stat.values
        for a, b in zip(serial_results, parallel_results):
            assert np.array_equal(a.blocked, b.blocked)
            assert a.seed == b.seed


class TestOptimalReservation:
    def test_sweep_structure(self, quad_network, quad_table):
        from repro.experiments.optimal_r import uniform_reservation_sweep
        from repro.experiments.runner import ReplicationConfig

        config = ReplicationConfig(measured_duration=10.0, warmup=2.0, seeds=(0, 1))
        traffic = uniform_traffic(4, 95.0)
        sweep = uniform_reservation_sweep(
            quad_network, quad_table, traffic, (0, 10, 100), config
        )
        assert set(sweep) == {0, 10, 100}
        assert all(0.0 <= s.mean <= 1.0 for s in sweep.values())

    def test_invalid_reservation_rejected(self, quad_network, quad_table):
        from repro.experiments.optimal_r import uniform_reservation_sweep

        traffic = uniform_traffic(4, 10.0)
        with pytest.raises(ValueError):
            uniform_reservation_sweep(quad_network, quad_table, traffic, (101,))

    def test_empirical_optimum_fields(self, quad_network, quad_table):
        from repro.experiments.optimal_r import empirical_optimal_reservation
        from repro.experiments.runner import ReplicationConfig

        config = ReplicationConfig(measured_duration=12.0, warmup=3.0, seeds=(0, 1))
        traffic = uniform_traffic(4, 95.0)
        result = empirical_optimal_reservation(
            quad_network, quad_table, traffic, (0, 6, 15, 100), config
        )
        assert result["best_r"] in (0, 6, 15, 100)
        assert result["equation15_r"] == 15  # Lambda=95, C=100, H=3
        assert result["penalty"] >= 0.0


class TestParallelComparePolicies:
    def test_parallel_preserves_common_random_numbers(self, quad_network, quad_table):
        from repro.experiments.runner import ReplicationConfig, compare_policies
        from repro.routing.single_path import SinglePathRouting

        config = ReplicationConfig(measured_duration=8.0, warmup=2.0, seeds=(0, 1))
        traffic = uniform_traffic(4, 90.0)
        policies = {
            "a": SinglePathRouting(quad_network, quad_table),
            "b": SinglePathRouting(quad_network, quad_table),
        }
        serial = compare_policies(quad_network, policies, traffic, config)
        parallel = compare_policies(
            quad_network, policies, traffic, config, parallel=True, max_workers=2
        )
        assert parallel["a"].values == serial["a"].values
        assert parallel["a"].values == parallel["b"].values  # CRN intact
