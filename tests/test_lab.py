"""Tests for repro.lab: hashing, the result store, and the scheduler.

The headline guarantees under test:

* a lab-orchestrated study is bit-identical to a direct ``run_study``;
* running the identical study twice gives 100% cache hits and zero
  simulation work on the second pass, with bit-identical results;
* a study interrupted partway (``max_jobs``) and then resumed merges to
  exactly the uninterrupted result;
* overlapping studies share cached replications.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import cli
from repro.api import LabConfig, Scenario, run_study
from repro.experiments.runner import ReplicationConfig
from repro.lab import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    canonical_json,
    config_signature,
    job_key,
    read_events,
    result_from_document,
    result_to_document,
    scenario_signature,
)
from repro.lab.scheduler import LabInterrupted
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import quadrangle
from repro.traffic.generators import uniform_traffic

CONFIG = ReplicationConfig(measured_duration=8.0, warmup=2.0, seeds=(0, 1, 2))
SCENARIO = Scenario(topology="quadrangle", traffic=30.0)


def small_result(seed=0):
    network = quadrangle(100)
    traffic = uniform_traffic(4, 30.0)
    from repro.topology.paths import build_path_table
    from repro.routing.single_path import SinglePathRouting

    policy = SinglePathRouting(network, build_path_table(network))
    trace = generate_trace(traffic, 10.0, seed)
    return simulate(network, policy, trace, warmup=2.0)


def assert_results_identical(a, b):
    assert a.seed == b.seed
    assert a.od_pairs == b.od_pairs
    for name in ("offered", "blocked", "class_offered", "class_blocked"):
        left, right = getattr(a, name), getattr(b, name)
        assert np.array_equal(left, right)
        assert left.dtype == right.dtype
    assert a.primary_carried == b.primary_carried
    assert a.alternate_carried == b.alternate_carried
    assert a.warmup == b.warmup and a.duration == b.duration
    if a.dropped is None:
        assert b.dropped is None
    else:
        assert np.array_equal(a.dropped, b.dropped)


class TestHashing:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": [1.5, 2]}) == canonical_json(
            {"a": [1.5, 2], "b": 1}
        )

    def test_job_key_sensitivity(self):
        sig = scenario_signature(SCENARIO)
        cfg = config_signature(CONFIG)
        base = job_key(sig, "controlled", cfg, 0, RESULT_SCHEMA_VERSION)
        assert base == job_key(sig, "controlled", cfg, 0, RESULT_SCHEMA_VERSION)
        assert base != job_key(sig, "uncontrolled", cfg, 0, RESULT_SCHEMA_VERSION)
        assert base != job_key(sig, "controlled", cfg, 1, RESULT_SCHEMA_VERSION)
        assert base != job_key(sig, "controlled", cfg, 0, RESULT_SCHEMA_VERSION + 1)
        other_cfg = config_signature(
            ReplicationConfig(measured_duration=9.0, warmup=2.0, seeds=(0,))
        )
        assert base != job_key(sig, "controlled", other_cfg, 0, RESULT_SCHEMA_VERSION)

    def test_seeds_do_not_enter_config_signature(self):
        # Different seed rosters share per-seed cache entries.
        a = config_signature(ReplicationConfig(measured_duration=8.0, warmup=2.0, seeds=(0, 1)))
        b = config_signature(ReplicationConfig(measured_duration=8.0, warmup=2.0, seeds=(0, 1, 2)))
        assert a == b

    def test_scenario_signature_distinguishes_ingredients(self):
        base = scenario_signature(SCENARIO)
        assert base != scenario_signature(Scenario(topology="quadrangle", traffic=31.0))
        assert base != scenario_signature(
            Scenario(topology="quadrangle", traffic=30.0, load_scale=1.1)
        )
        assert base != scenario_signature(
            Scenario(topology="quadrangle", traffic=30.0, max_hops=2)
        )

    def test_concrete_objects_hash_by_value(self):
        def build():
            return Scenario(
                topology=quadrangle(100), traffic=uniform_traffic(4, 30.0)
            )

        assert scenario_signature(build()) == scenario_signature(build())


class TestResultStore:
    def test_result_document_roundtrip_is_bit_identical(self):
        original = small_result()
        document = result_to_document(original, {"note": "test"})
        restored = result_from_document(json.loads(json.dumps(document)))
        assert_results_identical(original, restored)

    def test_put_get_contains(self, tmp_path):
        store = ResultStore(tmp_path)
        result = small_result()
        assert "deadbeef" not in store
        store.put_result("deadbeef", result)
        assert "deadbeef" in store
        assert_results_identical(store.get_result("deadbeef"), result)
        assert store.get_result("cafe") is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_result("deadbeef", small_result())
        assert not list(tmp_path.rglob("*.tmp"))

    def test_gc_drops_unreferenced_objects(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_result("aa00", small_result())
        store.put_result("bb11", small_result())
        store.save_manifest("study1", {"jobs": {"aa00": {"status": "done"}}})
        outcome = store.gc()
        assert outcome == {"removed": 1, "kept": 1}
        assert "aa00" in store and "bb11" not in store

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_result("aa00", small_result())
        stats = store.stats()
        assert stats["objects"] == 1
        assert stats["bytes"] > 0


class TestScheduler:
    def test_lab_matches_direct_run(self, tmp_path):
        direct = run_study(SCENARIO, config=CONFIG)
        labbed = run_study(SCENARIO, config=CONFIG, lab=LabConfig(store=tmp_path))
        assert labbed.stat == direct.stat
        for a, b in zip(direct.outcome.results, labbed.outcome.results):
            assert_results_identical(a, b)
        assert labbed.lab.simulated == len(CONFIG.seeds)
        assert labbed.lab.cache_hits == 0

    def test_second_pass_is_pure_cache(self, tmp_path):
        lab = LabConfig(store=tmp_path)
        first = run_study(SCENARIO, config=CONFIG, lab=lab)
        second = run_study(SCENARIO, config=CONFIG, lab=lab)
        assert second.lab.cache_hits == second.lab.total_jobs
        assert second.lab.simulated == 0
        assert second.stat == first.stat
        for a, b in zip(first.outcome.results, second.outcome.results):
            assert_results_identical(a, b)
        assert all(s.cached for s in second.outcome.statuses)

    def test_interrupt_and_resume_matches_uninterrupted(self, tmp_path):
        direct = run_study(SCENARIO, config=CONFIG)
        lab_store = tmp_path / "store"
        with pytest.raises(LabInterrupted) as excinfo:
            run_study(SCENARIO, config=CONFIG,
                      lab=LabConfig(store=lab_store, max_jobs=1))
        assert excinfo.value.report.simulated == 1
        resumed = run_study(SCENARIO, config=CONFIG, lab=LabConfig(store=lab_store))
        assert resumed.lab.cache_hits == 1
        assert resumed.lab.simulated == len(CONFIG.seeds) - 1
        assert resumed.stat == direct.stat
        for a, b in zip(direct.outcome.results, resumed.outcome.results):
            assert_results_identical(a, b)

    def test_overlapping_studies_share_replications(self, tmp_path):
        lab = LabConfig(store=tmp_path)
        run_study(SCENARIO, config=CONFIG, lab=lab)
        widened = run_study(
            SCENARIO, policies=("controlled", "uncontrolled"),
            config=CONFIG, lab=lab,
        )
        # The controlled seeds were cached by the first study; only the
        # uncontrolled ones simulate.
        assert widened.lab.cache_hits == len(CONFIG.seeds)
        assert widened.lab.simulated == len(CONFIG.seeds)

    def test_parallel_matches_serial(self, tmp_path):
        direct = run_study(SCENARIO, config=CONFIG)
        labbed = run_study(
            SCENARIO, config=CONFIG, parallel=True, max_workers=2,
            lab=LabConfig(store=tmp_path / "p"),
        )
        assert labbed.stat == direct.stat
        for a, b in zip(direct.outcome.results, labbed.outcome.results):
            assert_results_identical(a, b)

    def test_events_telemetry(self, tmp_path):
        lab = LabConfig(store=tmp_path)
        study = run_study(SCENARIO, config=CONFIG, lab=lab)
        events = list(read_events(study.lab.events))
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "study_started"
        assert kinds[-1] == "study_finished"
        assert kinds.count("job_started") == len(CONFIG.seeds)
        assert kinds.count("job_finished") == len(CONFIG.seeds)
        finished = [e for e in events if e["kind"] == "job_finished"]
        assert all(e["elapsed"] > 0 for e in finished)
        progress = [e for e in events if e["kind"] == "progress"]
        assert progress and progress[-1]["done"] == len(CONFIG.seeds)

    def test_statuses_carry_wall_clock(self, tmp_path):
        study = run_study(SCENARIO, config=CONFIG, lab=LabConfig(store=tmp_path))
        assert all(s.wall_clock is not None and s.wall_clock > 0
                   for s in study.outcome.statuses)
        assert not any(s.cached for s in study.outcome.statuses)

    def test_custom_objects_are_cacheable(self, tmp_path):
        scenario = Scenario(topology=quadrangle(100), traffic=uniform_traffic(4, 30.0))
        lab = LabConfig(store=tmp_path)
        run_study(scenario, config=CONFIG, lab=lab)
        rebuilt = Scenario(topology=quadrangle(100), traffic=uniform_traffic(4, 30.0))
        second = run_study(rebuilt, config=CONFIG, lab=lab)
        assert second.lab.cache_hits == second.lab.total_jobs


class TestLabCli:
    RUN_ARGS = [
        "lab", "run", "--topology", "quadrangle", "--traffic", "30",
        "--policies", "controlled", "--seeds", "3", "--duration", "8",
    ]

    def test_run_then_cached_rerun(self, tmp_path, capsys):
        store = str(tmp_path)
        assert cli.main(self.RUN_ARGS + ["--store", store, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)["studies"][0]
        assert first["simulated"] == 3 and first["cache_hits"] == 0
        assert cli.main(self.RUN_ARGS + ["--store", store, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)["studies"][0]
        assert second["simulated"] == 0 and second["cache_hits"] == 3
        assert second["policies"] == first["policies"]

    def test_interrupted_run_then_resume(self, tmp_path, capsys):
        store = str(tmp_path)
        assert cli.main(self.RUN_ARGS + ["--store", store, "--max-jobs", "1"]) == 3
        capsys.readouterr()
        assert cli.main(["lab", "status", "--store", store]) == 0
        assert "partial" in capsys.readouterr().out
        assert cli.main(["lab", "resume", "--store", store, "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)["studies"][0]
        assert resumed["cache_hits"] == 1 and resumed["simulated"] == 2
        # The resumed study matches a fresh uninterrupted run elsewhere.
        fresh = run_study(SCENARIO, config=CONFIG)
        assert resumed["policies"]["controlled"]["values"] == list(fresh.stat.values)

    def test_status_ls_gc(self, tmp_path, capsys):
        store = str(tmp_path)
        assert cli.main(self.RUN_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert cli.main(["lab", "status", "--store", store]) == 0
        assert "complete" in capsys.readouterr().out
        assert cli.main(["lab", "ls", "--store", store]) == 0
        assert "3 cached replications" in capsys.readouterr().out
        assert cli.main(["lab", "gc", "--store", store]) == 0
        assert "removed 0" in capsys.readouterr().out
        # Dropping the manifest orphans the objects; gc then removes them.
        studies = ResultStore(store).list_studies()
        ResultStore(store).manifest_path(studies[0]).unlink()
        assert cli.main(["lab", "gc", "--store", store]) == 0
        assert "removed 3" in capsys.readouterr().out

    def test_status_detail(self, tmp_path, capsys):
        store = str(tmp_path)
        assert cli.main(self.RUN_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        study = ResultStore(store).list_studies()[0]
        assert cli.main(["lab", "status", "--store", store, "--study", study]) == 0
        out = capsys.readouterr().out
        assert "seed" in out and "done" in out

    def test_experiment_job_graph_run(self, tmp_path, capsys):
        # EXP-OK at tiny fidelity: 2 load points x 4 policies x 2 seeds.
        assert cli.main([
            "lab", "run", "--experiment", "EXP-OK", "--seeds", "2",
            "--duration", "8", "--store", str(tmp_path), "--json",
        ]) == 0
        studies = json.loads(capsys.readouterr().out)["studies"]
        assert len(studies) == 2
        assert all(s["total_jobs"] == 8 for s in studies)

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["lab", "run", "--experiment", "NOPE", "--store", str(tmp_path)])

    def test_bad_traffic_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["lab", "run", "--traffic", "lots", "--store", str(tmp_path)])

    def test_resume_empty_store_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["lab", "resume", "--store", str(tmp_path / "void")])
