"""Tests for the experiment harness (runner, figures, tables, ablations, report)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import estimator_ablation, protection_sensitivity
from repro.experiments.figures import (
    figure2_protection_levels,
    nsfnet_sweep,
    quadrangle_sweep,
)
from repro.experiments.report import format_sweep, format_table, format_table1
from repro.experiments.runner import (
    PAPER_CONFIG,
    ReplicationConfig,
    compare_policies,
    run_replications,
)
from repro.experiments.tables import regenerate_table1, table1_agreement
from repro.routing.single_path import SinglePathRouting
from repro.traffic.generators import uniform_traffic


class TestReplicationConfig:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.measured_duration == 100.0
        assert PAPER_CONFIG.warmup == 10.0
        assert PAPER_CONFIG.seeds == tuple(range(10))
        assert PAPER_CONFIG.duration == 110.0

    def test_scaled(self):
        cheap = PAPER_CONFIG.scaled(duration_factor=0.2, num_seeds=3)
        assert cheap.measured_duration == 20.0
        assert cheap.seeds == (0, 1, 2)


class TestRunner:
    def test_run_replications(self, quad_network, quad_table, fast_config):
        traffic = uniform_traffic(4, 80.0)
        policy = SinglePathRouting(quad_network, quad_table)
        stat, results = run_replications(quad_network, policy, traffic, fast_config)
        assert stat.num_runs == len(fast_config.seeds)
        assert len(results) == len(fast_config.seeds)
        assert 0.0 <= stat.mean <= 1.0

    def test_compare_policies_uses_common_traces(self, quad_network, quad_table, fast_config):
        traffic = uniform_traffic(4, 80.0)
        policies = {
            "a": SinglePathRouting(quad_network, quad_table),
            "b": SinglePathRouting(quad_network, quad_table),
        }
        comparison = compare_policies(quad_network, policies, traffic, fast_config)
        # Identical policies on common random numbers give identical stats.
        assert comparison["a"].values == comparison["b"].values


class TestFigures:
    def test_figure2_structure(self):
        curves = figure2_protection_levels()
        assert set(curves) == {2, 6, 120}
        loads, r = curves[6]
        assert loads.shape == r.shape == (100,)

    def test_quadrangle_sweep_small(self, fast_config):
        points = quadrangle_sweep(loads=(80.0, 95.0), config=fast_config)
        assert [p.load for p in points] == [80.0, 95.0]
        for point in points:
            assert set(point.blocking) == {"single-path", "uncontrolled", "controlled"}
            assert point.erlang_bound is not None
            assert point.erlang_bound <= 1.0

    def test_nsfnet_sweep_small(self, fast_config):
        points = nsfnet_sweep(load_values=(10.0,), config=fast_config)
        (point,) = points
        assert point.load == 10.0
        assert point.blocking["controlled"].mean <= 1.0

    def test_ott_krishnan_included_on_request(self, fast_config):
        points = quadrangle_sweep(
            loads=(85.0,), config=fast_config, include_ott_krishnan=True
        )
        assert "ott-krishnan" in points[0].blocking


class TestTable1:
    def test_all_loads_match(self):
        rows = regenerate_table1()
        assert len(rows) == 30
        assert all(row.load_matches for row in rows)

    def test_protection_agreement_high(self):
        summary = table1_agreement()
        assert summary["load_match_fraction"] == 1.0
        assert summary["protection_match_fraction"] >= 0.85
        assert summary["worst_protection_gap"] <= 2.0

    def test_h11_needs_at_least_h6_protection(self):
        for row in regenerate_table1():
            assert row.r_h11 >= row.r_h6


class TestAblations:
    def test_protection_sensitivity(self, quad_network, quad_table, fast_config):
        traffic = uniform_traffic(4, 90.0)
        outcome = protection_sensitivity(
            quad_network, quad_table, traffic, offsets=(-1, 0, 1), config=fast_config
        )
        assert set(outcome) == {-1, 0, 1}
        assert all(0.0 <= stat.mean <= 1.0 for stat in outcome.values())

    def test_estimator_ablation(self, quad_network, quad_table, fast_config):
        traffic = uniform_traffic(4, 85.0)
        outcome = estimator_ablation(
            quad_network, quad_table, traffic, config=fast_config,
            measurement_duration=30.0,
        )
        assert outcome["max_load_error"] < 20.0
        assert outcome["max_protection_gap"] <= 10
        # Robustness: estimated-r blocking within a few points of known-r.
        assert abs(outcome["known"].mean - outcome["estimated"].mean) < 0.05


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["x", "value"], [[1, 0.5], [20, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("x")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_small_numbers_scientific(self):
        text = format_table(["b"], [[1.5e-5]])
        assert "e-05" in text

    def test_format_sweep(self, fast_config):
        points = quadrangle_sweep(loads=(85.0,), config=fast_config)
        text = format_sweep(points, title="demo")
        assert text.startswith("demo")
        assert "single-path" in text
        assert "erlang-bound" in text

    def test_format_sweep_empty(self):
        assert format_sweep([]) == "(empty sweep)"

    def test_format_table1(self):
        text = format_table1(regenerate_table1())
        assert "0->1" in text
        assert "r(H=6)" in text
        assert len(text.splitlines()) == 32  # header + rule + 30 rows
