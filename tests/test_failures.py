"""Tests for link-failure scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.failures import FailureScenario, apply_failures
from repro.topology.generators import line
from repro.topology.nsfnet import nsfnet_backbone
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.matrix import TrafficMatrix


class TestFailureScenario:
    def test_describe(self):
        scenario = FailureScenario(((2, 3),), name="paper")
        assert scenario.describe() == "paper: 2<->3"
        assert FailureScenario((), name="none").describe() == "none: none"


class TestApplyFailures:
    def test_original_network_untouched(self, nsfnet):
        traffic = nsfnet_nominal_traffic()
        scenario = FailureScenario(((2, 3),))
        failed = apply_failures(nsfnet, traffic, scenario)
        assert not nsfnet.failed_links
        assert len(failed.network.failed_links) == 2

    def test_routes_avoid_failed_links(self, nsfnet):
        traffic = nsfnet_nominal_traffic()
        failed = apply_failures(nsfnet, traffic, FailureScenario(((2, 3),)))
        # Pair (2, 3) must now route the long way round.
        primary = failed.table.primary[(2, 3)]
        assert len(primary) > 2
        assert failed.network.is_valid_path(primary)

    def test_loads_rederived(self, nsfnet):
        traffic = nsfnet_nominal_traffic()
        intact_loads = apply_failures(nsfnet, traffic, FailureScenario(()))
        failed = apply_failures(nsfnet, traffic, FailureScenario(((2, 3),)))
        # Demand leaves the failed corridor and lands elsewhere.
        assert not np.allclose(failed.primary_loads, intact_loads.primary_loads)
        failed_indices = [
            link.index for link in failed.network.links if link.endpoints in ((2, 3), (3, 2))
        ]
        assert all(failed.primary_loads[i] == 0.0 for i in failed_indices)
        # Total link-load mass can only grow: rerouted paths are no shorter.
        assert failed.primary_loads.sum() >= intact_loads.primary_loads.sum()

    def test_disconnected_demand_tolerated(self):
        net = line(3, 5)
        traffic = TrafficMatrix({(0, 2): 4.0})
        failed = apply_failures(net, traffic, FailureScenario(((1, 2),)))
        assert (0, 2) not in failed.table.primary
        assert failed.primary_loads.sum() == 0.0

    def test_unknown_link_raises(self, nsfnet):
        traffic = nsfnet_nominal_traffic()
        with pytest.raises(KeyError):
            apply_failures(nsfnet, traffic, FailureScenario(((0, 5),)))

    def test_unknown_link_error_names_the_pair(self, nsfnet):
        traffic = nsfnet_nominal_traffic()
        with pytest.raises(KeyError, match="0<->5"):
            apply_failures(nsfnet, traffic, FailureScenario(((0, 5),)))

    def test_duplicate_link_rejected(self, nsfnet):
        traffic = nsfnet_nominal_traffic()
        with pytest.raises(ValueError, match="2<->3"):
            apply_failures(nsfnet, traffic, FailureScenario(((2, 3), (2, 3))))

    def test_reversed_duplicate_rejected(self, nsfnet):
        # (3, 2) is the same duplex link as (2, 3): failing it "twice" is a
        # scenario bug, not a doubly-failed link.
        traffic = nsfnet_nominal_traffic()
        with pytest.raises(ValueError, match="2<->3|3<->2"):
            apply_failures(nsfnet, traffic, FailureScenario(((2, 3), (3, 2))))

    def test_max_hops_honoured(self, nsfnet):
        traffic = nsfnet_nominal_traffic()
        failed = apply_failures(nsfnet, traffic, FailureScenario(((7, 9),)), max_hops=6)
        assert failed.table.max_hops == 6
