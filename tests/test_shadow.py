"""Tests for Ott-Krishnan shadow-price routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.shadow import OttKrishnanRouting, link_shadow_prices
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import fully_connected
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix


class TestLinkShadowPrices:
    def test_full_state_is_infinite(self):
        prices = link_shadow_prices(5.0, 8)
        assert np.isinf(prices[8])
        assert np.isfinite(prices[:8]).all()

    def test_prices_increase_with_occupancy(self):
        prices = link_shadow_prices(6.0, 10)
        assert (np.diff(prices[:10]) > 0).all()

    def test_zero_demand_prices_at_zero(self):
        prices = link_shadow_prices(0.0, 5)
        assert (prices[:5] == 0.0).all()
        assert np.isinf(prices[5])

    def test_prices_below_one_when_lightly_loaded(self):
        # A nearly idle link should charge much less than one call of revenue.
        prices = link_shadow_prices(1.0, 20)
        assert prices[0] < 1e-6

    def test_price_near_one_at_the_brink(self):
        # Accepting at occupancy C-1 of a hot link costs close to a full call.
        prices = link_shadow_prices(30.0, 10)
        assert 0.5 < prices[9] <= 1.0 + 1e-9

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            link_shadow_prices(1.0, 0)


class TestOttKrishnanPolicy:
    def test_validation(self, quad_network, quad_table):
        with pytest.raises(ValueError):
            OttKrishnanRouting(quad_network, quad_table, np.zeros(3))
        loads = np.zeros(quad_network.num_links)
        with pytest.raises(ValueError):
            OttKrishnanRouting(quad_network, quad_table, loads, revenue=0.0)

    def test_light_load_carries_everything(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 5.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = OttKrishnanRouting(quad_network, quad_table, loads)
        trace = generate_trace(traffic, 30.0, 0)
        result = simulate(quad_network, policy, trace)
        assert result.network_blocking == 0.0
        # Most calls ride the primary, but with near-zero prices everywhere
        # the argmin regularly prefers a currently-emptier two-hop path —
        # the price-comparison "swinging" the paper blames for the scheme's
        # weakness on sparse meshes.
        assert result.primary_carried > result.alternate_carried
        assert result.alternate_carried > 0

    def test_blocks_when_price_exceeds_revenue(self):
        # One isolated congested link: at occupancy C-1 the price of the only
        # path approaches 1; with tiny revenue the policy must block even
        # though capacity remains.
        net = fully_connected(2, 4)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 1): 12.0}, num_nodes=2)
        loads = primary_link_loads(net, table, traffic)
        cheap = OttKrishnanRouting(net, table, loads, revenue=1e-6)
        normal = OttKrishnanRouting(net, table, loads, revenue=1.0)
        trace = generate_trace(traffic, 60.0, 1)
        blocked_cheap = simulate(net, cheap, trace).network_blocking
        blocked_normal = simulate(net, normal, trace).network_blocking
        assert blocked_cheap > blocked_normal

    def test_price_tables_cover_all_links(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 50.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        policy = OttKrishnanRouting(quad_network, quad_table, loads)
        assert len(policy.price_tables) == quad_network.num_links
        for link in quad_network.links:
            assert policy.price_tables[link.index].shape == (link.capacity + 1,)

    def test_spreads_to_alternates_under_imbalance(self):
        # Saturate one pair's direct link while the rest of the triangle is
        # idle: the shadow prices should divert some calls via the relay.
        net = fully_connected(3, 5)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 1): 12.0}, num_nodes=3)
        loads = primary_link_loads(net, table, traffic)
        policy = OttKrishnanRouting(net, table, loads)
        trace = generate_trace(traffic, 60.0, 2)
        result = simulate(net, policy, trace)
        assert result.alternate_carried > 0
