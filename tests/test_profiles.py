"""Tests for time-varying load profiles and nonstationary traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.profiles import LoadProfile, generate_nonstationary_trace


class TestLoadProfile:
    def test_constant(self):
        profile = LoadProfile.constant(1.5)
        assert profile.scale_at(0.0) == 1.5
        assert profile.scale_at(1e9) == 1.5
        assert profile.max_scale == 1.5

    def test_step(self):
        profile = LoadProfile.step(at=10.0, before=0.5, after=2.0)
        assert profile.scale_at(9.999) == 0.5
        assert profile.scale_at(10.0) == 2.0
        assert profile.max_scale == 2.0

    def test_day_night(self):
        profile = LoadProfile.day_night(period=20.0, day_scale=1.0, night_scale=0.2, horizon=50.0)
        assert profile.scale_at(5.0) == 1.0    # first half-period: day
        assert profile.scale_at(15.0) == 0.2   # night
        assert profile.scale_at(25.0) == 1.0   # day again
        assert profile.scale_at(35.0) == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadProfile(breakpoints=(1.0,), scales=(1.0,))
        with pytest.raises(ValueError):
            LoadProfile(breakpoints=(), scales=(-0.1,))
        with pytest.raises(ValueError):
            LoadProfile(breakpoints=(2.0, 1.0), scales=(1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            LoadProfile.day_night(period=0.0, day_scale=1, night_scale=1, horizon=10)

    def test_rejects_non_finite_values(self):
        # Regression: NaN/inf used to slip through and poison max_scale,
        # turning the thinning acceptance test into silent nonsense.
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError):
                LoadProfile(breakpoints=(), scales=(bad,))
            with pytest.raises(ValueError):
                LoadProfile(breakpoints=(bad,), scales=(1.0, 1.0))

    def test_scales_at_vectorized_matches_scalar(self):
        profile = LoadProfile(breakpoints=(10.0, 20.0), scales=(0.5, 2.0, 1.0))
        times = np.array([0.0, 9.999, 10.0, 15.0, 20.0, 99.0])
        expected = [profile.scale_at(t) for t in times]
        assert np.array_equal(profile.scales_at(times), expected)

    def test_pulse_and_multiply(self):
        pulse = LoadProfile.pulse(start=5.0, end=15.0, scale=3.0)
        assert pulse.scale_at(4.9) == 1.0
        assert pulse.scale_at(5.0) == 3.0
        assert pulse.scale_at(15.0) == 1.0
        product = pulse.multiply(LoadProfile.step(at=10.0, before=1.0, after=0.5))
        assert product.scale_at(7.0) == 3.0
        assert product.scale_at(12.0) == 1.5
        assert product.scale_at(20.0) == 0.5


class TestNonstationaryTrace:
    @pytest.fixture()
    def traffic(self):
        return TrafficMatrix({(0, 1): 50.0}, num_nodes=2)

    def test_constant_profile_matches_stationary_statistics(self, traffic):
        profile = LoadProfile.constant(1.0)
        trace = generate_nonstationary_trace(traffic, profile, 100.0, seed=0)
        # 50 E * 100 units: ~5000 calls.
        assert abs(trace.num_calls - 5000) < 4 * np.sqrt(5000)

    def test_step_profile_shifts_mass(self, traffic):
        profile = LoadProfile.step(at=50.0, before=0.2, after=1.8)
        trace = generate_nonstationary_trace(traffic, profile, 100.0, seed=1)
        before = int(np.count_nonzero(trace.times < 50.0))
        after = trace.num_calls - before
        # Rates 10 vs 90 per unit: the ratio should be ~9.
        assert after / max(before, 1) > 5.0

    def test_deterministic(self, traffic):
        profile = LoadProfile.step(at=30.0, before=1.0, after=0.5)
        a = generate_nonstationary_trace(traffic, profile, 60.0, seed=3)
        b = generate_nonstationary_trace(traffic, profile, 60.0, seed=3)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.od_index, b.od_index)

    def test_sorted_and_bounded(self, traffic):
        profile = LoadProfile.day_night(20.0, 1.0, 0.1, 80.0)
        trace = generate_nonstationary_trace(traffic, profile, 80.0, seed=2)
        assert (np.diff(trace.times) >= 0).all()
        assert trace.times.size == 0 or trace.times[-1] <= 80.0

    def test_zero_profile_empty(self, traffic):
        profile = LoadProfile.constant(0.0)
        trace = generate_nonstationary_trace(traffic, profile, 10.0, seed=0)
        assert trace.num_calls == 0

    def test_invalid_duration(self, traffic):
        with pytest.raises(ValueError):
            generate_nonstationary_trace(traffic, LoadProfile.constant(), 0.0, 0)

    def test_per_segment_empirical_rate_matches_profile(self, traffic):
        # Thinning must realize the *local* rate, not just the average:
        # each piecewise-constant segment's arrival count should sit near
        # demand * scale * segment length.
        profile = LoadProfile(breakpoints=(40.0, 80.0), scales=(0.4, 1.6, 0.8))
        trace = generate_nonstationary_trace(traffic, profile, 120.0, seed=7)
        edges = (0.0, 40.0, 80.0, 120.0)
        for (t0, t1), scale in zip(zip(edges, edges[1:]), profile.scales):
            count = int(np.count_nonzero((trace.times >= t0) & (trace.times < t1)))
            expected = 50.0 * scale * (t1 - t0)
            assert abs(count - expected) < 4 * np.sqrt(expected)

    def test_substream_independent_of_stationary_generator(self, traffic):
        # The nonstationary generator draws from its own named substream:
        # a constant profile reproduces stationary *statistics* but must
        # not collide with (or silently depend on) the stationary
        # generator's stream for the same seed.
        from repro.sim.trace import generate_trace

        profile = LoadProfile.constant(1.0)
        nonstat = generate_nonstationary_trace(traffic, profile, 50.0, seed=5)
        stat = generate_trace(traffic, 50.0, seed=5)
        assert not np.array_equal(nonstat.times, stat.times)
        # ...while the nonstationary stream itself is reproducible.
        again = generate_nonstationary_trace(traffic, profile, 50.0, seed=5)
        assert np.array_equal(nonstat.times, again.times)
        assert np.array_equal(nonstat.holding_times, again.holding_times)
