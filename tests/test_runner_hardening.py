"""Tests for the hardened replication runner: timeouts, retries, fallback."""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.experiments.runner import (
    ReplicationConfig,
    run_replications,
    run_replications_detailed,
    _replication_worker,
)
from repro.routing.single_path import SinglePathRouting
from repro.topology.generators import line
from repro.topology.paths import build_path_table
from repro.traffic.matrix import TrafficMatrix

CONFIG = ReplicationConfig(measured_duration=15.0, warmup=5.0, seeds=(0, 1, 2))


def _fixture():
    network = line(3, 10)
    policy = SinglePathRouting(network, build_path_table(network))
    traffic = TrafficMatrix({(0, 2): 3.0, (2, 0): 3.0})
    return network, policy, traffic


def _sentinel(seed: int) -> Path:
    return Path(os.environ["REPRO_FLAKY_DIR"]) / f"seed-{seed}"


def _flaky_worker(payload):
    """Crash each seed's first attempt (file sentinel), succeed after."""
    seed = payload[-1]
    sentinel = _sentinel(seed)
    if not sentinel.exists():
        sentinel.touch()
        raise RuntimeError("injected first-attempt failure")
    return _replication_worker(payload)


def _always_failing_worker(payload):
    raise RuntimeError("injected permanent failure")


def _hang_then_fast_worker(payload):
    """Hang seed 1's first attempt long enough to trip the seed timeout."""
    seed = payload[-1]
    if seed == 1:
        sentinel = _sentinel(seed)
        if not sentinel.exists():
            sentinel.touch()
            time.sleep(6.0)
    return _replication_worker(payload)


def _pool_killing_worker(payload):
    """Die hard in a pool worker (breaks the pool); compute fine in-process."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return _replication_worker(payload)


class TestHardenedRunner:
    def test_parallel_matches_serial(self):
        network, policy, traffic = _fixture()
        serial_stat, serial_results = run_replications(
            network, policy, traffic, CONFIG
        )
        parallel_stat, parallel_results = run_replications(
            network, policy, traffic, CONFIG, parallel=True, max_workers=2
        )
        assert parallel_stat == serial_stat
        assert [r.total_blocked for r in parallel_results] == [
            r.total_blocked for r in serial_results
        ]

    def test_crashed_seed_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLAKY_DIR", str(tmp_path))
        network, policy, traffic = _fixture()
        outcome = run_replications_detailed(
            network, policy, traffic, CONFIG,
            parallel=True, max_workers=2,
            max_seed_retries=1, worker=_flaky_worker,
        )
        assert outcome.all_completed
        assert len(outcome.results) == len(CONFIG.seeds)
        assert all(s.attempts == 2 for s in outcome.statuses)
        assert all("injected" in s.errors[0] for s in outcome.statuses)
        reference, __ = run_replications(network, policy, traffic, CONFIG)
        assert outcome.stat == reference

    def test_timed_out_seed_retried_and_sweep_completes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLAKY_DIR", str(tmp_path))
        network, policy, traffic = _fixture()
        outcome = run_replications_detailed(
            network, policy, traffic, CONFIG,
            parallel=True, max_workers=2,
            seed_timeout=1.5, max_seed_retries=1, worker=_hang_then_fast_worker,
        )
        assert outcome.all_completed
        hung = next(s for s in outcome.statuses if s.seed == 1)
        assert hung.timeouts == 1
        assert hung.attempts == 2
        assert "timeout" in hung.errors[0]
        reference, __ = run_replications(network, policy, traffic, CONFIG)
        assert outcome.stat == reference

    def test_exhausted_seed_reported_not_fatal(self):
        network, policy, traffic = _fixture()
        outcome = run_replications_detailed(
            network, policy, traffic,
            ReplicationConfig(measured_duration=15.0, warmup=5.0, seeds=(0, 1)),
            parallel=True, max_workers=2,
            max_seed_retries=0, worker=_half_failing_worker,
        )
        assert outcome.failed_seeds == (1,)
        assert len(outcome.results) == 1
        assert "FAILED" in outcome.describe()

    def test_all_seeds_failing_raises(self):
        network, policy, traffic = _fixture()
        with pytest.raises(RuntimeError, match="every replication seed failed"):
            run_replications_detailed(
                network, policy, traffic, CONFIG,
                parallel=True, max_workers=2,
                max_seed_retries=0, worker=_always_failing_worker,
            )

    def test_broken_pool_falls_back_to_serial(self):
        network, policy, traffic = _fixture()
        outcome = run_replications_detailed(
            network, policy, traffic, CONFIG,
            parallel=True, max_workers=2,
            max_seed_retries=1, worker=_pool_killing_worker,
        )
        assert outcome.pool_broken
        assert outcome.all_completed
        assert any(s.fallback for s in outcome.statuses)
        reference, __ = run_replications(network, policy, traffic, CONFIG)
        assert outcome.stat == reference


def _half_failing_worker(payload):
    """Fail odd seeds permanently, run even seeds normally."""
    seed = payload[-1]
    if seed % 2:
        raise RuntimeError("odd seeds always fail")
    return _replication_worker(payload)
