"""Tests for the multirate extension (Kaufman-Roberts + multi-class simulation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.erlang import erlang_b
from repro.core.multirate import (
    TrafficClass,
    kaufman_roberts_distribution,
    multirate_blocking,
    multirate_protection_level,
)
from repro.core.protection import min_protection_level
from repro.routing.alternate import ControlledAlternateRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_multiclass_trace
from repro.topology.generators import fully_connected, line
from repro.topology.paths import build_path_table
from repro.traffic.demand import multiclass_unit_loads
from repro.traffic.matrix import TrafficMatrix


class TestTrafficClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficClass("x", -1.0, 1)
        with pytest.raises(ValueError):
            TrafficClass("x", 1.0, 0)


class TestKaufmanRoberts:
    def test_single_unit_class_reduces_to_erlang(self):
        for load in (2.0, 9.0, 25.0):
            for capacity in (1, 10, 40):
                classes = [TrafficClass("a", load, 1)]
                q = kaufman_roberts_distribution(classes, capacity)
                assert q[capacity] == pytest.approx(erlang_b(load, capacity), rel=1e-9)

    def test_distribution_normalizes(self):
        classes = [TrafficClass("a", 5.0, 1), TrafficClass("b", 2.0, 3)]
        q = kaufman_roberts_distribution(classes, 20)
        assert q.sum() == pytest.approx(1.0)
        assert (q >= 0).all()

    def test_unreachable_occupancies_have_zero_mass(self):
        # Only bandwidth-2 calls: odd occupancies are unreachable.
        classes = [TrafficClass("two", 4.0, 2)]
        q = kaufman_roberts_distribution(classes, 10)
        assert (q[1::2] == 0.0).all()
        assert q[0::2].sum() == pytest.approx(1.0)

    def test_wider_calls_block_more(self):
        classes = [TrafficClass("thin", 6.0, 1), TrafficClass("wide", 2.0, 5)]
        blocking = multirate_blocking(classes, 20)
        assert blocking["wide"] > blocking["thin"]

    def test_class_wider_than_link_always_blocks(self):
        classes = [TrafficClass("huge", 1.0, 30)]
        blocking = multirate_blocking(classes, 20)
        assert blocking["huge"] == 1.0

    def test_matches_brute_force_two_class(self):
        # Brute-force the stationary distribution of the two-class CTMC and
        # compare per-class blocking.
        import itertools

        cap, l1, l2, b2 = 6, 2.0, 1.0, 2
        states = [
            (n1, n2)
            for n1 in range(cap + 1)
            for n2 in range(cap + 1)
            if n1 + b2 * n2 <= cap
        ]
        index = {s: i for i, s in enumerate(states)}
        rates = np.zeros((len(states), len(states)))
        for (n1, n2), i in index.items():
            if n1 + 1 + b2 * n2 <= cap:
                rates[i, index[(n1 + 1, n2)]] += l1
            if n1 + b2 * (n2 + 1) <= cap:
                rates[i, index[(n1, n2 + 1)]] += l2
            if n1 > 0:
                rates[i, index[(n1 - 1, n2)]] += n1
            if n2 > 0:
                rates[i, index[(n1, n2 - 1)]] += n2
        generator = rates - np.diag(rates.sum(axis=1))
        # Solve pi Q = 0 with normalization.
        a = np.vstack([generator.T, np.ones(len(states))])
        b = np.zeros(len(states) + 1)
        b[-1] = 1.0
        pi, *__ = np.linalg.lstsq(a, b, rcond=None)
        block1 = sum(p for (n1, n2), p in zip(states, pi) if n1 + 1 + b2 * n2 > cap)
        block2 = sum(p for (n1, n2), p in zip(states, pi) if n1 + b2 * (n2 + 1) > cap)
        kr = multirate_blocking(
            [TrafficClass("one", l1, 1), TrafficClass("two", l2, b2)], cap
        )
        assert kr["one"] == pytest.approx(block1, abs=1e-9)
        assert kr["two"] == pytest.approx(block2, abs=1e-9)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            kaufman_roberts_distribution([TrafficClass("a", 1.0, 1)], -1)


class TestMultirateProtection:
    def test_reduces_to_equation_15_for_unit_calls(self):
        assert multirate_protection_level(74.0, 100, 6, 1) == min_protection_level(
            74.0, 100, 6
        )

    def test_wider_alternates_need_more_protection(self):
        r1 = multirate_protection_level(70.0, 100, 4, 1)
        r4 = multirate_protection_level(70.0, 100, 4, 4)
        assert r4 >= r1

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            multirate_protection_level(10.0, 100, 4, 0)


class TestMulticlassTrace:
    def test_deterministic(self):
        classes = [
            ("a", TrafficMatrix({(0, 1): 5.0}, num_nodes=2), 1),
            ("b", TrafficMatrix({(1, 0): 3.0}, num_nodes=2), 2),
        ]
        x = generate_multiclass_trace(classes, 30.0, 4)
        y = generate_multiclass_trace(classes, 30.0, 4)
        assert np.array_equal(x.times, y.times)
        assert np.array_equal(x.bandwidths, y.bandwidths)

    def test_sorted_and_marked(self):
        classes = [
            ("a", TrafficMatrix({(0, 1): 5.0}, num_nodes=2), 1),
            ("b", TrafficMatrix({(0, 1): 3.0}, num_nodes=2), 4),
        ]
        trace = generate_multiclass_trace(classes, 50.0, 0)
        assert trace.is_multiclass
        assert (np.diff(trace.times) >= 0).all()
        assert set(np.unique(trace.bandwidths)) <= {1, 4}
        # Bandwidth must agree with the class mark everywhere.
        widths = np.where(trace.class_index == 0, 1, 4)
        assert np.array_equal(trace.bandwidths, widths)

    def test_class_counts(self):
        classes = [
            ("a", TrafficMatrix({(0, 1): 30.0}, num_nodes=2), 1),
            ("b", TrafficMatrix({(0, 1): 10.0}, num_nodes=2), 2),
        ]
        trace = generate_multiclass_trace(classes, 100.0, 1)
        assert trace.calls_for_class("a") + trace.calls_for_class("b") == trace.num_calls
        share = trace.calls_for_class("a") / trace.num_calls
        assert share == pytest.approx(0.75, abs=0.04)
        assert trace.calls_for_class("missing") == 0

    def test_validation(self):
        matrix = TrafficMatrix({(0, 1): 1.0}, num_nodes=2)
        with pytest.raises(ValueError):
            generate_multiclass_trace([], 10.0, 0)
        with pytest.raises(ValueError):
            generate_multiclass_trace([("a", matrix, 1), ("a", matrix, 2)], 10.0, 0)
        with pytest.raises(ValueError):
            generate_multiclass_trace([("a", matrix, 0)], 10.0, 0)


class TestMulticlassSimulation:
    def test_single_link_matches_kaufman_roberts(self):
        net = line(2, 20)
        table = build_path_table(net)
        classes = [
            ("audio", TrafficMatrix({(0, 1): 8.0}, num_nodes=2), 1),
            ("video", TrafficMatrix({(0, 1): 2.0}, num_nodes=2), 4),
        ]
        policy = SinglePathRouting(net, table)
        per_class = {"audio": [], "video": []}
        for seed in range(6):
            trace = generate_multiclass_trace(classes, 310.0, seed)
            result = simulate(net, policy, trace, warmup=10.0)
            for name, value in result.class_blocking().items():
                per_class[name].append(value)
        expected = multirate_blocking(
            [TrafficClass("audio", 8.0, 1), TrafficClass("video", 2.0, 4)], 20
        )
        assert np.mean(per_class["audio"]) == pytest.approx(expected["audio"], rel=0.25)
        assert np.mean(per_class["video"]) == pytest.approx(expected["video"], rel=0.25)

    def test_wide_call_books_and_releases_full_width(self):
        # Capacity 4; a bandwidth-3 call plus a bandwidth-2 call cannot
        # coexist, but sequential calls must both fit after release.
        net = line(2, 4)
        table = build_path_table(net)
        classes = [("wide", TrafficMatrix({(0, 1): 3.0}, num_nodes=2), 3)]
        policy = SinglePathRouting(net, table)
        trace = generate_multiclass_trace(classes, 200.0, 2)
        result = simulate(net, policy, trace, warmup=10.0)
        # Only one wide call fits at a time: an M/M/1/1 loss system.
        assert result.network_blocking == pytest.approx(3.0 / 4.0, abs=0.05)

    def test_controlled_policy_with_multirate_protection(self):
        net = fully_connected(3, 12)
        table = build_path_table(net)
        classes = [
            ("thin", TrafficMatrix({(0, 1): 6.0, (0, 2): 3.0, (2, 1): 3.0}, num_nodes=3), 1),
            ("wide", TrafficMatrix({(0, 1): 1.5}, num_nodes=3), 3),
        ]
        unit_loads = multiclass_unit_loads(net, table, classes)
        levels = np.array(
            [
                multirate_protection_level(unit_loads[l.index], l.capacity, 2, 3)
                for l in net.links
            ],
            dtype=np.int64,
        )
        policy = ControlledAlternateRouting(
            net, table, unit_loads, protection_override=levels
        )
        single = SinglePathRouting(net, table)
        diffs = []
        for seed in range(4):
            trace = generate_multiclass_trace(classes, 110.0, seed)
            ctl = simulate(net, policy, trace, warmup=10.0)
            sp = simulate(net, single, trace, warmup=10.0)
            diffs.append(sp.network_blocking - ctl.network_blocking)
        # The guarantee, multirate flavour: controlled >= single-path.
        assert np.mean(diffs) > -0.01

    def test_unit_loads_helper(self):
        net = line(3, 10)
        table = build_path_table(net)
        classes = [
            ("a", TrafficMatrix({(0, 2): 2.0}), 1),
            ("b", TrafficMatrix({(0, 1): 1.0}), 5),
        ]
        loads = multiclass_unit_loads(net, table, classes)
        first = [l.index for l in net.links if l.endpoints == (0, 1)][0]
        second = [l.index for l in net.links if l.endpoints == (1, 2)][0]
        assert loads[first] == pytest.approx(2.0 + 5.0)
        assert loads[second] == pytest.approx(2.0)
