"""Tests for the call-by-call loss-network simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.erlang import erlang_b
from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import LossNetworkSimulator, simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import fully_connected, line
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix


def single_link_network(capacity: int):
    net = line(2, capacity)
    return net, build_path_table(net)


class TestAgainstErlangB:
    def test_single_link_blocking_matches_erlang(self):
        # An isolated link offered Poisson traffic is an M/M/C/C queue; the
        # simulated blocking must match Erlang-B within sampling error.
        capacity, load = 10, 8.0
        net, table = single_link_network(capacity)
        traffic = TrafficMatrix({(0, 1): load}, num_nodes=2)
        policy = SinglePathRouting(net, table)
        values = []
        for seed in range(8):
            trace = generate_trace(traffic, 510.0, seed)
            values.append(simulate(net, policy, trace, warmup=10.0).network_blocking)
        expected = erlang_b(load, capacity)
        assert np.mean(values) == pytest.approx(expected, rel=0.12)

    def test_light_load_rarely_blocks(self):
        net, table = single_link_network(20)
        traffic = TrafficMatrix({(0, 1): 2.0}, num_nodes=2)
        trace = generate_trace(traffic, 110.0, 0)
        result = simulate(net, SinglePathRouting(net, table), trace)
        assert result.network_blocking < 1e-3


class TestAccounting:
    def test_offered_splits_into_carried_and_blocked(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 90.0)
        policy = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 30.0, 1)
        result = simulate(quad_network, policy, trace, warmup=5.0)
        carried = result.primary_carried + result.alternate_carried
        assert carried + result.total_blocked == result.total_offered

    def test_offered_counts_only_after_warmup(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 50.0)
        trace = generate_trace(traffic, 30.0, 2)
        policy = SinglePathRouting(quad_network, quad_table)
        result = simulate(quad_network, policy, trace, warmup=5.0)
        expected = int(np.count_nonzero(trace.times >= 5.0))
        assert result.total_offered == expected

    def test_single_path_never_uses_alternates(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        trace = generate_trace(traffic, 30.0, 3)
        result = simulate(quad_network, SinglePathRouting(quad_network, quad_table), trace)
        assert result.alternate_carried == 0

    def test_disconnected_pair_blocks_everything(self):
        net = line(3, 5)
        net.fail_duplex_link(1, 2)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 2): 4.0, (0, 1): 1.0})
        trace = generate_trace(traffic, 60.0, 0)
        result = simulate(net, SinglePathRouting(net, table), trace)
        blocking = result.pair_blocking()
        assert blocking[(0, 2)] == 1.0
        assert blocking[(0, 1)] < 0.2


class TestPolicyEquivalences:
    def test_full_protection_equals_single_path_pathwise(self, quad_network, quad_table):
        # With r = C on every link no alternate is ever admitted, so the
        # controlled scheme must reproduce single-path decisions *exactly*.
        traffic = uniform_traffic(4, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        full = np.array([l.capacity for l in quad_network.links], dtype=np.int64)
        controlled = ControlledAlternateRouting(
            quad_network, quad_table, loads, protection_override=full
        )
        single = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 40.0, 5)
        a = simulate(quad_network, controlled, trace)
        b = simulate(quad_network, single, trace)
        assert np.array_equal(a.blocked, b.blocked)
        assert a.alternate_carried == 0

    def test_zero_protection_equals_uncontrolled_pathwise(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        zero = np.zeros(quad_network.num_links, dtype=np.int64)
        controlled = ControlledAlternateRouting(
            quad_network, quad_table, loads, protection_override=zero
        )
        uncontrolled = UncontrolledAlternateRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 40.0, 6)
        a = simulate(quad_network, controlled, trace)
        b = simulate(quad_network, uncontrolled, trace)
        assert np.array_equal(a.blocked, b.blocked)
        assert a.alternate_carried == b.alternate_carried

    def test_all_policies_identical_without_alternate_paths(self):
        net = line(4, 8)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 3): 6.0, (3, 0): 6.0, (1, 2): 3.0})
        loads = primary_link_loads(net, table, traffic)
        trace = generate_trace(traffic, 60.0, 7)
        results = [
            simulate(net, policy, trace)
            for policy in (
                SinglePathRouting(net, table),
                UncontrolledAlternateRouting(net, table),
                ControlledAlternateRouting(net, table, loads),
            )
        ]
        assert np.array_equal(results[0].blocked, results[1].blocked)
        assert np.array_equal(results[0].blocked, results[2].blocked)


class TestStateProtectionMechanics:
    def test_alternate_admission_respects_threshold(self):
        # Triangle: pair (0,1) has direct capacity 1 and one 2-hop alternate
        # through node 2.  Set the relay links' protection so alternates are
        # admitted only when the relay is empty; saturate the relay with its
        # own primary traffic and check no alternate ever lands on it.
        net = fully_connected(3, 1)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 1): 30.0, (0, 2): 30.0, (2, 1): 30.0})
        loads = primary_link_loads(net, table, traffic)
        override = np.ones(net.num_links, dtype=np.int64)  # r = 1 = C everywhere
        controlled = ControlledAlternateRouting(
            net, table, loads, protection_override=override
        )
        trace = generate_trace(traffic, 30.0, 8)
        result = simulate(net, controlled, trace)
        assert result.alternate_carried == 0

    def test_uncontrolled_uses_alternates_under_stress(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 95.0)
        trace = generate_trace(traffic, 30.0, 9)
        result = simulate(
            quad_network, UncontrolledAlternateRouting(quad_network, quad_table), trace
        )
        assert result.alternate_carried > 0


class TestValidation:
    def test_bad_warmup_rejected(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        trace = generate_trace(traffic, 20.0, 0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            LossNetworkSimulator(quad_network, policy, trace, warmup=25.0)
        with pytest.raises(ValueError):
            LossNetworkSimulator(quad_network, policy, trace, warmup=-1.0)

    def test_policy_network_mismatch_rejected(self, quad_table, quad_network):
        other = line(2, 5)
        traffic = uniform_traffic(4, 10.0)
        trace = generate_trace(traffic, 20.0, 0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            LossNetworkSimulator(other, policy, trace)


class TestLinkStatistics:
    def test_mean_occupancy_matches_carried_load(self):
        # M/M/C/C: time-averaged occupancy = a * (1 - B).
        from repro.core.erlang import erlang_b

        capacity, load = 10, 8.0
        net, table = single_link_network(capacity)
        traffic = TrafficMatrix({(0, 1): load}, num_nodes=2)
        policy = SinglePathRouting(net, table)
        values = []
        for seed in range(6):
            simulator = LossNetworkSimulator(
                net, policy, generate_trace(traffic, 210.0, seed), 10.0,
                collect_link_stats=True,
            )
            simulator.run()
            values.append(simulator.mean_link_occupancy[0])
        expected = load * (1 - erlang_b(load, capacity))
        assert np.mean(values) == pytest.approx(expected, rel=0.05)

    def test_disabled_by_default(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 50.0)
        simulator = LossNetworkSimulator(
            quad_network,
            SinglePathRouting(quad_network, quad_table),
            generate_trace(traffic, 20.0, 0),
            5.0,
        )
        simulator.run()
        assert simulator.mean_link_occupancy is None

    def test_occupancy_bounded_by_capacity(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 120.0)
        simulator = LossNetworkSimulator(
            quad_network,
            UncontrolledAlternateRouting(quad_network, quad_table),
            generate_trace(traffic, 30.0, 1),
            5.0,
            collect_link_stats=True,
        )
        simulator.run()
        assert (simulator.mean_link_occupancy <= 100.0).all()
        assert (simulator.mean_link_occupancy >= 0.0).all()

    def test_idle_network_zero_occupancy(self, quad_network, quad_table):
        traffic = TrafficMatrix(np.zeros((4, 4)))
        simulator = LossNetworkSimulator(
            quad_network,
            SinglePathRouting(quad_network, quad_table),
            generate_trace(uniform_traffic(4, 0.001), 20.0, 0),
            5.0,
            collect_link_stats=True,
        )
        simulator.run()
        assert simulator.mean_link_occupancy.max() < 1.0


class TestWarmStart:
    def test_validation(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 10.0)
        trace = generate_trace(traffic, 20.0, 0)
        policy = SinglePathRouting(quad_network, quad_table)
        with pytest.raises(ValueError):
            LossNetworkSimulator(
                quad_network, policy, trace, 5.0, initial_occupancy=np.array([1, 2])
            )
        with pytest.raises(ValueError):
            LossNetworkSimulator(
                quad_network, policy, trace, 5.0,
                initial_occupancy=np.full(quad_network.num_links, 101),
            )

    def test_stationary_start_removes_idle_bias(self):
        # Warm-starting each link at its stationary mean occupancy makes a
        # zero-warm-up measurement unbiased (idle starts run low).
        capacity, load = 10, 8.0
        net, table = single_link_network(capacity)
        traffic = TrafficMatrix({(0, 1): load}, num_nodes=2)
        policy = SinglePathRouting(net, table)
        occ0 = np.array([round(load * (1 - erlang_b(load, capacity)))] * net.num_links)
        idle, warm = [], []
        for seed in range(8):
            trace = generate_trace(traffic, 40.0, seed)
            idle.append(
                LossNetworkSimulator(net, policy, trace, 0.0).run().network_blocking
            )
            warm.append(
                LossNetworkSimulator(
                    net, policy, trace, 0.0, initial_occupancy=occ0
                ).run().network_blocking
            )
        theory = erlang_b(load, capacity)
        assert abs(np.mean(warm) - theory) < abs(np.mean(idle) - theory)

    def test_prefill_calls_eventually_depart(self, quad_network, quad_table):
        # Warm-start circuits drain: with no offered traffic after the
        # prefill, a late probe call sails through.
        traffic = TrafficMatrix({(0, 1): 0.01}, num_nodes=4)
        trace = generate_trace(traffic, 200.0, 3)
        policy = SinglePathRouting(quad_network, quad_table)
        full = quad_network.capacities()
        sim = LossNetworkSimulator(
            quad_network, policy, trace, warmup=50.0, initial_occupancy=full
        )
        result = sim.run()
        # Holding times are exp(1): after 50 units every prefill call is gone.
        assert result.network_blocking == 0.0

    def test_deterministic_given_seed(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 90.0)
        occ0 = np.full(quad_network.num_links, 50, dtype=np.int64)
        policy = SinglePathRouting(quad_network, quad_table)
        results = []
        for __ in range(2):
            trace = generate_trace(traffic, 20.0, 4)
            sim = LossNetworkSimulator(
                quad_network, policy, trace, 5.0, initial_occupancy=occ0
            )
            results.append(sim.run())
        assert np.array_equal(results[0].blocked, results[1].blocked)
