"""Tests for the Section-4.2.2 prose-experiment functions."""

from __future__ import annotations

import pytest

from repro.experiments.prose import (
    PAPER_FAILURE_SCENARIOS,
    fairness_comparison,
    link_failure_comparison,
    minloss_comparison,
)
from repro.experiments.runner import ReplicationConfig

TINY = ReplicationConfig(measured_duration=8.0, warmup=2.0, seeds=(0, 1))


class TestScenarios:
    def test_paper_scenarios(self):
        names = [s.name for s in PAPER_FAILURE_SCENARIOS]
        assert names == ["intact", "fail 2<->3", "fail 7<->9"]
        assert PAPER_FAILURE_SCENARIOS[0].duplex_links == ()


class TestLinkFailureComparison:
    @pytest.fixture(scope="class")
    def outcome(self):
        return link_failure_comparison(TINY)

    def test_all_scenarios_present(self, outcome):
        assert set(outcome) == {"intact", "fail 2<->3", "fail 7<->9"}

    def test_all_policies_present(self, outcome):
        for stats in outcome.values():
            assert set(stats) == {"single-path", "uncontrolled", "controlled"}

    def test_failures_do_not_reduce_single_path_blocking(self, outcome):
        intact = outcome["intact"]["single-path"].mean
        for name in ("fail 2<->3", "fail 7<->9"):
            assert outcome[name]["single-path"].mean >= intact - 0.02


class TestFairnessComparison:
    def test_reports_structure(self):
        reports = fairness_comparison(TINY)
        assert set(reports) == {"single-path", "uncontrolled", "controlled"}
        for report in reports.values():
            assert report.pairs > 100  # nearly all 132 pairs offered calls
            assert 0.0 <= report.mean <= 1.0


class TestMinlossComparison:
    def test_structure_and_claims(self):
        stats, solution = minloss_comparison(TINY, max_iterations=30)
        assert set(stats) == {
            "single/min-hop", "single/min-loss",
            "controlled/min-hop", "controlled/min-loss",
        }
        assert solution.bifurcated_pairs() > 0
        assert solution.objective > 0


class TestGeneralMeshComparison:
    def test_structure_and_guarantee(self):
        from repro.experiments.generalization import (
            STANDARD_MESH_CASES,
            general_mesh_comparison,
        )

        assert [case.name for case in STANDARD_MESH_CASES] == [
            "torus-3x3", "waxman-10", "random-8+6",
        ]
        outcome = general_mesh_comparison(TINY)
        assert set(outcome) == {case.name for case in STANDARD_MESH_CASES}
        for name, stats in outcome.items():
            assert stats["controlled"].mean <= stats["single-path"].mean + 0.03, name

    def test_traffic_is_skewed_gravity(self):
        from repro.experiments.generalization import STANDARD_MESH_CASES

        case = STANDARD_MESH_CASES[0]
        traffic = case.traffic()
        assert traffic.total == pytest.approx(case.total_erlangs)
        values = [v for __, v in traffic.positive_pairs()]
        assert max(values) / min(values) > 3.0


class TestForecastRobustness:
    def test_perturbation_preserves_expected_total(self):
        import numpy as np

        from repro.experiments.robustness import perturbed_traffic
        from repro.traffic.generators import uniform_traffic

        nominal = uniform_traffic(6, 10.0)
        totals = [
            perturbed_traffic(nominal, 0.5, seed).total for seed in range(200)
        ]
        # Mean-one factors: the expected total matches the nominal.
        assert np.mean(totals) == pytest.approx(nominal.total, rel=0.03)

    def test_zero_sigma_is_identity(self):
        from repro.experiments.robustness import perturbed_traffic
        from repro.traffic.generators import uniform_traffic

        nominal = uniform_traffic(4, 5.0)
        assert perturbed_traffic(nominal, 0.0, 1) is nominal

    def test_negative_sigma_rejected(self):
        from repro.experiments.robustness import perturbed_traffic
        from repro.traffic.generators import uniform_traffic

        with pytest.raises(ValueError):
            perturbed_traffic(uniform_traffic(4, 5.0), -0.1, 0)

    def test_sweep_structure(self):
        from repro.experiments.robustness import forecast_error_sweep
        from repro.topology.generators import quadrangle
        from repro.topology.paths import build_path_table
        from repro.traffic.generators import uniform_traffic

        net = quadrangle(100)
        table = build_path_table(net)
        outcome = forecast_error_sweep(
            net, table, uniform_traffic(4, 90.0), sigmas=(0.0, 0.5), config=TINY
        )
        assert set(outcome) == {0.0, 0.5}
        for stats in outcome.values():
            assert set(stats) == {"single-path", "uncontrolled", "controlled"}
