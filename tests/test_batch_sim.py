"""Lockstep batch kernel vs the per-seed loops: bit-identity and plumbing.

The batch simulator's contract is exact: for every seed the per-pair
offered/blocked counters, the carried splits and every derived statistic
must match ``backend="reference"`` bit for bit — on stationary NSFNet
traffic, on adversarial workload traces, and for each supported routing
discipline (threshold, DAR, power-of-d).  The plumbing half covers the
``backend=`` redesign: fault planes fall back transparently, seed order
cannot matter, ``run_study`` surfaces a :class:`BatchResult`, and the lab
records the producing backend in provenance without disturbing job keys
(so batch-produced results keep serving later runs from cache).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import BatchResult, LabConfig, Scenario, StudyResult, run_study
from repro.experiments.runner import ReplicationConfig, run_replications_detailed
from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.dar import DynamicAlternateRouting, PowerOfDAlternateRouting
from repro.sim.batch import BatchSimulator, batch_ineligibility, simulate_batch
from repro.sim.faultplane import single_failure_timeline
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads

_COUNTERS = ("offered", "blocked", "primary_carried", "alternate_carried")


def _nsfnet():
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic()
    return network, table, traffic


def _assert_bit_identical(batch_result, scalar_result, label=""):
    for counter in _COUNTERS:
        assert np.array_equal(
            getattr(batch_result, counter), getattr(scalar_result, counter)
        ), f"{label}: {counter} diverged"
    assert batch_result.network_blocking == scalar_result.network_blocking
    assert batch_result.total_offered == scalar_result.total_offered


class TestBitIdentity:
    def test_nsfnet_nominal_matches_reference(self):
        network, table, traffic = _nsfnet()
        loads = primary_link_loads(network, table, traffic)
        policy = ControlledAlternateRouting(network, table, loads)
        traces = [generate_trace(traffic, 40.0, seed) for seed in range(4)]
        batch = simulate_batch(network, policy, traces, warmup=10.0)
        for trace, result in zip(traces, batch):
            ref = simulate(network, policy, trace, warmup=10.0,
                           backend="reference")
            _assert_bit_identical(result, ref, f"seed {trace.seed}")

    def test_uncontrolled_matches_reference(self):
        network, table, traffic = _nsfnet()
        policy = UncontrolledAlternateRouting(network, table)
        traces = [generate_trace(traffic, 30.0, seed) for seed in (2, 9)]
        batch = simulate_batch(network, policy, traces, warmup=10.0)
        for trace, result in zip(traces, batch):
            ref = simulate(network, policy, trace, warmup=10.0,
                           backend="reference")
            _assert_bit_identical(result, ref, f"seed {trace.seed}")

    def test_adversarial_workload_traces_match_reference(self):
        scenario = Scenario(topology="nsfnet", traffic="nominal",
                            policy="controlled", workload="adversarial:7")
        policy = scenario.build_policy("controlled")
        traces = [scenario.make_trace(30.0, seed) for seed in range(3)]
        batch = simulate_batch(scenario.network, policy, traces, warmup=10.0)
        for trace, result in zip(traces, batch):
            ref = simulate(scenario.network, policy, trace, warmup=10.0,
                           backend="reference")
            _assert_bit_identical(result, ref, f"seed {trace.seed}")

    def test_single_seed_backend_batch_matches_fast(self):
        network, table, traffic = _nsfnet()
        loads = primary_link_loads(network, table, traffic)
        policy = ControlledAlternateRouting(network, table, loads)
        trace = generate_trace(traffic, 30.0, 5)
        via_batch = simulate(network, policy, trace, warmup=10.0,
                             backend="batch")
        via_fast = simulate(network, policy, trace, warmup=10.0,
                            backend="fast")
        _assert_bit_identical(via_batch, via_fast)

    def test_seed_order_invariance(self):
        network, table, traffic = _nsfnet()
        loads = primary_link_loads(network, table, traffic)
        policy = ControlledAlternateRouting(network, table, loads)
        traces = [generate_trace(traffic, 30.0, seed) for seed in range(4)]
        forward = simulate_batch(network, policy, traces, warmup=10.0)
        backward = simulate_batch(network, policy, traces[::-1], warmup=10.0)
        for res_f, res_b in zip(forward, backward[::-1]):
            _assert_bit_identical(res_f, res_b, "order")


class TestRandomAlternateDisciplines:
    @pytest.mark.parametrize("reservation", [0, 2])
    def test_dar_matches_scalar_loop(self, reservation):
        network, table, traffic = _nsfnet()
        policy = DynamicAlternateRouting(
            network, table, trunk_reservation=reservation
        )
        traces = [generate_trace(traffic, 30.0, seed) for seed in range(3)]
        batch = simulate_batch(network, policy, traces, warmup=10.0)
        for trace, result in zip(traces, batch):
            ref = simulate(network, policy, trace, warmup=10.0,
                           backend="reference")
            _assert_bit_identical(result, ref, f"dar r={reservation}")

    def test_dar_theorem1_thresholds_match_scalar_loop(self):
        network, table, traffic = _nsfnet()
        loads = primary_link_loads(network, table, traffic)
        policy = DynamicAlternateRouting(network, table, primary_loads=loads)
        traces = [generate_trace(traffic, 30.0, seed) for seed in (1, 6)]
        batch = simulate_batch(network, policy, traces, warmup=10.0)
        for trace, result in zip(traces, batch):
            ref = simulate(network, policy, trace, warmup=10.0,
                           backend="reference")
            _assert_bit_identical(result, ref, "dar theorem1")

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_power_of_d_matches_scalar_loop(self, d):
        network, table, traffic = _nsfnet()
        policy = PowerOfDAlternateRouting(network, table, d=d)
        traces = [generate_trace(traffic, 30.0, seed) for seed in range(3)]
        batch = simulate_batch(network, policy, traces, warmup=10.0)
        for trace, result in zip(traces, batch):
            ref = simulate(network, policy, trace, warmup=10.0,
                           backend="reference")
            _assert_bit_identical(result, ref, f"power-of-{d}")


class TestFallbacks:
    def test_fault_timeline_falls_back_bit_identically(self):
        network, table, traffic = _nsfnet()
        loads = primary_link_loads(network, table, traffic)
        policy = ControlledAlternateRouting(network, table, loads)
        trace = generate_trace(traffic, 40.0, 11)
        timeline = single_failure_timeline(2, 3, fail_at=15.0, repair_at=30.0)
        # A fault plane is inexpressible in the lockstep kernel; backend
        # "batch" must degrade to the general loop, not error.
        via_batch = simulate(network, policy, trace, warmup=10.0,
                             faults=timeline, backend="batch")
        ref = simulate(network, policy, trace, warmup=10.0, faults=timeline,
                       backend="reference")
        _assert_bit_identical(via_batch, ref)

    def test_ineligibility_names_the_reason(self):
        network, table, traffic = _nsfnet()
        from repro.routing.shadow import OttKrishnanRouting

        loads = primary_link_loads(network, table, traffic)
        policy = OttKrishnanRouting(network, table, loads)
        traces = [generate_trace(traffic, 20.0, 0)]
        reason = batch_ineligibility(policy, traces)
        assert reason is not None and "batch kernel" in reason
        with pytest.raises(ValueError, match="batch kernel"):
            BatchSimulator(network, policy, traces)

    def test_runner_falls_back_per_seed_for_ineligible_policy(self):
        network, table, traffic = _nsfnet()
        from repro.routing.shadow import OttKrishnanRouting

        loads = primary_link_loads(network, table, traffic)
        policy = OttKrishnanRouting(network, table, loads)
        config = ReplicationConfig(measured_duration=10.0, seeds=(0, 1))
        outcome = run_replications_detailed(
            network, policy, traffic, config, backend="auto"
        )
        assert outcome.backend == "auto"
        assert all(s.backend == "auto" for s in outcome.statuses)


class TestBatchResult:
    QUICK = ReplicationConfig(measured_duration=15.0, seeds=(0, 1, 2))

    def _scenario(self):
        return Scenario(topology="nsfnet", traffic="nominal",
                        policy="controlled")

    def test_run_study_returns_batch_result(self):
        study = run_study(self._scenario(), config=self.QUICK)
        assert isinstance(study, BatchResult)
        assert study.outcome.backend == "batch"
        assert study.backends == {"controlled": "batch"}

    def test_forced_per_seed_backend_returns_plain_study(self):
        study = run_study(self._scenario(), config=self.QUICK, backend="fast")
        assert isinstance(study, StudyResult)
        assert not isinstance(study, BatchResult)
        assert study.outcome.backend == "fast"

    def test_batch_and_fast_studies_bit_identical(self):
        batch = run_study(self._scenario(), config=self.QUICK)
        fast = run_study(self._scenario(), config=self.QUICK, backend="fast")
        for res_b, res_f in zip(batch.outcome.results, fast.outcome.results):
            _assert_bit_identical(res_b, res_f)

    def test_per_seed_and_matrices(self):
        study = run_study(self._scenario(), config=self.QUICK)
        per_seed = study.per_seed()
        assert per_seed == study.outcome.results
        assert study.seeds() == self.QUICK.seeds
        blocking = study.blocking_by_seed()
        assert blocking.shape == (len(self.QUICK.seeds),)
        assert blocking.tolist() == [r.network_blocking for r in per_seed]
        offered = study.offered_matrix()
        blocked = study.blocked_matrix()
        assert offered.shape == blocked.shape
        assert offered.shape[0] == len(self.QUICK.seeds)
        assert np.array_equal(offered[1], per_seed[1].offered)


class TestLabProvenance:
    QUICK = ReplicationConfig(measured_duration=12.0, seeds=(0, 1, 2))

    def _scenario(self):
        return Scenario(topology="nsfnet", traffic="nominal",
                        policy="controlled")

    def test_batch_results_cache_and_record_backend(self, tmp_path):
        from repro.lab.hashing import (
            config_signature,
            job_key,
            scenario_signature,
        )
        from repro.lab.store import RESULT_SCHEMA_VERSION, ResultStore

        lab = LabConfig(store=tmp_path / "store")
        scenario = self._scenario()
        first = run_study(scenario, config=self.QUICK, lab=lab)
        assert isinstance(first, BatchResult)
        assert first.lab.simulated == len(self.QUICK.seeds)

        store = ResultStore(tmp_path / "store")
        sig = scenario_signature(scenario)
        csig = config_signature(self.QUICK)
        for seed in self.QUICK.seeds:
            key = job_key(sig, "controlled", csig, seed, RESULT_SCHEMA_VERSION)
            document = store.get(key)
            assert document["provenance"]["backend"] == "batch"

        # The job key is backend-independent, so a resumed run — even one
        # requesting a different engine — must serve every seed from cache
        # and reproduce the results bit for bit.
        resumed = run_study(scenario, config=self.QUICK, lab=lab,
                            backend="reference")
        assert resumed.lab.cache_hits == len(self.QUICK.seeds)
        assert resumed.lab.simulated == 0
        for res_a, res_b in zip(first.outcome.results, resumed.outcome.results):
            _assert_bit_identical(res_a, res_b)

    def test_lab_statuses_carry_backend(self, tmp_path):
        lab = LabConfig(store=tmp_path / "store")
        study = run_study(self._scenario(), config=self.QUICK, lab=lab)
        assert all(
            s.backend == "batch" for s in study.outcome.statuses
        )
