"""Tests for the channel-borrowing extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cellular.channel_borrowing import (
    FREE_BORROWING,
    NO_BORROWING,
    PROTECTED_BORROWING,
    HexCellGrid,
    protection_levels_for_grid,
    simulate_cellular,
)


class TestHexCellGrid:
    def test_cell_count(self):
        assert HexCellGrid(3, 4, 10).num_cells == 12

    def test_interior_cell_has_six_neighbors(self):
        grid = HexCellGrid(5, 5, 10)
        interior = 2 * 5 + 2
        assert len(grid.neighbors(interior)) == 6

    def test_corner_cells_have_fewer_neighbors(self):
        grid = HexCellGrid(3, 3, 10)
        assert len(grid.neighbors(0)) < 6

    def test_neighbor_relation_symmetric(self):
        grid = HexCellGrid(4, 5, 10)
        for cell in range(grid.num_cells):
            for neighbor in grid.neighbors(cell):
                assert cell in grid.neighbors(neighbor)

    def test_borrow_resource_set_contains_lender(self):
        grid = HexCellGrid(4, 4, 10)
        for cell in range(grid.num_cells):
            for lender in grid.neighbors(cell):
                resource_set = grid.borrow_resource_set(cell, lender)
                assert lender in resource_set
                assert cell not in resource_set

    def test_interior_resource_set_is_three_cells(self):
        # The paper's "co-cell set consists of 3-cells" situation.
        grid = HexCellGrid(5, 5, 10)
        interior = 2 * 5 + 2
        sizes = [
            len(grid.borrow_resource_set(interior, lender))
            for lender in grid.neighbors(interior)
        ]
        assert all(size == 3 for size in sizes)

    def test_effective_h_is_three(self):
        assert HexCellGrid(4, 4, 10).max_resource_set_size() == 3

    def test_non_neighbor_borrow_rejected(self):
        grid = HexCellGrid(3, 3, 10)
        with pytest.raises(ValueError):
            grid.borrow_resource_set(0, 8)

    def test_degenerate_grid_rejected(self):
        with pytest.raises(ValueError):
            HexCellGrid(0, 3, 10)
        with pytest.raises(ValueError):
            HexCellGrid(3, 3, 0)


class TestProtectionLevels:
    def test_levels_small_at_moderate_load(self):
        # Paper: r for H=3 is quite small for C ~ 50.
        grid = HexCellGrid(4, 4, 50)
        loads = np.full(grid.num_cells, 35.0)
        levels = protection_levels_for_grid(grid, loads)
        assert (levels <= 5).all()
        assert (levels >= 0).all()


class TestSimulation:
    @pytest.fixture(scope="class")
    def grid(self):
        return HexCellGrid(4, 4, 20)

    def test_accounting(self, grid):
        loads = np.full(grid.num_cells, 18.0)
        result = simulate_cellular(grid, loads, FREE_BORROWING, duration=40.0, seed=0)
        assert result.home_carried + result.borrowed_carried + result.blocked == result.offered

    def test_no_borrowing_never_borrows(self, grid):
        loads = np.full(grid.num_cells, 25.0)
        result = simulate_cellular(grid, loads, NO_BORROWING, duration=40.0, seed=1)
        assert result.borrowed_carried == 0
        assert result.blocked > 0

    def test_borrowing_helps_under_imbalance(self, grid):
        # One hot cell in a cold neighborhood: borrowing rescues calls.
        loads = np.full(grid.num_cells, 2.0)
        loads[5] = 40.0
        blocked = simulate_cellular(grid, loads, NO_BORROWING, duration=60.0, seed=2)
        protected = simulate_cellular(grid, loads, PROTECTED_BORROWING, duration=60.0, seed=2)
        assert protected.blocking < blocked.blocking
        assert protected.borrowed_carried > 0

    def test_protected_not_worse_than_no_borrowing_under_overload(self, grid):
        # The Theorem-1 guarantee, at uniform overload, across seeds.
        loads = np.full(grid.num_cells, 26.0)
        deltas = []
        for seed in range(4):
            base = simulate_cellular(grid, loads, NO_BORROWING, duration=60.0, seed=seed)
            prot = simulate_cellular(grid, loads, PROTECTED_BORROWING, duration=60.0, seed=seed)
            deltas.append(base.blocking - prot.blocking)
        assert np.mean(deltas) > -0.01

    def test_deterministic_per_seed(self, grid):
        loads = np.full(grid.num_cells, 15.0)
        a = simulate_cellular(grid, loads, FREE_BORROWING, duration=30.0, seed=7)
        b = simulate_cellular(grid, loads, FREE_BORROWING, duration=30.0, seed=7)
        assert a == b

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            simulate_cellular(grid, np.full(3, 1.0), NO_BORROWING)
        with pytest.raises(ValueError):
            simulate_cellular(grid, np.full(grid.num_cells, -1.0), NO_BORROWING)
        with pytest.raises(ValueError):
            simulate_cellular(
                grid, np.full(grid.num_cells, 1.0), NO_BORROWING, duration=10.0, warmup=10.0
            )


class TestProtectionLevelsMixedLoads:
    def test_levels_track_per_cell_load(self):
        grid = HexCellGrid(4, 4, 50)
        loads = np.full(grid.num_cells, 10.0)
        loads[5] = 45.0
        levels = protection_levels_for_grid(grid, loads)
        # The hot cell protects more than the cold ones.
        assert levels[5] > levels[0]
        assert levels[0] >= 0

    def test_zero_load_zero_protection(self):
        grid = HexCellGrid(3, 3, 20)
        levels = protection_levels_for_grid(grid, np.zeros(grid.num_cells))
        assert (levels == 0).all()
