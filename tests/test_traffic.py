"""Tests for traffic matrices, demand computation and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.generators import fully_connected, line
from repro.topology.paths import build_path_table
from repro.traffic.demand import (
    bifurcated_link_loads,
    loads_by_endpoints,
    primary_link_loads,
)
from repro.traffic.generators import (
    gravity_traffic,
    hotspot_traffic,
    random_traffic,
    uniform_traffic,
)
from repro.traffic.matrix import TrafficMatrix


class TestTrafficMatrix:
    def test_from_array(self):
        matrix = TrafficMatrix(np.array([[0.0, 2.0], [3.0, 0.0]]))
        assert matrix.demand(0, 1) == 2.0
        assert matrix[(1, 0)] == 3.0
        assert matrix.total == 5.0

    def test_from_mapping(self):
        matrix = TrafficMatrix({(0, 1): 4.0, (2, 0): 1.5})
        assert matrix.num_nodes == 3
        assert matrix.demand(2, 0) == 1.5
        assert matrix.demand(1, 2) == 0.0

    def test_from_mapping_with_explicit_size(self):
        matrix = TrafficMatrix({(0, 1): 1.0}, num_nodes=5)
        assert matrix.num_nodes == 5

    def test_empty_mapping_needs_size(self):
        with pytest.raises(ValueError):
            TrafficMatrix({})

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix(np.zeros((2, 3)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix(np.array([[1.0, 0.0], [0.0, 0.0]]))

    def test_scaling(self):
        matrix = TrafficMatrix({(0, 1): 2.0})
        doubled = matrix.scaled(2.0)
        assert doubled.demand(0, 1) == 4.0
        assert (3 * matrix).demand(0, 1) == 6.0
        assert matrix.demand(0, 1) == 2.0  # original untouched

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix({(0, 1): 1.0}).scaled(-1.0)

    def test_positive_pairs(self):
        matrix = TrafficMatrix({(0, 1): 1.0, (1, 2): 0.0, (2, 1): 3.0})
        pairs = dict(matrix.positive_pairs())
        assert pairs == {(0, 1): 1.0, (2, 1): 3.0}

    def test_as_array_is_copy(self):
        matrix = TrafficMatrix({(0, 1): 1.0})
        arr = matrix.as_array()
        arr[0, 1] = 99.0
        assert matrix.demand(0, 1) == 1.0

    def test_rounding(self):
        matrix = TrafficMatrix({(0, 1): 1.6})
        assert matrix.rounded()[0, 1] == 2

    def test_equality(self):
        a = TrafficMatrix({(0, 1): 1.0})
        b = TrafficMatrix({(0, 1): 1.0})
        assert a == b
        assert a != TrafficMatrix({(0, 1): 2.0})

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(TrafficMatrix({(0, 1): 1.0}))


class TestPrimaryLinkLoads:
    def test_equation_one_on_a_line(self):
        net = line(3, 10)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 2): 5.0, (0, 1): 2.0})
        loads = primary_link_loads(net, table, traffic)
        by_endpoints = loads_by_endpoints(net, loads)
        assert by_endpoints[(0, 1)] == 7.0  # both demands traverse 0->1
        assert by_endpoints[(1, 2)] == 5.0
        assert by_endpoints[(1, 0)] == 0.0

    def test_missing_primary_rejected(self):
        net = line(3, 10)
        net.fail_duplex_link(1, 2)
        table = build_path_table(net)
        traffic = TrafficMatrix({(0, 2): 5.0})
        with pytest.raises(ValueError):
            primary_link_loads(net, table, traffic)

    def test_bifurcated_loads(self):
        net = fully_connected(3, 10)
        traffic = TrafficMatrix({(0, 1): 8.0})
        splits = {(0, 1): [((0, 1), 0.75), ((0, 2, 1), 0.25)]}
        loads = loads_by_endpoints(net, bifurcated_link_loads(net, splits, traffic))
        assert loads[(0, 1)] == pytest.approx(6.0)
        assert loads[(0, 2)] == pytest.approx(2.0)
        assert loads[(2, 1)] == pytest.approx(2.0)

    def test_bifurcated_fractions_must_sum_to_one(self):
        net = fully_connected(3, 10)
        traffic = TrafficMatrix({(0, 1): 8.0})
        with pytest.raises(ValueError):
            bifurcated_link_loads(net, {(0, 1): [((0, 1), 0.5)]}, traffic)

    def test_bifurcated_missing_split_rejected(self):
        net = fully_connected(3, 10)
        traffic = TrafficMatrix({(0, 1): 8.0})
        with pytest.raises(ValueError):
            bifurcated_link_loads(net, {}, traffic)

    def test_loads_by_endpoints_shape_check(self):
        net = fully_connected(3, 10)
        with pytest.raises(ValueError):
            loads_by_endpoints(net, np.zeros(5))


class TestGenerators:
    def test_uniform(self):
        traffic = uniform_traffic(4, 3.0)
        assert traffic.total == pytest.approx(12 * 3.0)
        assert traffic.demand(0, 0) == 0.0

    def test_gravity_total_and_proportionality(self):
        traffic = gravity_traffic([1.0, 2.0, 3.0], total=60.0)
        assert traffic.total == pytest.approx(60.0)
        # T(1,2)/T(0,1) = (2*3)/(1*2) = 3.
        assert traffic.demand(1, 2) / traffic.demand(0, 1) == pytest.approx(3.0)

    def test_gravity_zero_weights(self):
        traffic = gravity_traffic([0.0, 0.0], total=10.0)
        assert traffic.total == 0.0

    def test_hotspot(self):
        traffic = hotspot_traffic(4, hotspot=2, background=1.0, surge=5.0)
        assert traffic.demand(0, 2) == 6.0
        assert traffic.demand(2, 3) == 6.0
        assert traffic.demand(0, 1) == 1.0

    def test_hotspot_bad_index(self):
        with pytest.raises(ValueError):
            hotspot_traffic(3, hotspot=3, background=1.0, surge=1.0)

    def test_random_deterministic(self):
        a = random_traffic(5, mean=2.0, seed=1)
        b = random_traffic(5, mean=2.0, seed=1)
        assert a == b
        assert a != random_traffic(5, mean=2.0, seed=2)

    def test_random_zero_mean(self):
        assert random_traffic(3, mean=0.0).total == 0.0
