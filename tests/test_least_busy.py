"""Tests for least-busy-alternative routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.alternate import ControlledAlternateRouting
from repro.routing.least_busy import LeastBusyAlternateRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import fully_connected
from repro.topology.graph import Network
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic
from repro.traffic.matrix import TrafficMatrix


class TestConstruction:
    def test_levels_match_controlled(self, quad_network, quad_table):
        traffic = uniform_traffic(4, 85.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        lba = LeastBusyAlternateRouting(quad_network, quad_table, loads)
        controlled = ControlledAlternateRouting(quad_network, quad_table, loads)
        assert np.array_equal(lba.protection_levels, controlled.protection_levels)
        assert lba.discipline == "least-busy"

    def test_override_validated(self, quad_network, quad_table):
        loads = np.zeros(quad_network.num_links)
        with pytest.raises(ValueError):
            LeastBusyAlternateRouting(
                quad_network, quad_table, loads,
                reservation_override=np.array([1, 2]),
            )
        with pytest.raises(ValueError):
            LeastBusyAlternateRouting(quad_network, quad_table, np.zeros(2))


class TestSelection:
    def test_picks_the_emptier_relay(self):
        # Two parallel 2-hop relays between 0 and 1; pre-load one of them
        # with background traffic and check alternates prefer the other.
        net = Network(4)
        net.add_duplex_link(0, 1, 2)   # direct, tiny
        net.add_duplex_link(0, 2, 20)
        net.add_duplex_link(2, 1, 20)
        net.add_duplex_link(0, 3, 20)
        net.add_duplex_link(3, 1, 20)
        table = build_path_table(net)
        # Heavy (0,1) demand overflows; relay via 2 carries its own load.
        traffic = TrafficMatrix(
            {(0, 1): 10.0, (0, 2): 12.0, (2, 1): 12.0}, num_nodes=4
        )
        loads = primary_link_loads(net, table, traffic)
        zero = np.zeros(net.num_links, dtype=np.int64)
        lba = LeastBusyAlternateRouting(net, table, loads, reservation_override=zero)
        trace = generate_trace(traffic, 60.0, 0)
        simulator_result = simulate(net, lba, trace, 10.0)
        assert simulator_result.alternate_carried > 0
        # The emptier relay (via 3) must take most of the overflow: compare
        # mean occupancies.
        from repro.sim.simulator import LossNetworkSimulator

        sim = LossNetworkSimulator(net, lba, trace, 10.0, collect_link_stats=True)
        sim.run()
        via2 = [l.index for l in net.links if l.endpoints == (0, 2)][0]
        via3 = [l.index for l in net.links if l.endpoints == (0, 3)][0]
        occupancy = sim.mean_link_occupancy
        # Link 0->2 carries its own 12 E of primaries; 0->3 only overflow.
        # Overflow must be biased toward via-3; its occupancy stays well
        # below via-2's primary-plus-overflow.
        assert occupancy[via3] > 0.5           # overflow actually landed there
        assert occupancy[via3] < occupancy[via2]

    def test_respects_reservation(self, quad_network, quad_table):
        # Full reservation shuts the alternates: pathwise single-path.
        traffic = uniform_traffic(4, 95.0)
        loads = primary_link_loads(quad_network, quad_table, traffic)
        full = np.array([l.capacity for l in quad_network.links], dtype=np.int64)
        lba = LeastBusyAlternateRouting(
            quad_network, quad_table, loads, reservation_override=full
        )
        single = SinglePathRouting(quad_network, quad_table)
        trace = generate_trace(traffic, 30.0, 1)
        a = simulate(quad_network, lba, trace)
        b = simulate(quad_network, single, trace)
        assert np.array_equal(a.blocked, b.blocked)
        assert a.alternate_carried == 0


class TestPerformance:
    def test_competitive_with_sequential_controlled(self, quad_network):
        # On the symmetric quadrangle with 2-hop alternates (LBA's design
        # point) the least-busy selection matches the paper's sequential
        # order within noise and never falls behind single-path.
        table = build_path_table(quad_network, max_hops=2)
        traffic = uniform_traffic(4, 90.0)
        loads = primary_link_loads(quad_network, table, traffic)
        policies = {
            "single": SinglePathRouting(quad_network, table),
            "controlled": ControlledAlternateRouting(quad_network, table, loads),
            "lba": LeastBusyAlternateRouting(quad_network, table, loads),
        }
        means = {}
        for name, policy in policies.items():
            means[name] = np.mean(
                [
                    simulate(
                        quad_network, policy, generate_trace(traffic, 40.0, seed), 10.0
                    ).network_blocking
                    for seed in range(4)
                ]
            )
        assert means["lba"] <= means["single"] + 0.01
        assert abs(means["lba"] - means["controlled"]) < 0.01
