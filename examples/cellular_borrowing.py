#!/usr/bin/env python3
"""Channel borrowing in a cellular network, protected per Section 3.2.

The paper's closing observation: its control strategy is not about links at
all — it applies wherever a blocked request can complete on an *alternate
resource set* at extra expense.  In cellular telephony a call arriving at a
full cell may borrow a channel from a neighbor, locking that channel in the
borrower's co-cells (three cells' worth of resource).  Choosing each cell's
protection level for H = 3 makes borrowing provably safe.

Run:  python examples/cellular_borrowing.py
"""

import numpy as np

from repro.cellular import (
    FREE_BORROWING,
    NO_BORROWING,
    PROTECTED_BORROWING,
    HexCellGrid,
    protection_levels_for_grid,
    simulate_cellular,
)

CHANNELS = 50
SEEDS = range(5)


def mean_blocking(grid, loads, policy, duration=100.0) -> float:
    values = [
        simulate_cellular(grid, loads, policy, duration=duration, seed=seed).blocking
        for seed in SEEDS
    ]
    return float(np.mean(values))


def main() -> None:
    grid = HexCellGrid(5, 5, CHANNELS)
    print(f"5x5 hexagonal grid, {CHANNELS} channels per cell")
    print(f"borrow resource-set size (the effective H): {grid.max_resource_set_size()}\n")

    print("scenario A — evening hotspot: downtown cells run hot, suburbs idle")
    loads = np.full(grid.num_cells, 20.0)
    for hot in (7, 12, 17):
        loads[hot] = 55.0
    levels = protection_levels_for_grid(grid, loads)
    print(f"  protection levels: suburb r = {levels[0]}, hotspot r = {levels[12]}")
    for policy in (NO_BORROWING, FREE_BORROWING, PROTECTED_BORROWING):
        print(f"  {policy.name:22s} blocking = {mean_blocking(grid, loads, policy):.4f}")

    print("\nscenario B — uniform overload: every cell past its engineering load")
    loads = np.full(grid.num_cells, 54.0)
    levels = protection_levels_for_grid(grid, loads)
    print(f"  protection levels: r = {levels[12]} (interior)")
    for policy in (NO_BORROWING, FREE_BORROWING, PROTECTED_BORROWING):
        print(f"  {policy.name:22s} blocking = {mean_blocking(grid, loads, policy):.4f}")

    print(
        "\nHotspots: borrowing (protected or not) rescues calls the static"
        "\nassignment would drop.  Uniform overload: free borrowing burns"
        "\nthree cells' channels per rescued call and loses ground, while the"
        "\nprotected scheme falls back to plain blocking — never worse, as"
        "\nTheorem 1 guarantees with r chosen for H = 3."
    )


if __name__ == "__main__":
    main()
