#!/usr/bin/env python3
"""The paper's motivating scenario: QoS video calls on a future Internet.

A regional ISP mesh carries 1 Mb/s medium-quality video calls with per-flow
bandwidth reservation (the paper's prototype call).  The operator already
runs a state-independent min-hop routing protocol and cannot afford to flood
link-state updates for every reservation — exactly the setting the paper's
two-tier scheme targets:

* alternates are computed from distributed min-hop information (DALFAR);
* each link sets its own state-protection threshold from a *measured*
  estimate of its primary demand (no oracle knowledge);
* admission of an alternate-routed call needs only the state of the links
  on that path.

Run:  python examples/qos_video_network.py
"""

import numpy as np

from repro import (
    ControlledAlternateRouting,
    SinglePathRouting,
    UncontrolledAlternateRouting,
    generate_trace,
    simulate,
)
from repro.routing.estimator import estimate_loads_from_trace
from repro.topology import build_path_table, random_mesh
from repro.topology.dalfar import compute_distance_vectors, dalfar_routes
from repro.traffic import gravity_traffic

RATE_BASED_CAPACITY_MBPS = 60  # per direction, after best-effort carve-out
VIDEO_CALL_MBPS = 1


def main() -> None:
    # A 10-PoP regional mesh (random but deterministic) with 60 reservable
    # video-call slots per directed link.
    network = random_mesh(
        10, extra_links=5, capacity=RATE_BASED_CAPACITY_MBPS // VIDEO_CALL_MBPS, seed=7
    )
    table = build_path_table(network)

    # Distributed route computation: converged distance vectors, then
    # alternates derived hop by hop (Section 1's DALFAR reference).
    vectors = compute_distance_vectors(network)
    print(
        f"distance-vector protocol converged in {vectors.rounds} exchange rounds; "
        f"e.g. PoP 0 -> PoP 9 routes:"
    )
    for path in dalfar_routes(network, 0, 9, max_hops=5, tables=vectors)[:4]:
        print(f"  {' -> '.join(str(n) for n in path)}")

    # Demand: population-weighted gravity model, peak-hour total of 420
    # simultaneous video calls on offer.
    populations = [9, 7, 6, 5, 5, 4, 3, 3, 2, 2]
    traffic = gravity_traffic(populations, total=420.0)

    # The operator measures primary demand from call set-ups over a
    # half-hour window instead of assuming it.
    observer = SinglePathRouting(network, table)
    measurement = generate_trace(traffic, duration=40.0, seed=999)
    measured_loads = estimate_loads_from_trace(network, observer, measurement, warmup=10.0)
    print(f"\nmeasured primary demand: min {measured_loads.min():.1f}, "
          f"max {measured_loads.max():.1f} Erlangs per link")

    controlled = ControlledAlternateRouting(network, table, measured_loads)
    protected_links = int(np.count_nonzero(controlled.protection_levels))
    print(f"{protected_links}/{network.num_links} links apply a protection level > 0")

    policies = {
        "single-path (status quo)": SinglePathRouting(network, table),
        "uncontrolled alternates": UncontrolledAlternateRouting(network, table),
        "controlled alternates": controlled,
    }
    print("\npeak-hour admission performance (5 seeds, 100 time units):")
    print("policy                     blocked calls   blocking")
    print("-------------------------  -------------   --------")
    for name, policy in policies.items():
        blocked, offered = 0, 0
        for seed in range(5):
            trace = generate_trace(traffic, duration=110.0, seed=seed)
            result = simulate(network, policy, trace, warmup=10.0)
            blocked += result.total_blocked
            offered += result.total_offered
        print(f"{name:25s}  {blocked:13d}   {blocked / offered:8.4f}")

    print(
        "\nControlled alternate routing admits nearly every call the free-for-"
        "\nall admits at this load while guaranteeing — by Theorem 1 — that it"
        "\ncan never fall behind the operator's existing single-path routing,"
        "\neven if the demand estimate drifts."
    )


if __name__ == "__main__":
    main()
