#!/usr/bin/env python3
"""Quickstart: controlled alternate routing on a small custom mesh.

Builds a 6-node mesh, offers it a skewed traffic matrix, and compares the
three routing schemes of the paper — single-path, uncontrolled alternate and
controlled alternate routing — under identical call arrivals.

Run:  python examples/quickstart.py
"""

from repro import (
    ControlledAlternateRouting,
    SinglePathRouting,
    UncontrolledAlternateRouting,
    Network,
    build_path_table,
    erlang_bound,
    generate_trace,
    primary_link_loads,
    simulate,
    TrafficMatrix,
)


def main() -> None:
    # A small general mesh: a ring of six nodes with two chords.
    network = Network(6)
    for a, b in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3), (1, 4)]:
        network.add_duplex_link(a, b, capacity=30)

    # Paths: min-hop primaries plus loop-free alternates by increasing length.
    table = build_path_table(network)

    # Demand in Erlangs (unit-mean holding times): one hot corridor plus
    # background traffic between every neighbor pair.
    demands = {(0, 3): 35.0, (3, 0): 35.0}
    for a, b in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]:
        demands[(a, b)] = 8.0
        demands[(b, a)] = 8.0
    traffic = TrafficMatrix(demands, num_nodes=6)

    # The controlled scheme needs each link's primary demand (Equation 1 of
    # the paper) to size its state-protection level.
    loads = primary_link_loads(network, table, traffic)
    policies = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, loads),
    }

    print("scheme         blocking   alternates used")
    print("-------------  ---------  ---------------")
    for name, policy in policies.items():
        blockings, alternates = [], []
        for seed in range(5):
            trace = generate_trace(traffic, duration=110.0, seed=seed)
            result = simulate(network, policy, trace, warmup=10.0)
            blockings.append(result.network_blocking)
            alternates.append(result.alternate_fraction)
        mean = sum(blockings) / len(blockings)
        alt = sum(alternates) / len(alternates)
        print(f"{name:13s}  {mean:9.4f}  {alt:15.4f}")

    print(f"\nErlang cut-set lower bound: {erlang_bound(network, traffic):.6f}")
    controlled = policies["controlled"]
    print("\nper-link protection levels (r > 0 only):")
    for link in network.links:
        r = controlled.protection_levels[link.index]
        if r > 0:
            print(
                f"  {link.src}->{link.dst}: Lambda = {loads[link.index]:5.1f} E, "
                f"C = {link.capacity}, r = {r}"
            )


if __name__ == "__main__":
    main()
