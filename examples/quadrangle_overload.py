#!/usr/bin/env python3
"""The avalanche effect, on the paper's fully-connected quadrangle.

Demonstrates Section 4.1's Figures 3/4: uncontrolled alternate routing is
excellent until a critical load and then collapses — each alternate-routed
call burns two circuits instead of one, pushing more calls off their
primaries in a self-reinforcing spiral — while state protection (Theorem 1's
smallest safe reservation level) keeps the benefit at low load and clamps
the spiral at high load.

Run:  python examples/quadrangle_overload.py
"""

from repro import (
    ControlledAlternateRouting,
    SinglePathRouting,
    UncontrolledAlternateRouting,
    erlang_bound,
    generate_trace,
    min_protection_level,
    primary_link_loads,
    quadrangle,
    simulate,
    uniform_traffic,
)
from repro.topology import build_path_table

SEEDS = range(5)
DURATION = 110.0
WARMUP = 10.0


def mean_blocking(network, policy, traffic) -> tuple[float, float]:
    blocking, alt = [], []
    for seed in SEEDS:
        trace = generate_trace(traffic, DURATION, seed)
        result = simulate(network, policy, trace, WARMUP)
        blocking.append(result.network_blocking)
        alt.append(result.alternate_fraction)
    return sum(blocking) / len(blocking), sum(alt) / len(alt)


def main() -> None:
    network = quadrangle(capacity=100)
    table = build_path_table(network)

    print("Fully-connected 4-node network, C = 100 per directed link.")
    print("Per-pair offered load sweeps through the paper's critical region.\n")
    header = (
        "load   r    single-path  uncontrolled  (alt%)   controlled  (alt%)   bound"
    )
    print(header)
    print("-" * len(header))
    for per_pair in (70.0, 80.0, 85.0, 90.0, 95.0, 100.0, 110.0):
        traffic = uniform_traffic(4, per_pair)
        loads = primary_link_loads(network, table, traffic)
        r = min_protection_level(per_pair, 100, table.max_hops)
        single, __ = mean_blocking(network, SinglePathRouting(network, table), traffic)
        unctl, unctl_alt = mean_blocking(
            network, UncontrolledAlternateRouting(network, table), traffic
        )
        ctl, ctl_alt = mean_blocking(
            network, ControlledAlternateRouting(network, table, loads), traffic
        )
        bound = erlang_bound(network, traffic)
        print(
            f"{per_pair:5.0f}  {r:3d}  {single:11.4f}  {unctl:12.4f}  ({unctl_alt:4.1%})"
            f"  {ctl:10.4f}  ({ctl_alt:4.1%})  {bound:7.5f}"
        )

    print(
        "\nReading the table: below ~85 Erlangs the alternate-routing schemes"
        "\nessentially eliminate blocking; past ~90 the uncontrolled scheme's"
        "\nalternate share keeps climbing while its blocking overtakes even"
        "\nsingle-path routing — the avalanche.  The controlled scheme's r"
        "\ngrows with the load, throttling alternates exactly when they start"
        "\nto hurt, so it tracks the better of the two everywhere."
    )


if __name__ == "__main__":
    main()
