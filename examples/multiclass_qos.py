#!/usr/bin/env python3
"""Mixed QoS classes: audio and video sharing a protected mesh.

The paper's preliminary study assumes identical calls but flags multi-rate
support as the natural extension.  This example runs two reservation classes
— 1-unit audio and 4-unit HD video — over the NSFNet backbone, sizes each
link's protection level with the conservative multirate rule (wide alternate
calls are charged per bandwidth unit), and compares per-class blocking under
the three routing schemes.

Run:  python examples/multiclass_qos.py
"""

import numpy as np

from repro.core.multirate import (
    TrafficClass,
    multirate_blocking,
    multirate_protection_level,
)
from repro.routing import (
    ControlledAlternateRouting,
    SinglePathRouting,
    UncontrolledAlternateRouting,
)
from repro.sim import generate_multiclass_trace, simulate
from repro.topology import build_path_table, nsfnet_backbone
from repro.traffic import multiclass_unit_loads, nsfnet_nominal_traffic

VIDEO_BANDWIDTH = 4
SEEDS = range(4)


def main() -> None:
    network = nsfnet_backbone()
    table = build_path_table(network)

    # Split the calibrated nominal demand: most calls are audio, but a
    # slice of the Erlangs converts to 4-unit video sessions.
    nominal = nsfnet_nominal_traffic()
    audio = nominal.scaled(0.7)
    video = nominal.scaled(0.3 / VIDEO_BANDWIDTH)  # same unit-Erlangs, wide calls
    classes = [("audio", audio, 1), ("video", video, VIDEO_BANDWIDTH)]

    unit_loads = multiclass_unit_loads(network, table, classes)
    levels = np.array(
        [
            multirate_protection_level(
                unit_loads[link.index], link.capacity, table.max_hops, VIDEO_BANDWIDTH
            )
            for link in network.links
        ],
        dtype=np.int64,
    )
    print(
        f"multirate protection levels: min {levels.min()}, max {levels.max()} "
        f"(links with full protection: {int((levels == 100).sum())})"
    )

    # Exact single-link reference: the busiest corridor as an isolated link.
    hottest = int(np.argmax(unit_loads))
    hot_link = network.link(hottest)
    print(
        f"\nhottest link {hot_link.src}->{hot_link.dst} carries "
        f"{unit_loads[hottest]:.0f} unit-Erlangs; isolated-link Kaufman-Roberts:"
    )
    reference = multirate_blocking(
        [
            TrafficClass("audio", 0.7 * unit_loads[hottest], 1),
            TrafficClass("video", 0.3 * unit_loads[hottest] / VIDEO_BANDWIDTH, VIDEO_BANDWIDTH),
        ],
        hot_link.capacity,
    )
    for name, value in reference.items():
        print(f"  {name}: {value:.4f}")

    policies = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(
            network, table, unit_loads, protection_override=levels
        ),
    }
    print("\nnetwork-wide results (4 seeds x 100 time units):")
    print("policy        total     audio     video")
    print("------------  --------  --------  --------")
    for name, policy in policies.items():
        total, by_class = [], {"audio": [], "video": []}
        for seed in SEEDS:
            trace = generate_multiclass_trace(classes, 110.0, seed)
            result = simulate(network, policy, trace, warmup=10.0)
            total.append(result.network_blocking)
            for cls, value in result.class_blocking().items():
                by_class[cls].append(value)
        print(
            f"{name:12s}  {np.mean(total):8.4f}  "
            f"{np.mean(by_class['audio']):8.4f}  {np.mean(by_class['video']):8.4f}"
        )

    print(
        "\nVideo calls, needing four units at once on every link, block far"
        "\nmore often than audio — most dramatically under uncontrolled"
        "\nalternate routing, whose long detours eat exactly the contiguous"
        "\ncapacity video needs.  The multirate protection levels keep the"
        "\ncontrolled scheme at or below single-path blocking for the mix."
    )


if __name__ == "__main__":
    main()
