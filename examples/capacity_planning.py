#!/usr/bin/env python3
"""Capacity planning with the analytic two-tier model, verified by simulation.

A downstream-user workflow the paper's machinery enables: given a topology
and a demand forecast, find the per-link capacity at which controlled
alternate routing meets a blocking objective — using the *analytic*
reduced-load fixed point (milliseconds per evaluation) instead of
simulation, then verify the chosen design by call-by-call simulation.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.analysis.alternate_fixed_point import alternate_routing_fixed_point
from repro.core.protection import min_protection_level
from repro.routing import ControlledAlternateRouting
from repro.sim import generate_trace, simulate
from repro.topology import build_path_table, nsfnet_backbone
from repro.traffic import nsfnet_nominal_traffic, primary_link_loads

TARGET_BLOCKING = 0.01
FORECAST_SCALE = 1.1  # plan for 10% above the nominal estimate


def analytic_blocking(capacity: int, network, traffic) -> float:
    """Network blocking of the controlled scheme at a uniform capacity."""
    sized = nsfnet_backbone(capacity=capacity)
    table = build_path_table(sized)
    loads = primary_link_loads(sized, table, traffic)
    levels = np.array(
        [
            min_protection_level(loads[link.index], capacity, table.max_hops)
            for link in sized.links
        ],
        dtype=np.int64,
    )
    result = alternate_routing_fixed_point(sized, table, traffic, levels)
    return result.network_blocking


def main() -> None:
    base = nsfnet_backbone()
    traffic = nsfnet_nominal_traffic().scaled(FORECAST_SCALE)
    print(
        f"planning for {traffic.total:.0f} Erlangs of forecast demand, "
        f"target blocking {TARGET_BLOCKING:.0%}\n"
    )

    # Bisection on the uniform link capacity using the analytic model.
    low, high = 100, 400
    print("capacity  analytic blocking")
    while high - low > 1:
        mid = (low + high) // 2
        blocking = analytic_blocking(mid, base, traffic)
        print(f"{mid:8d}  {blocking:.5f}")
        if blocking > TARGET_BLOCKING:
            low = mid
        else:
            high = mid
    chosen = high
    print(f"\nchosen uniform capacity: {chosen} calls per directed link")

    # Verify by simulation; the analytic model's link-independence
    # assumption runs slightly optimistic near the knee, so close the loop:
    # bump the capacity until the simulated design meets the objective.
    capacity = chosen
    while True:
        network = nsfnet_backbone(capacity=capacity)
        table = build_path_table(network)
        loads = primary_link_loads(network, table, traffic)
        policy = ControlledAlternateRouting(network, table, loads)
        values = [
            simulate(
                network, policy, generate_trace(traffic, 110.0, seed), 10.0
            ).network_blocking
            for seed in range(5)
        ]
        simulated = float(np.mean(values))
        print(f"simulated blocking at capacity {capacity}: {simulated:.5f}")
        if simulated <= TARGET_BLOCKING:
            break
        capacity += max(1, capacity // 50)

    print(
        f"\nfinal design: {capacity} calls per directed link "
        f"(analytic first guess {chosen}, simulation-corrected by "
        f"{capacity - chosen})"
    )


if __name__ == "__main__":
    main()
