#!/usr/bin/env python3
"""The paper's NSFNet T3 study, end to end (Sections 4.2.1-4.2.2).

Rebuilds the 12-node NSFNet backbone model, calibrates the nominal traffic
matrix against Table 1's link loads, regenerates the protection-level table,
sweeps the load around nominal (Figures 6/7), and reruns the link-failure
experiment.

Run:  python examples/nsfnet_study.py            (quick: 3 seeds, 40 units)
      python examples/nsfnet_study.py --paper    (paper fidelity: slower)
"""

import argparse

from repro import FailureScenario, apply_failures
from repro.experiments.figures import nsfnet_sweep
from repro.experiments.report import format_sweep, format_table, format_table1
from repro.experiments.runner import PAPER_CONFIG, compare_policies
from repro.experiments.tables import regenerate_table1, table1_agreement
from repro.routing import (
    ControlledAlternateRouting,
    SinglePathRouting,
    UncontrolledAlternateRouting,
)
from repro.topology import nsfnet_backbone
from repro.traffic import nsfnet_nominal_traffic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true", help="paper-fidelity runs")
    args = parser.parse_args()
    config = PAPER_CONFIG if args.paper else PAPER_CONFIG.scaled(0.4, num_seeds=3)

    print("=== Table 1: protection levels under the calibrated nominal load ===")
    rows = regenerate_table1()
    print(format_table1(rows))
    agreement = table1_agreement(rows)
    print(
        f"\nloads match the paper on {agreement['load_match_fraction']:.0%} of rows, "
        f"protection levels on {agreement['protection_match_fraction']:.0%} "
        f"(worst gap {agreement['worst_protection_gap']:.0f}, caused by the "
        "paper's integer-rounded Lambda column)\n"
    )

    print("=== Figures 6/7: blocking vs load (nominal = 10), H = 11 ===")
    points = nsfnet_sweep(load_values=(8.0, 10.0, 12.0, 14.0), config=config)
    print(format_sweep(points))
    print()

    print("=== Link failures (Section 4.2.2) at load 12 ===")
    network = nsfnet_backbone()
    traffic = nsfnet_nominal_traffic().scaled(1.2)
    rows = []
    for scenario in (
        FailureScenario((), name="intact"),
        FailureScenario(((2, 3),), name="fail 2<->3"),
        FailureScenario(((7, 9),), name="fail 7<->9"),
    ):
        failed = apply_failures(network, traffic, scenario)
        policies = {
            "single-path": SinglePathRouting(failed.network, failed.table),
            "uncontrolled": UncontrolledAlternateRouting(failed.network, failed.table),
            "controlled": ControlledAlternateRouting(
                failed.network, failed.table, failed.primary_loads
            ),
        }
        stats = compare_policies(failed.network, policies, traffic, config)
        rows.append(
            [
                scenario.name,
                stats["single-path"].mean,
                stats["uncontrolled"].mean,
                stats["controlled"].mean,
            ]
        )
    print(format_table(["scenario", "single-path", "uncontrolled", "controlled"], rows))
    print(
        "\nAs in the paper: failures raise blocking but preserve the relative\n"
        "position of the curves — controlled alternate routing never falls\n"
        "behind single-path routing."
    )


if __name__ == "__main__":
    main()
