"""Stable high-level façade over the reproduction's moving parts.

Most studies need the same wiring: pick a topology, pick a traffic matrix,
enumerate the path table, build one of the paper's routing policies, and run
the call-by-call simulator over one or many seeds.  The deep modules expose
every knob for that pipeline; this module exposes the pipeline itself.

:class:`Scenario` names the ingredients declaratively (strings for the
built-in topologies/traffic, or concrete objects for custom studies),
:func:`run_scenario` simulates a single seed, and :func:`run_study` runs the
paper's multi-seed replication protocol (optionally in parallel, optionally
for several policies on common random numbers).

The deep imports remain public and stable — this façade only composes them::

    from repro.api import Scenario, run_scenario, run_study

    result = run_scenario(Scenario(), seed=0)
    print(result.network_blocking)

    study = run_study(Scenario(policy="uncontrolled"), parallel=True)
    print(study.stat.mean, study.stat.half_width)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ._compat import resolve_backend
from .lab.config import LabConfig
from .experiments.runner import (
    PAPER_CONFIG,
    ReplicationConfig,
    ReplicationOutcome,
    run_replications_detailed,
)
from .routing.alternate import (
    ControlledAlternateRouting,
    LengthAdaptiveControlledRouting,
    UncontrolledAlternateRouting,
)
from .routing.base import RoutingPolicy
from .routing.dar import DynamicAlternateRouting, PowerOfDAlternateRouting
from .routing.shadow import OttKrishnanRouting
from .routing.single_path import SinglePathRouting
from .sim.metrics import SimulationResult, SweepStatistic
from .sim.simulator import simulate
from .sim.trace import generate_trace
from .topology.generators import quadrangle
from .topology.graph import Network
from .topology.nsfnet import nsfnet_backbone
from .topology.paths import PathTable, build_path_table
from .traffic.calibration import nsfnet_nominal_traffic
from .traffic.demand import primary_link_loads
from .traffic.generators import uniform_traffic
from .traffic.matrix import TrafficMatrix
from .traffic.workload import Workload, build_workload, generate_workload_trace
from .sim.trace import ArrivalTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lab.scheduler import LabRunReport

__all__ = [
    "Scenario",
    "StudyResult",
    "BatchResult",
    "LabConfig",
    "run_scenario",
    "run_study",
]


_TOPOLOGIES = {
    "nsfnet": nsfnet_backbone,
    "quadrangle": quadrangle,
}

_POLICIES = ("single-path", "uncontrolled", "controlled", "length-adaptive",
             "ott-krishnan", "dar", "power-of-d")


def _resolve_network(spec: Network | str) -> Network:
    if isinstance(spec, Network):
        return spec
    try:
        return _TOPOLOGIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown topology {spec!r}; use one of {sorted(_TOPOLOGIES)} "
            "or pass a Network"
        ) from None


def _resolve_traffic(spec: TrafficMatrix | str | float, network: Network,
                     topology_spec) -> TrafficMatrix:
    if isinstance(spec, TrafficMatrix):
        return spec
    if isinstance(spec, (int, float)):
        return uniform_traffic(network.num_nodes, float(spec))
    if spec == "nominal":
        if topology_spec != "nsfnet":
            raise ValueError(
                'traffic="nominal" is the calibrated NSFNet matrix; for other '
                "networks pass a TrafficMatrix or a per-pair Erlang value"
            )
        return nsfnet_nominal_traffic()
    raise ValueError(
        f"unknown traffic {spec!r}; use 'nominal', a per-pair Erlang value, "
        "or a TrafficMatrix"
    )


@dataclass(frozen=True, kw_only=True)
class Scenario:
    """One named experiment: topology + traffic + routing policy.

    Defaults reproduce the paper's headline setting — the NSFNet backbone
    under the calibrated nominal traffic, routed by the controlled
    alternate-routing scheme.  All fields are keyword-only.

    ``topology``
        ``"nsfnet"``, ``"quadrangle"``, or any :class:`Network`.
    ``traffic``
        ``"nominal"`` (NSFNet only), a per-pair Erlang value for a uniform
        matrix, or any :class:`TrafficMatrix`.  ``load_scale`` multiplies
        whatever matrix results.
    ``policy``
        One of ``single-path``, ``uncontrolled``, ``controlled``,
        ``length-adaptive``, ``ott-krishnan``, ``dar``, ``power-of-d``.
    ``max_hops``
        The paper's ``H`` (alternate-path hop cap); ``None`` = unrestricted.
    ``workload``
        ``None`` (stationary demand, the historical default), a spec string
        such as ``"flash-crowd"`` or ``"adversarial:7"``, or a concrete
        :class:`~repro.traffic.workload.Workload`.  When set, traces follow
        per-O-D-pair time-varying rates and the lab's cache keys include the
        workload's content.
    """

    topology: Network | str = "nsfnet"
    traffic: TrafficMatrix | str | float = "nominal"
    policy: str = "controlled"
    max_hops: int | None = None
    load_scale: float = 1.0
    workload: Workload | str | None = None

    def __post_init__(self):
        if self.policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; use one of {list(_POLICIES)}"
            )
        if self.load_scale <= 0:
            raise ValueError("load_scale must be positive")
        if isinstance(self.workload, str):
            from .traffic.workload import parse_workload_spec

            parse_workload_spec(self.workload)  # fail at construction, not use

    @cached_property
    def network(self) -> Network:
        """The resolved topology (built once, then cached)."""
        return _resolve_network(self.topology)

    @cached_property
    def traffic_matrix(self) -> TrafficMatrix:
        """The resolved traffic matrix, with ``load_scale`` applied."""
        matrix = _resolve_traffic(self.traffic, self.network, self.topology)
        return matrix if self.load_scale == 1.0 else matrix.scaled(self.load_scale)

    @cached_property
    def path_table(self) -> PathTable:
        """Primary + alternate path enumeration under ``max_hops``."""
        return build_path_table(self.network, max_hops=self.max_hops)

    def build_policy(self, name: str | None = None) -> RoutingPolicy:
        """Construct the routing policy (by default the scenario's own)."""
        name = self.policy if name is None else name
        network, table = self.network, self.path_table
        if name == "single-path":
            return SinglePathRouting(network, table)
        if name == "uncontrolled":
            return UncontrolledAlternateRouting(network, table)
        if name == "dar":
            return DynamicAlternateRouting(network, table)
        if name == "power-of-d":
            return PowerOfDAlternateRouting(network, table, d=2)
        loads = primary_link_loads(network, table, self.traffic_matrix)
        if name == "controlled":
            return ControlledAlternateRouting(network, table, loads)
        if name == "length-adaptive":
            return LengthAdaptiveControlledRouting(network, table, loads)
        if name == "ott-krishnan":
            return OttKrishnanRouting(network, table, loads)
        raise ValueError(f"unknown policy {name!r}; use one of {list(_POLICIES)}")

    def with_policy(self, name: str) -> "Scenario":
        """The same scenario under a different routing policy."""
        return replace(self, policy=name)

    def resolved_workload(self, horizon: float) -> Workload | None:
        """The concrete :class:`Workload`, or ``None`` for stationary demand.

        Spec strings are built against this scenario's network and traffic
        over ``[0, horizon)`` — the same spec on the same scenario always
        resolves to the same workload, so traces stay replayable.
        """
        if self.workload is None:
            return None
        return build_workload(
            self.workload, network=self.network, table=self.path_table,
            traffic=self.traffic_matrix, horizon=horizon,
        )

    def make_trace(self, duration: float, seed: int) -> ArrivalTrace:
        """An arrival trace honouring the scenario's workload (if any).

        Stationary scenarios take the historical
        :func:`~repro.sim.trace.generate_trace` path bit for bit; workload
        scenarios thin per-O-D-pair substreams against their profiles.
        """
        workload = self.resolved_workload(duration)
        if workload is None:
            return generate_trace(self.traffic_matrix, duration, seed)
        return generate_workload_trace(
            self.traffic_matrix, workload, duration, seed
        )


@dataclass(frozen=True)
class StudyResult:
    """What :func:`run_study` returns: per-policy replication outcomes.

    ``lab`` is populated only for lab-orchestrated runs
    (``run_study(..., lab=LabConfig(...))``): the pass's cache-hit /
    simulation / telemetry report.
    """

    outcomes: Mapping[str, ReplicationOutcome]
    config: ReplicationConfig
    lab: "LabRunReport | None" = None

    @property
    def outcome(self) -> ReplicationOutcome:
        """The sole outcome — only valid for single-policy studies."""
        if len(self.outcomes) != 1:
            raise ValueError(
                f"study ran {len(self.outcomes)} policies; index .outcomes by name"
            )
        return next(iter(self.outcomes.values()))

    @property
    def stat(self) -> SweepStatistic:
        """Aggregate network blocking of a single-policy study."""
        return self.outcome.stat

    def blocking(self) -> dict[str, SweepStatistic]:
        """Per-policy aggregate network blocking."""
        return {name: outcome.stat for name, outcome in self.outcomes.items()}


@dataclass(frozen=True)
class BatchResult(StudyResult):
    """A :class:`StudyResult` whose replications ran through the batch kernel.

    :func:`run_study` returns this subclass whenever at least one policy's
    seeds were simulated by the lockstep many-seeds backend.  The aggregate
    interface (``.stat``, ``.blocking()``, ``.outcomes``) is inherited
    unchanged and bit-identical to a per-seed run; what this adds is the
    seed axis as arrays, plus :meth:`per_seed` for code that wants the
    historical per-seed result list.
    """

    def _outcome_for(self, policy: str | None) -> ReplicationOutcome:
        return self.outcome if policy is None else self.outcomes[policy]

    def per_seed(self, policy: str | None = None) -> list[SimulationResult]:
        """The per-seed :class:`SimulationResult` list, in seed order.

        This is exactly what ``outcome.results`` holds for a per-seed run,
        so existing experiments/registry code can consume batch output
        untouched.
        """
        return list(self._outcome_for(policy).results)

    def seeds(self, policy: str | None = None) -> tuple[int, ...]:
        """The seeds simulated for ``policy``, in result order."""
        return tuple(result.seed for result in self._outcome_for(policy).results)

    def blocking_by_seed(self, policy: str | None = None) -> np.ndarray:
        """Network blocking probability per seed, shape ``(seeds,)``."""
        return np.array(
            [result.network_blocking for result in self._outcome_for(policy).results]
        )

    def offered_matrix(self, policy: str | None = None) -> np.ndarray:
        """Offered calls per seed and O-D pair, shape ``(seeds, pairs)``."""
        return np.stack(
            [result.offered for result in self._outcome_for(policy).results]
        )

    def blocked_matrix(self, policy: str | None = None) -> np.ndarray:
        """Blocked calls per seed and O-D pair, shape ``(seeds, pairs)``."""
        return np.stack(
            [result.blocked for result in self._outcome_for(policy).results]
        )

    @property
    def backends(self) -> dict[str, str]:
        """Which execution backend produced each policy's replications."""
        return {
            name: outcome.backend or "per-seed"
            for name, outcome in self.outcomes.items()
        }


def run_scenario(
    scenario: Scenario,
    *,
    seed: int = 0,
    duration: float = PAPER_CONFIG.duration,
    warmup: float = PAPER_CONFIG.warmup,
    reference: bool | None = None,
    backend: str | None = None,
) -> SimulationResult:
    """Simulate one seed of a scenario; returns the full per-pair result.

    ``duration`` is total simulated time including the ``warmup`` transient
    (the paper's protocol: 110 units, first 10 discarded).  ``backend``
    selects the simulation engine — ``"auto"`` (default), ``"batch"``,
    ``"fast"``, or ``"reference"`` for the unvectorized oracle loop; all
    produce bit-identical statistics.  The legacy ``reference=True`` flag
    maps to ``backend="reference"`` with a :class:`DeprecationWarning`.
    """
    resolved = resolve_backend(backend, reference, owner="run_scenario")
    trace = scenario.make_trace(duration, seed)
    return simulate(
        scenario.network, scenario.build_policy(), trace, warmup,
        backend=resolved,
    )


def run_study(
    scenario: Scenario,
    *,
    policies: tuple[str, ...] | None = None,
    config: ReplicationConfig = PAPER_CONFIG,
    parallel: bool = False,
    max_workers: int | None = None,
    seed_timeout: float | None = None,
    max_seed_retries: int = 1,
    lab: LabConfig | None = None,
    backend: str = "auto",
) -> StudyResult:
    """Run the paper's multi-seed replication protocol for a scenario.

    By default runs the scenario's own policy over ``config.seeds``;
    ``policies`` widens the study to several schemes on common random
    numbers (identical traces per seed, the paper's comparison discipline).
    ``parallel=True`` fans seeds over a process pool with the hardened
    runner's timeout/retry/fallback machinery.

    ``backend`` selects the execution engine per replication group.  Under
    ``"auto"`` (and ``"batch"``) the serial path groups compatible seeds
    into one lockstep batch-kernel invocation, falling back to the per-seed
    loops for configurations the kernel cannot express (and for parallel
    pools, which stay per-seed by construction); ``"fast"`` / ``"reference"``
    force the per-seed loops.  Results are bit-identical across backends;
    when the batch kernel ran, the returned study is a :class:`BatchResult`.

    ``lab=LabConfig(...)`` routes the study through :mod:`repro.lab`: each
    ``(policy, seed)`` replication is looked up in a content-addressed
    result store before simulating, finished jobs are checkpointed so an
    interrupted study resumes where it stopped, and progress is logged as
    JSONL telemetry.  The returned statistics are bit-identical to a direct
    run; the pass's report rides along as ``StudyResult.lab``.
    (``seed_timeout`` applies only to the direct path.)

    Per-seed diagnostics ride along on each policy's
    :class:`~repro.experiments.runner.ReplicationOutcome` as
    :class:`~repro.experiments.runner.SeedStatus` entries:
    ``SeedStatus.wall_clock`` is the successful attempt's in-process
    compute time in seconds (pool queueing excluded, ``None`` until the
    seed completes) and ``SeedStatus.cached`` marks seeds a lab pass
    served from its result store without simulating — so
    ``wall_clock`` then measures the store lookup, not a simulation.
    """
    backend = resolve_backend(backend, None, owner="run_study")
    if lab is not None:
        from .lab.scheduler import run_lab_study

        return run_lab_study(
            scenario, policies=policies, config=config, lab=lab,
            parallel=parallel, max_workers=max_workers,
            max_seed_retries=max_seed_retries, backend=backend,
        )
    names = (scenario.policy,) if policies is None else tuple(policies)
    workload = scenario.resolved_workload(config.duration)
    traces = None
    if not parallel:
        traces = [
            scenario.make_trace(config.duration, seed) for seed in config.seeds
        ]
    outcomes: dict[str, ReplicationOutcome] = {}
    for name in names:
        outcomes[name] = run_replications_detailed(
            scenario.network, scenario.build_policy(name),
            scenario.traffic_matrix, config,
            traces=traces, parallel=parallel, max_workers=max_workers,
            seed_timeout=seed_timeout, max_seed_retries=max_seed_retries,
            workload=workload, backend=backend,
        )
    cls = (
        BatchResult
        if any(outcome.backend == "batch" for outcome in outcomes.values())
        else StudyResult
    )
    return cls(outcomes=outcomes, config=config)
