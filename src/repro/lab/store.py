"""Content-addressed result store: finished replications, keyed by meaning.

Layout (all plain JSON, one document per file, atomic writes)::

    <root>/objects/<k[:2]>/<key>.json   one simulated replication
    <root>/studies/<study>.json         one study manifest (job roster)

Objects are immutable once written — the key *is* the content identity
(scenario + policy + window + seed + result-schema version, see
:mod:`repro.lab.hashing`), so a hit can be returned without re-simulating
and two overlapping studies share entries.  Manifests record which jobs a
study owns and their status; they are rewritten as jobs finish, which is
what makes a killed study resumable.  ``gc`` removes objects no manifest
references.

Serialization is exact: integer counter arrays round-trip with their dtype,
floats round-trip through JSON's shortest-repr form, so a cached result is
bit-identical to the freshly simulated one (the lab's core guarantee).

This store supersedes the flat v1 sweep documents of
:mod:`repro.experiments.storage`; the v1→v2 migration shim those documents
pass through on load lives here (:func:`migrate_sweep_document`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..sim.metrics import SimulationResult

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "ResultStore",
    "result_to_document",
    "result_from_document",
    "migrate_sweep_document",
]

#: Version of the simulated-result semantics baked into job keys.  Bump it
#: whenever the simulator's statistics change meaning: every cached result
#: keyed under the old version then misses, forcing re-simulation instead of
#: silently serving stale numbers.
RESULT_SCHEMA_VERSION = 1

_RESULT_SCHEMA = "repro-lab-result-v1"
_MANIFEST_SCHEMA = "repro-lab-study-v1"


def repro_version() -> str:
    """The installed package version (lazy: repro may be mid-import)."""
    import repro

    return getattr(repro, "__version__", "unknown")


def _int_array_to_doc(array: np.ndarray) -> dict:
    return {"dtype": str(array.dtype), "values": array.tolist()}


def _int_array_from_doc(doc: dict) -> np.ndarray:
    return np.asarray(doc["values"], dtype=np.dtype(doc["dtype"]))


def result_to_document(result: SimulationResult, provenance: dict | None = None) -> dict:
    """Exact JSON form of one simulation result (plus optional provenance)."""
    return {
        "schema": _RESULT_SCHEMA,
        "provenance": provenance or {},
        "od_pairs": [list(od) for od in result.od_pairs],
        "offered": _int_array_to_doc(result.offered),
        "blocked": _int_array_to_doc(result.blocked),
        "primary_carried": result.primary_carried,
        "alternate_carried": result.alternate_carried,
        "warmup": result.warmup,
        "duration": result.duration,
        "seed": result.seed,
        "class_names": list(result.class_names),
        "class_offered": _int_array_to_doc(result.class_offered),
        "class_blocked": _int_array_to_doc(result.class_blocked),
        "dropped": None if result.dropped is None else _int_array_to_doc(result.dropped),
    }


def result_from_document(document: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` bit-identically from its document."""
    if document.get("schema") != _RESULT_SCHEMA:
        raise ValueError(
            f"unrecognized result schema {document.get('schema')!r}; "
            f"expected {_RESULT_SCHEMA!r}"
        )
    dropped = document.get("dropped")
    return SimulationResult(
        od_pairs=tuple(tuple(od) for od in document["od_pairs"]),
        offered=_int_array_from_doc(document["offered"]),
        blocked=_int_array_from_doc(document["blocked"]),
        primary_carried=int(document["primary_carried"]),
        alternate_carried=int(document["alternate_carried"]),
        warmup=float(document["warmup"]),
        duration=float(document["duration"]),
        seed=int(document["seed"]),
        class_names=tuple(document.get("class_names", ())),
        class_offered=_int_array_from_doc(document["class_offered"]),
        class_blocked=_int_array_from_doc(document["class_blocked"]),
        dropped=None if dropped is None else _int_array_from_doc(dropped),
    )


def _write_atomic(path: Path, document: dict) -> None:
    """Write JSON via a temp file + rename so a kill never leaves half a doc."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True))
    os.replace(tmp, path)


class ResultStore:
    """Content-addressed replication results plus study manifests."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------- objects

    def object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.object_path(key).exists()

    def put(self, key: str, document: dict) -> None:
        """Store one object (idempotent: same key, same content)."""
        _write_atomic(self.object_path(key), document)

    def get(self, key: str) -> dict | None:
        path = self.object_path(key)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def put_result(
        self, key: str, result: SimulationResult, provenance: dict | None = None
    ) -> None:
        self.put(key, result_to_document(result, provenance))

    def get_result(self, key: str) -> SimulationResult | None:
        document = self.get(key)
        if document is None:
            return None
        return result_from_document(document)

    def keys(self) -> list[str]:
        objects = self.root / "objects"
        if not objects.exists():
            return []
        return sorted(path.stem for path in objects.glob("*/*.json"))

    # ----------------------------------------------------------- manifests

    def manifest_path(self, study: str) -> Path:
        return self.root / "studies" / f"{study}.json"

    def save_manifest(self, study: str, manifest: dict) -> None:
        manifest = {"schema": _MANIFEST_SCHEMA, **manifest}
        _write_atomic(self.manifest_path(study), manifest)

    def load_manifest(self, study: str) -> dict | None:
        path = self.manifest_path(study)
        if not path.exists():
            return None
        manifest = json.loads(path.read_text())
        if manifest.get("schema") != _MANIFEST_SCHEMA:
            raise ValueError(
                f"unrecognized study manifest schema {manifest.get('schema')!r}"
            )
        return manifest

    def list_studies(self) -> list[str]:
        studies = self.root / "studies"
        if not studies.exists():
            return []
        return sorted(path.stem for path in studies.glob("*.json"))

    # ------------------------------------------------------- maintenance

    def stats(self) -> dict:
        """Object/manifest counts and on-disk size, for ``lab ls``."""
        objects = self.keys()
        size = sum(self.object_path(key).stat().st_size for key in objects)
        return {
            "root": str(self.root),
            "objects": len(objects),
            "bytes": size,
            "studies": len(self.list_studies()),
        }

    def referenced_keys(self) -> set[str]:
        """Every object key referenced by any study manifest."""
        referenced: set[str] = set()
        for study in self.list_studies():
            manifest = self.load_manifest(study)
            if manifest is None:
                continue
            referenced.update(manifest.get("jobs", {}).keys())
        return referenced

    def gc(self) -> dict:
        """Delete objects no manifest references; returns removal counts."""
        referenced = self.referenced_keys()
        removed = 0
        for key in self.keys():
            if key not in referenced:
                self.object_path(key).unlink()
                removed += 1
        # Sweep now-empty fan-out directories so the tree stays tidy.
        objects = self.root / "objects"
        if objects.exists():
            for bucket in objects.iterdir():
                if bucket.is_dir() and not any(bucket.iterdir()):
                    bucket.rmdir()
        return {"removed": removed, "kept": len(self.keys())}


def migrate_sweep_document(document: dict) -> dict:
    """Upgrade a v1 sweep document to the v2 (provenance-carrying) form.

    v1 files predate provenance tracking: the shim stamps an explicit
    ``provenance: None`` so readers can distinguish "legacy file, nothing
    to check" from "provenance present, verify it".  v2 documents pass
    through unchanged.
    """
    schema = document.get("schema")
    if schema == "repro-sweep-v2":
        return document
    if schema == "repro-sweep-v1":
        upgraded = dict(document)
        upgraded["schema"] = "repro-sweep-v2"
        upgraded.setdefault("provenance", None)
        return upgraded
    raise ValueError(
        f"unrecognized sweep file schema {schema!r}; "
        "expected 'repro-sweep-v1' or 'repro-sweep-v2'"
    )
