"""repro.lab — content-addressed study orchestration.

The orchestration tier above :mod:`repro.api`: a content-addressed result
store so overlapping studies reuse finished replications
(:mod:`repro.lab.store`), a resumable per-job scheduler with crash-safe
checkpointing (:mod:`repro.lab.scheduler`), structured JSONL progress
telemetry (:mod:`repro.lab.events`), and the canonical hashing that keys it
all (:mod:`repro.lab.hashing`).  Entry points::

    from repro.api import Scenario, run_study, LabConfig

    study = run_study(Scenario(), parallel=True,
                      lab=LabConfig(store="results/lab"))
    print(study.lab.describe())     # cache hits vs simulated, elapsed

    study = run_study(Scenario(), lab=LabConfig(store="results/lab"))
    assert study.lab.cache_hits == study.lab.total_jobs   # second pass: free

or from the command line::

    repro-routing lab run --topology nsfnet --traffic nominal --seeds 10
    repro-routing lab status
    repro-routing lab resume
"""

from __future__ import annotations

from .config import DEFAULT_STORE, LabConfig
from .events import EventBus, read_events
from .hashing import (
    canonical_json,
    config_signature,
    content_hash,
    job_key,
    scenario_signature,
    study_key,
)
from .store import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    migrate_sweep_document,
    result_from_document,
    result_to_document,
)

__all__ = [
    "LabConfig",
    "DEFAULT_STORE",
    "EventBus",
    "read_events",
    "canonical_json",
    "content_hash",
    "scenario_signature",
    "config_signature",
    "job_key",
    "study_key",
    "RESULT_SCHEMA_VERSION",
    "ResultStore",
    "result_to_document",
    "result_from_document",
    "migrate_sweep_document",
    # lazy (see __getattr__): scheduler exports
    "JobSpec",
    "LabRunReport",
    "LabInterrupted",
    "run_lab_study",
]

_SCHEDULER_EXPORTS = {"JobSpec", "LabRunReport", "LabInterrupted", "run_lab_study",
                      "study_manifest_spec", "scenario_from_spec"}


def __getattr__(name: str):
    # The scheduler imports repro.api (for Scenario/StudyResult) while
    # repro.api imports repro.lab.config (for LabConfig); loading the
    # scheduler lazily breaks that cycle.
    if name in _SCHEDULER_EXPORTS:
        from . import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
