"""Resumable study runner: decompose, cache-check, schedule, checkpoint.

A *study* (one :class:`~repro.api.Scenario`, one or more policies, one
replication window, N seeds) decomposes into per-``(policy, seed)`` *jobs*.
Each job is keyed by content (:mod:`repro.lab.hashing`) and looked up in the
:class:`~repro.lab.store.ResultStore` first; only misses are simulated.
Every finished job is checkpointed to the store *immediately* and the study
manifest rewritten, so a crash or interrupt loses at most the jobs that
were in flight — rerunning the identical call (or ``repro-routing lab
resume``) picks up exactly where the run stopped.

Determinism: a job is ``generate_trace(traffic, duration, seed)`` followed
by ``simulate(...)`` — fully determined by its key — so a resumed study is
bit-identical to an uninterrupted one, and a repeated study completes with
100% cache hits and zero simulation work (the common-random-numbers
discipline survives because traces are regenerated from the seed, never
stored).

Parallel scheduling reuses the hardened runner's pool-initializer worker
context (:func:`repro.experiments.runner._install_worker_context`): the
network/policy/traffic are pickled once per worker, payloads are bare
seeds, and per-job compute time is measured inside the worker for ETA
telemetry.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..experiments.runner import (
    PAPER_CONFIG,
    ReplicationConfig,
    ReplicationOutcome,
    SeedStatus,
    _install_worker_context,
    _shared_context_worker,
    _timed_call,
)
from ..sim.metrics import aggregate
from .config import LabConfig
from .events import EventBus
from .hashing import config_signature, job_key, scenario_signature, study_key
from .store import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    repro_version,
    result_from_document,
)

__all__ = [
    "JobSpec",
    "LabRunReport",
    "LabInterrupted",
    "run_lab_study",
    "study_manifest_spec",
    "scenario_from_spec",
]


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit: a single policy x seed replication."""

    policy: str
    seed: int
    key: str


@dataclass
class LabRunReport:
    """What one lab pass did: cache reuse, simulation work, telemetry."""

    study: str
    store: str
    events: str | None
    total_jobs: int
    cache_hits: int = 0
    simulated: int = 0
    failed: int = 0
    interrupted: bool = False
    elapsed: float = 0.0
    job_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.cache_hits + self.simulated == self.total_jobs

    def describe(self) -> str:
        state = "interrupted" if self.interrupted else (
            "complete" if self.complete else "incomplete"
        )
        return (
            f"study {self.study}: {state} — {self.total_jobs} jobs, "
            f"{self.cache_hits} cache hits, {self.simulated} simulated, "
            f"{self.failed} failed, {self.elapsed:.2f}s"
        )


class LabInterrupted(RuntimeError):
    """A lab run stopped before finishing (``max_jobs`` cut or Ctrl-C).

    Carries the :class:`LabRunReport`; everything already finished is
    checkpointed, so rerunning the same study resumes it.
    """

    def __init__(self, report: LabRunReport):
        super().__init__(report.describe())
        self.report = report


def study_manifest_spec(scenario) -> dict:
    """The declarative scenario spec stored in a manifest for CLI resume.

    Only string/number specs survive the JSON round trip; studies built
    from concrete ``Network``/``TrafficMatrix`` objects are still resumable
    by re-invoking :func:`run_lab_study` with the same objects (the content
    hash matches), just not from the CLI alone.
    """
    workload = getattr(scenario, "workload", None)
    resumable = (
        isinstance(scenario.topology, str)
        and isinstance(scenario.traffic, (str, int, float))
        and (workload is None or isinstance(workload, str))
    )
    return {
        "resumable": resumable,
        "topology": scenario.topology if resumable else None,
        "traffic": scenario.traffic if resumable else None,
        "policy": scenario.policy,
        "max_hops": scenario.max_hops,
        "load_scale": scenario.load_scale,
        "workload": workload if resumable else None,
    }


def scenario_from_spec(spec: dict):
    """Rebuild a Scenario from a manifest spec (CLI ``lab resume``)."""
    from ..api import Scenario

    if not spec.get("resumable"):
        raise ValueError(
            "study was built from in-memory network/traffic objects; resume "
            "it by re-running the same repro.api.run_study(..., lab=...) call"
        )
    return Scenario(
        topology=spec["topology"],
        traffic=spec["traffic"],
        policy=spec["policy"],
        max_hops=spec["max_hops"],
        load_scale=spec["load_scale"],
        workload=spec.get("workload"),
    )


def _initial_manifest(
    scenario, names, config, jobs, skey, scenario_sig, config_sig
) -> dict:
    return {
        "study": skey,
        "repro_version": repro_version(),
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "spec": study_manifest_spec(scenario),
        "scenario_signature": scenario_sig,
        "config": {
            "measured_duration": config.measured_duration,
            "warmup": config.warmup,
            "seeds": list(config.seeds),
        },
        "config_signature": config_sig,
        "policies": list(names),
        "jobs": {
            job.key: {"policy": job.policy, "seed": job.seed, "status": "pending"}
            for job in jobs
        },
    }


class _StudyRun:
    """Mutable state of one scheduling pass over a study's job roster."""

    def __init__(self, store, bus, manifest, skey, lab, total_jobs):
        self.store = store
        self.bus = bus
        self.manifest = manifest
        self.skey = skey
        self.lab = lab
        self.report = LabRunReport(
            study=skey,
            store=str(store.root),
            events=None if bus.path is None else str(bus.path),
            total_jobs=total_jobs,
        )
        self._started = time.perf_counter()
        self._finished_since_progress = 0

    def job_entry(self, job: JobSpec) -> dict:
        return self.manifest["jobs"][job.key]

    def record_cache_hit(self, job: JobSpec) -> None:
        entry = self.job_entry(job)
        entry["status"] = "cached"
        self.report.cache_hits += 1
        self.bus.emit(
            "job_cache_hit", study=self.skey, job=job.key,
            policy=job.policy, seed=job.seed,
        )

    def record_started(self, job: JobSpec, worker: str) -> None:
        self.job_entry(job)["status"] = "running"
        self.bus.emit(
            "job_started", study=self.skey, job=job.key,
            policy=job.policy, seed=job.seed, worker=worker,
        )

    def record_finished(self, job: JobSpec, elapsed: float) -> None:
        entry = self.job_entry(job)
        entry["status"] = "done"
        entry["elapsed"] = elapsed
        self.report.simulated += 1
        self.report.job_seconds[job.key] = elapsed
        self.bus.emit(
            "job_finished", study=self.skey, job=job.key,
            policy=job.policy, seed=job.seed, elapsed=elapsed,
        )
        self.checkpoint()
        self._finished_since_progress += 1
        if self._finished_since_progress >= self.lab.progress_every:
            self._finished_since_progress = 0
            self.emit_progress()

    def record_failed(self, job: JobSpec, error: str, attempts: int) -> None:
        entry = self.job_entry(job)
        entry["status"] = "failed"
        entry["error"] = error
        self.report.failed += 1
        self.bus.emit(
            "job_failed", study=self.skey, job=job.key,
            policy=job.policy, seed=job.seed, error=error, attempts=attempts,
        )
        self.checkpoint()

    def checkpoint(self) -> None:
        self.store.save_manifest(self.skey, self.manifest)

    def emit_progress(self) -> None:
        done = self.report.cache_hits + self.report.simulated
        remaining = self.report.total_jobs - done - self.report.failed
        seconds = list(self.report.job_seconds.values())
        mean = sum(seconds) / len(seconds) if seconds else None
        elapsed = time.perf_counter() - self._started
        throughput = self.report.simulated / elapsed if elapsed > 0 else None
        self.bus.emit(
            "progress", study=self.skey, done=done,
            total=self.report.total_jobs, cache_hits=self.report.cache_hits,
            simulated=self.report.simulated, failed=self.report.failed,
            mean_job_seconds=mean, jobs_per_sec=throughput,
            eta_seconds=None if not throughput or remaining == 0
            else remaining / throughput,
        )

    @property
    def budget_left(self) -> bool:
        if self.lab.max_jobs is None:
            return True
        return self.report.simulated < self.lab.max_jobs


def _provenance(scenario_sig, config_sig, job: JobSpec, backend: str = "auto") -> dict:
    # The backend is recorded for provenance, never hashed into job_key:
    # every engine is bit-identical, so results produced by one backend must
    # keep cache-hitting runs requested under another.
    return {
        "repro_version": repro_version(),
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "scenario": scenario_sig,
        "policy": job.policy,
        "config": config_sig,
        "seed": job.seed,
        "backend": backend,
    }


def _simulate_job(scenario, policy_obj, config: ReplicationConfig, seed: int,
                  backend: str = "auto"):
    """One job, in-process: regenerate the trace, simulate, time it."""
    from ..sim.simulator import simulate

    def worker(seed):
        trace = scenario.make_trace(config.duration, seed)
        return simulate(scenario.network, policy_obj, trace, config.warmup,
                        backend=backend)

    return _timed_call(worker, seed)


def _run_group_batch(run, scenario, scenario_sig, config_sig, config,
                     policy_name, group) -> bool | None:
    """Try one policy's pending seeds as a single lockstep batch-kernel run.

    Returns ``True``/``False`` with the usual budget meaning when the batch
    kernel handled the group, ``None`` when it could not (inexpressible
    configuration, a lone seed, or a kernel error) — the caller then falls
    back to the per-seed serial path.  Respects ``max_jobs`` by truncating
    the group to the remaining budget; the cut seeds stay pending for the
    resume pass, exactly as the serial scheduler leaves them.
    """
    from ..sim.batch import batch_ineligibility, simulate_batch

    budget = None
    if run.lab.max_jobs is not None:
        budget = max(0, run.lab.max_jobs - run.report.simulated)
        if budget == 0:
            return False
    truncated = budget is not None and budget < len(group)
    batch_group = group[:budget] if truncated else list(group)
    if len(batch_group) < 2:
        return None
    policy_obj = scenario.build_policy(policy_name)
    traces = [scenario.make_trace(config.duration, job.seed)
              for job in batch_group]
    if batch_ineligibility(policy_obj, traces) is not None:
        return None
    for job in batch_group:
        run.record_started(job, worker="batch")
    start = time.perf_counter()
    try:
        results = simulate_batch(
            scenario.network, policy_obj, traces, config.warmup
        )
    except Exception:  # noqa: BLE001 - the serial path is the safety net
        for job in batch_group:
            run.job_entry(job)["status"] = "pending"
        return None
    share = (time.perf_counter() - start) / len(batch_group)
    for job, result in zip(batch_group, results):
        run.store.put_result(
            job.key, result,
            _provenance(scenario_sig, config_sig, job, backend="batch"),
        )
        run.record_finished(job, share)
    return not truncated


def _run_group_serial(run, scenario, scenario_sig, config_sig, config,
                      policy_name, group, max_seed_retries, backend="auto"):
    policy_obj = scenario.build_policy(policy_name)
    for job in group:
        if not run.budget_left:
            return False
        run.record_started(job, worker="serial")
        attempts = 0
        while True:
            attempts += 1
            try:
                elapsed, result = _simulate_job(
                    scenario, policy_obj, config, job.seed, backend=backend
                )
            except Exception as exc:  # noqa: BLE001 - report, keep scheduling
                if attempts > max_seed_retries:
                    run.record_failed(job, f"{type(exc).__name__}: {exc}", attempts)
                    break
            else:
                run.store.put_result(
                    job.key, result,
                    _provenance(scenario_sig, config_sig, job, backend=backend),
                )
                run.record_finished(job, elapsed)
                break
    return True


def _run_group_parallel(run, scenario, scenario_sig, config_sig, config,
                        policy_name, group, max_workers, max_seed_retries):
    """Fan one policy's pending seeds over the shared-context process pool."""
    policy_obj = scenario.build_policy(policy_name)
    attempts: dict[str, int] = {job.key: 0 for job in group}
    queue = list(group)
    budget_exhausted = False
    with ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_install_worker_context,
        initargs=(scenario.network, policy_obj, scenario.traffic_matrix,
                  config.duration, config.warmup,
                  scenario.resolved_workload(config.duration)),
    ) as pool:
        inflight = {}
        workers = max_workers or (os.cpu_count() or 1)

        def submit_next():
            while queue and len(inflight) < workers:
                job = queue.pop(0)
                attempts[job.key] += 1
                run.record_started(job, worker="pool")
                inflight[pool.submit(_timed_call, _shared_context_worker, job.seed)] = job

        submit_next()
        while inflight:
            done, __ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                job = inflight.pop(future)
                try:
                    elapsed, result = future.result()
                except Exception as exc:  # noqa: BLE001 - retry, then report
                    if attempts[job.key] <= max_seed_retries:
                        queue.append(job)
                    else:
                        run.record_failed(
                            job, f"{type(exc).__name__}: {exc}", attempts[job.key]
                        )
                else:
                    run.store.put_result(
                        job.key, result, _provenance(scenario_sig, config_sig, job)
                    )
                    run.record_finished(job, elapsed)
            if not run.budget_left:
                budget_exhausted = True
                queue.clear()
                for future, job in list(inflight.items()):
                    if future.cancel():
                        run.job_entry(job)["status"] = "pending"
                        del inflight[future]
                # Futures already running cannot be cancelled; let them
                # finish and checkpoint rather than discarding real work.
            submit_next()
    return not budget_exhausted


def run_lab_study(
    scenario,
    *,
    policies: tuple[str, ...] | None = None,
    config: ReplicationConfig = PAPER_CONFIG,
    lab: LabConfig | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    max_seed_retries: int = 1,
    backend: str = "auto",
):
    """Run (or resume) a study through the content-addressed lab.

    The public entry point behind ``repro.api.run_study(..., lab=...)``.
    Returns the same :class:`~repro.api.StudyResult` a direct run produces
    — bit-identical, whatever mix of cache hits and fresh simulation served
    it — with the pass's :class:`LabRunReport` attached as ``.lab``
    (a :class:`~repro.api.BatchResult` when the lockstep batch kernel
    produced any of the results, this pass or a cached earlier one).

    ``backend`` selects the execution engine.  Under ``"auto"``/``"batch"``
    the serial scheduler runs each policy's pending seeds as one lockstep
    batch-kernel group when the configuration allows, falling back per seed
    otherwise; ``"fast"``/``"reference"`` force the per-seed loops.  Job
    keys never include the backend — every engine is bit-identical — so
    cached results keep hitting whatever backend produced them; the engine
    is recorded in each stored result's provenance instead.

    Raises :class:`LabInterrupted` when the pass stops early (``max_jobs``
    budget or ``KeyboardInterrupt``); completed jobs are already
    checkpointed, so the identical call resumes the study.
    """
    from ..api import BatchResult, StudyResult
    from .._compat import resolve_backend

    backend = resolve_backend(backend, None, owner="run_lab_study")
    lab = lab if lab is not None else LabConfig()
    store = ResultStore(lab.store_path)
    names = (scenario.policy,) if policies is None else tuple(policies)
    scenario_sig = scenario_signature(scenario)
    config_sig = config_signature(config)
    jobs = [
        JobSpec(policy=name, seed=seed,
                key=job_key(scenario_sig, name, config_sig, seed,
                            RESULT_SCHEMA_VERSION))
        for name in names
        for seed in config.seeds
    ]
    skey = study_key(scenario_sig, names, config_sig, tuple(config.seeds),
                     RESULT_SCHEMA_VERSION)
    manifest = store.load_manifest(skey)
    if manifest is None:
        manifest = _initial_manifest(
            scenario, names, config, jobs, skey, scenario_sig, config_sig
        )
    events_path = (
        lab.events if lab.events is not None
        else store.root / "events" / f"{skey}.jsonl"
    )
    bus = EventBus(events_path)
    run = _StudyRun(store, bus, manifest, skey, lab, total_jobs=len(jobs))
    started = time.perf_counter()
    try:
        cached = [job for job in jobs if job.key in store]
        pending = [job for job in jobs if job.key not in store]
        bus.emit(
            "study_started", study=skey, total_jobs=len(jobs),
            cached=len(cached), pending=len(pending),
            policies=list(names), seeds=list(config.seeds),
            parallel=parallel, repro_version=repro_version(),
        )
        for job in cached:
            run.record_cache_hit(job)
        run.checkpoint()
        finished_all = True
        for name in names:
            group = [job for job in pending if job.policy == name]
            if not group:
                continue
            if parallel:
                ok = _run_group_parallel(
                    run, scenario, scenario_sig, config_sig, config,
                    name, group, max_workers, max_seed_retries,
                )
            else:
                ok = None
                if backend in ("auto", "batch"):
                    ok = _run_group_batch(
                        run, scenario, scenario_sig, config_sig, config,
                        name, group,
                    )
                if ok is None:
                    per_seed = backend if backend in ("fast", "reference") else "auto"
                    ok = _run_group_serial(
                        run, scenario, scenario_sig, config_sig, config,
                        name, group, max_seed_retries, backend=per_seed,
                    )
            if not ok:
                finished_all = False
                break
    except KeyboardInterrupt:
        run.report.interrupted = True
        run.report.elapsed = time.perf_counter() - started
        run.checkpoint()
        bus.emit("study_interrupted", study=skey, reason="keyboard-interrupt",
                 simulated=run.report.simulated, cache_hits=run.report.cache_hits)
        bus.close()
        raise LabInterrupted(run.report) from None
    run.report.elapsed = time.perf_counter() - started
    if not finished_all or not run.report.complete:
        run.report.interrupted = not finished_all
        run.checkpoint()
        bus.emit(
            "study_interrupted" if run.report.interrupted else "study_incomplete",
            study=skey, reason="max-jobs budget" if run.report.interrupted
            else "failed jobs", simulated=run.report.simulated,
            cache_hits=run.report.cache_hits, failed=run.report.failed,
        )
        bus.close()
        raise LabInterrupted(run.report)
    outcomes = {}
    for name in names:
        results, statuses = [], []
        for seed in config.seeds:
            job = next(j for j in jobs if j.policy == name and j.seed == seed)
            document = store.get(job.key)
            result = result_from_document(document)
            job_backend = (document.get("provenance") or {}).get("backend")
            entry = manifest["jobs"][job.key]
            cached_job = job.key not in run.report.job_seconds
            statuses.append(SeedStatus(
                seed=seed, completed=True,
                attempts=0 if cached_job else 1,
                cached=cached_job,
                wall_clock=entry.get("elapsed"),
                backend=job_backend,
            ))
            results.append(result)
        stat = aggregate([result.network_blocking for result in results])
        group_backend = (
            "batch"
            if any(s.backend == "batch" for s in statuses)
            else backend if backend in ("fast", "reference") else "auto"
        )
        outcomes[name] = ReplicationOutcome(
            stat, results, statuses, backend=group_backend
        )
    run.emit_progress()
    bus.emit(
        "study_finished", study=skey, total_jobs=len(jobs),
        cache_hits=run.report.cache_hits, simulated=run.report.simulated,
        elapsed=run.report.elapsed,
    )
    bus.close()
    cls = (
        BatchResult
        if any(outcome.backend == "batch" for outcome in outcomes.values())
        else StudyResult
    )
    return cls(outcomes=outcomes, config=config, lab=run.report)
