"""Lab run configuration: the ``lab=`` knob of :func:`repro.api.run_study`.

Kept free of heavy imports so :mod:`repro.api` can re-export
:class:`LabConfig` without pulling the scheduler (and its process-pool
machinery) into every ``import repro``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["LabConfig", "DEFAULT_STORE"]

#: Default result-store root, relative to the current working directory.
DEFAULT_STORE = Path(".repro-lab")


@dataclass(frozen=True, kw_only=True)
class LabConfig:
    """How a study is orchestrated through the lab.

    ``store``
        Root directory of the content-addressed result store.  Created on
        first use; safe to share between studies (that sharing is the
        point — overlapping studies reuse each other's replications).
    ``events``
        JSONL telemetry path.  ``None`` places the log inside the store
        (``events/<study-key>.jsonl``); pass an explicit path to aggregate
        several studies into one stream.
    ``max_jobs``
        Execute at most this many *simulated* jobs (cache hits are free),
        then stop and checkpoint.  ``None`` = run to completion.  This is
        the deterministic stand-in for an interrupt: the CI smoke test and
        the resume tests use it to stop a study halfway.
    ``progress_every``
        Emit a ``progress`` event (ETA, throughput) after every N finished
        jobs.
    """

    store: str | Path = DEFAULT_STORE
    events: str | Path | None = None
    max_jobs: int | None = None
    progress_every: int = 1

    def __post_init__(self):
        if self.max_jobs is not None and self.max_jobs < 0:
            raise ValueError("max_jobs must be non-negative")
        if self.progress_every < 1:
            raise ValueError("progress_every must be at least 1")

    @property
    def store_path(self) -> Path:
        return Path(self.store)
