"""Canonical hashing: stable content keys for scenarios, configs and jobs.

The lab's result store is content-addressed: one simulated replication is
keyed by everything that determines its outcome — the scenario (topology,
traffic, policy, hop cap, load scale), the replication window (duration,
warm-up), the seed, and the simulator's result-schema version.  Two studies
that overlap in any of those points share the cached result; changing any
ingredient changes the key.

Hashes are SHA-256 over a canonical JSON form: sorted keys, no whitespace,
floats rendered by ``repr`` (shortest round-trip form, so ``1.2`` hashes the
same from every code path that means the bit pattern ``1.2``).  Concrete
:class:`~repro.topology.graph.Network` and
:class:`~repro.traffic.matrix.TrafficMatrix` objects hash by value (links,
capacities, failed set; per-pair demands), so a custom mesh built twice from
the same data reuses its cache.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..api import Scenario
    from ..experiments.runner import ReplicationConfig

__all__ = [
    "canonical_json",
    "content_hash",
    "scenario_signature",
    "config_signature",
    "job_key",
    "study_key",
]


def _canonical(value: Any) -> Any:
    """Recursively normalize a value into JSON-stable primitives."""
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, float):
        # repr() is the shortest round-trip form; json.dumps uses it too,
        # but normalizing here keeps integer-valued floats distinct from
        # ints only when the caller meant them to be.
        return value
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(
        _canonical(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def _network_signature(network) -> dict:
    """Hash a concrete Network by value: nodes, links, failed set."""
    return {
        "num_nodes": network.num_nodes,
        "links": [
            [link.src, link.dst, link.capacity] for link in network.links
        ],
        "failed": sorted(network.failed_links),
    }


def _traffic_signature(traffic) -> dict:
    """Hash a concrete TrafficMatrix by its positive demands."""
    return {
        "num_nodes": traffic.num_nodes,
        "demands": [
            [i, j, value] for (i, j), value in traffic.positive_pairs()
        ],
    }


def scenario_signature(scenario: "Scenario") -> dict:
    """The JSON-stable description of everything a Scenario pins down.

    String/number specs (``"nsfnet"``, ``"nominal"``, a per-pair Erlang
    value) are recorded as given; concrete objects are serialized by value
    so equal custom networks/matrices share cache entries.  The policy is
    *not* part of the scenario signature — jobs carry their policy name
    separately so multi-policy studies share one scenario identity.
    """
    from ..topology.graph import Network
    from ..traffic.matrix import TrafficMatrix

    topology = scenario.topology
    if isinstance(topology, Network):
        topology = _network_signature(topology)
    traffic = scenario.traffic
    if isinstance(traffic, TrafficMatrix):
        traffic = _traffic_signature(traffic)
    elif isinstance(traffic, (int, float)):
        traffic = float(traffic)
    signature = {
        "topology": topology,
        "traffic": traffic,
        "max_hops": scenario.max_hops,
        "load_scale": float(scenario.load_scale),
    }
    # The workload key exists only when a workload is set: stationary
    # scenarios keep their historical cache keys (and their cached results).
    # Spec strings are recorded as given — together with the config's window
    # they pin the resolved workload — while concrete Workload objects hash
    # by content, so editing any pair's profile invalidates the cache.
    workload = getattr(scenario, "workload", None)
    if workload is not None:
        from ..traffic.workload import Workload

        signature["workload"] = (
            workload.signature() if isinstance(workload, Workload) else workload
        )
    return signature


def config_signature(config: "ReplicationConfig") -> dict:
    """The replication-window part of a job's identity (seeds excluded).

    Seeds are deliberately left out: each job is one seed, carried in the
    job key itself, so studies over different seed sets still share the
    per-seed cache entries they have in common.
    """
    return {
        "measured_duration": float(config.measured_duration),
        "warmup": float(config.warmup),
    }


def job_key(
    scenario_sig: dict,
    policy: str,
    config_sig: dict,
    seed: int,
    schema_version: int,
) -> str:
    """Content key of one ``(scenario, policy, window, seed)`` replication."""
    return content_hash(
        {
            "kind": "repro-lab-job",
            "schema_version": schema_version,
            "scenario": scenario_sig,
            "policy": policy,
            "config": config_sig,
            "seed": int(seed),
        }
    )


def study_key(
    scenario_sig: dict,
    policies: tuple[str, ...],
    config_sig: dict,
    seeds: tuple[int, ...],
    schema_version: int,
) -> str:
    """Content key of a whole study (its manifest name in the store)."""
    return content_hash(
        {
            "kind": "repro-lab-study",
            "schema_version": schema_version,
            "scenario": scenario_sig,
            "policies": list(policies),
            "config": config_sig,
            "seeds": [int(s) for s in seeds],
        }
    )[:16]
