"""Structured progress telemetry: a JSONL event bus for lab runs.

Every scheduler action emits one flat JSON object — ``study_started``,
``job_cache_hit``, ``job_started``, ``job_finished``, ``job_failed``,
``progress`` (running ETA / throughput), ``study_interrupted``,
``study_finished`` — to an append-only JSONL file and an in-memory list.
The CLI's ``repro-routing lab status`` and the CI smoke harness consume the
file; tests consume the list.  Events are a *log*, not state: the store's
manifests remain the source of truth for what is done.

The bus is deliberately dependency-free and failure-tolerant: a broken
events path degrades to in-memory-only rather than failing the study.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import Callable, Iterator

__all__ = ["EventBus", "read_events"]


class EventBus:
    """Append-only emitter of structured lab events.

    ``path=None`` keeps events in memory only.  ``clock`` is injectable for
    deterministic tests; it must return seconds (``time.time`` compatible).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self._clock = clock
        self._events: list[dict] = []
        self._stream: io.TextIOBase | None = None
        self.path = None if path is None else Path(path)
        if self.path is not None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._stream = self.path.open("a", encoding="utf-8")
            except OSError:
                self._stream = None  # degrade to in-memory only

    @property
    def events(self) -> list[dict]:
        """Every event emitted through this bus (in memory, in order)."""
        return self._events

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the event dict (with ``kind``/``t``)."""
        event = {"kind": kind, "t": self._clock(), **fields}
        self._events.append(event)
        if self._stream is not None:
            try:
                self._stream.write(json.dumps(event, sort_keys=True) + "\n")
                self._stream.flush()
            except OSError:  # pragma: no cover - disk-full style failures
                self._stream = None
        return event

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            finally:
                self._stream = None

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: str | Path, kind: str | None = None) -> Iterator[dict]:
    """Yield events from a JSONL file, optionally filtered by ``kind``.

    Tolerates a trailing partial line (the writer may have been killed
    mid-write — exactly the crash the lab is designed to resume from).
    """
    with Path(path).open(encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if kind is None or event.get("kind") == kind:
                yield event
