"""Cellular channel-borrowing extension (Section 3.2 of the paper)."""

from .channel_borrowing import (
    FREE_BORROWING,
    NO_BORROWING,
    PROTECTED_BORROWING,
    BorrowingPolicy,
    CellularResult,
    HexCellGrid,
    protection_levels_for_grid,
    simulate_cellular,
)

__all__ = [
    "HexCellGrid",
    "BorrowingPolicy",
    "NO_BORROWING",
    "FREE_BORROWING",
    "PROTECTED_BORROWING",
    "CellularResult",
    "protection_levels_for_grid",
    "simulate_cellular",
]
