"""Channel borrowing in cellular telephony, protected by state protection.

Section 3.2 of the paper points out that its control strategy applies to any
multiple-service/multiple-resource model where an *alternate resource set*
can serve a blocked request at extra expense.  Its worked example is channel
borrowing [32, 18]: a call arriving at a cell with no idle channel may borrow
a channel from a neighboring cell, but the borrowed channel becomes locked in
the co-cells of the borrowing cell.  With a co-cell set of three cells, the
borrow consumes roughly three cells' worth of channel resource — so choosing
each cell's protection level ``r`` for ``H = 3`` guarantees (Theorem 1) that
borrowing never does worse than plain blocking, and the paper expects the
scheme to be near optimal since ``r(H=3)`` is small at ``C ~ 50``.

Model here:

* cells form a hexagonal grid; each cell owns ``channels`` channels;
* a *home* call needs one idle channel in its cell;
* a blocked call may *borrow* via any neighbor ``n``: the borrow's resource
  set is ``{n}`` plus the cells adjacent to both the borrower and ``n`` (the
  co-cells where the channel gets locked — three cells on interior hexes);
* under protection, every cell in the resource set must be below its
  threshold ``channels - r`` for the borrow to proceed.

The simulation runs on the generic :class:`repro.sim.EventQueue`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.protection import min_protection_level
from ..sim.engine import EventQueue
from ..sim.rng import substream

__all__ = [
    "HexCellGrid",
    "BorrowingPolicy",
    "NO_BORROWING",
    "FREE_BORROWING",
    "PROTECTED_BORROWING",
    "CellularResult",
    "simulate_cellular",
]


class HexCellGrid:
    """A hexagonal cell layout on an offset grid.

    ``rows x cols`` cells, row-major indices.  Interior cells have six
    neighbors; the co-cell set of a borrow ``(cell, neighbor)`` is the
    neighbor plus the (at most two) cells adjacent to both — three cells in
    the interior, matching the paper's "co-cell set consists of 3-cells".
    """

    def __init__(self, rows: int, cols: int, channels: int):
        if rows < 1 or cols < 1:
            raise ValueError("grid needs positive dimensions")
        if channels < 1:
            raise ValueError("cells need at least one channel")
        self.rows = rows
        self.cols = cols
        self.channels = channels
        self._neighbors: list[tuple[int, ...]] = []
        for cell in range(rows * cols):
            row, col = divmod(cell, cols)
            # Odd-row offset hexagonal neighborhood.
            if row % 2 == 0:
                offsets = [(-1, -1), (-1, 0), (0, -1), (0, 1), (1, -1), (1, 0)]
            else:
                offsets = [(-1, 0), (-1, 1), (0, -1), (0, 1), (1, 0), (1, 1)]
            found = []
            for dr, dc in offsets:
                r2, c2 = row + dr, col + dc
                if 0 <= r2 < rows and 0 <= c2 < cols:
                    found.append(r2 * cols + c2)
            self._neighbors.append(tuple(sorted(found)))

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def neighbors(self, cell: int) -> tuple[int, ...]:
        return self._neighbors[cell]

    def borrow_resource_set(self, cell: int, lender: int) -> tuple[int, ...]:
        """Cells consumed by borrowing from ``lender``: lender + co-cells."""
        if lender not in self._neighbors[cell]:
            raise ValueError(f"cell {lender} is not a neighbor of {cell}")
        common = set(self._neighbors[cell]) & set(self._neighbors[lender])
        return tuple(sorted({lender} | common))

    def max_resource_set_size(self) -> int:
        """The effective ``H`` of Theorem 1 for this layout (3 on interiors)."""
        best = 1
        for cell in range(self.num_cells):
            for lender in self._neighbors[cell]:
                best = max(best, len(self.borrow_resource_set(cell, lender)))
        return best


@dataclass(frozen=True)
class BorrowingPolicy:
    """How blocked calls may borrow.

    ``allow_borrowing`` turns the alternate tier on; ``protected`` applies
    per-cell state-protection levels chosen for the grid's effective ``H``.
    """

    allow_borrowing: bool
    protected: bool
    name: str


NO_BORROWING = BorrowingPolicy(allow_borrowing=False, protected=False, name="no-borrowing")
FREE_BORROWING = BorrowingPolicy(allow_borrowing=True, protected=False, name="free-borrowing")
PROTECTED_BORROWING = BorrowingPolicy(allow_borrowing=True, protected=True, name="protected-borrowing")


@dataclass(frozen=True)
class CellularResult:
    """Blocking outcome of one cellular simulation run."""

    offered: int
    blocked: int
    home_carried: int
    borrowed_carried: int

    @property
    def blocking(self) -> float:
        return self.blocked / self.offered if self.offered else 0.0


def protection_levels_for_grid(grid: HexCellGrid, loads: np.ndarray) -> np.ndarray:
    """Per-cell Theorem-1 protection levels with ``H`` = resource-set size."""
    hops = grid.max_resource_set_size()
    return np.array(
        [
            min_protection_level(float(load), grid.channels, hops)
            for load in loads
        ],
        dtype=np.int64,
    )


def simulate_cellular(
    grid: HexCellGrid,
    loads: np.ndarray,
    policy: BorrowingPolicy,
    duration: float = 100.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> CellularResult:
    """Call-by-call simulation of one borrowing policy.

    ``loads[c]`` is cell ``c``'s offered traffic in Erlangs (unit-mean
    exponential holding).  Borrow attempts try lenders in ascending cell
    index; each candidate's full resource set must satisfy the admission
    rule (a free channel everywhere, plus the protection threshold when the
    policy is protected).
    """
    loads = np.asarray(loads, dtype=float)
    if loads.shape != (grid.num_cells,):
        raise ValueError(f"loads must have shape ({grid.num_cells},)")
    if (loads < 0).any():
        raise ValueError("loads must be non-negative")
    if warmup < 0 or warmup >= duration:
        raise ValueError("warmup must lie in [0, duration)")
    thresholds = np.full(grid.num_cells, grid.channels, dtype=np.int64)
    if policy.protected:
        thresholds = grid.channels - protection_levels_for_grid(grid, loads)

    rng = substream(seed, "cellular")
    total_rate = float(loads.sum())
    count = int(rng.poisson(total_rate * duration)) if total_rate > 0 else 0
    times = np.sort(rng.uniform(0.0, duration, size=count))
    cells = rng.choice(grid.num_cells, size=count, p=loads / total_rate) if count else np.empty(0, dtype=int)
    holding = rng.exponential(1.0, size=count)

    occupancy = [0] * grid.num_cells
    capacity = grid.channels
    borrow_sets = [
        [grid.borrow_resource_set(cell, lender) for lender in grid.neighbors(cell)]
        for cell in range(grid.num_cells)
    ]
    stats = {"offered": 0, "blocked": 0, "home": 0, "borrowed": 0}
    queue = EventQueue()

    def release(_: EventQueue, cells_used: tuple[int, ...]) -> None:
        for cell in cells_used:
            occupancy[cell] -= 1

    def arrival(q: EventQueue, payload: tuple[int, float]) -> None:
        cell, hold = payload
        measured = q.now >= warmup
        if measured:
            stats["offered"] += 1
        if occupancy[cell] < capacity:
            occupancy[cell] += 1
            q.schedule_in(hold, release, (cell,))
            if measured:
                stats["home"] += 1
            return
        if policy.allow_borrowing:
            for resource_set in borrow_sets[cell]:
                if all(occupancy[c] < thresholds[c] for c in resource_set):
                    for c in resource_set:
                        occupancy[c] += 1
                    q.schedule_in(hold, release, resource_set)
                    if measured:
                        stats["borrowed"] += 1
                    return
        if measured:
            stats["blocked"] += 1

    for i in range(count):
        queue.schedule(float(times[i]), arrival, (int(cells[i]), float(holding[i])))
    queue.run()
    return CellularResult(
        offered=stats["offered"],
        blocked=stats["blocked"],
        home_carried=stats["home"],
        borrowed_carried=stats["borrowed"],
    )
