"""repro — controlled alternate routing in general-mesh packet flow networks.

A complete reproduction of Sibal & DeSimone, "Controlling Alternate Routing
in General-Mesh Packet Flow Networks" (ACM SIGCOMM 1994): the Theorem-1
state-protection machinery, the two-tier routing scheme, a call-by-call
loss-network simulator, the comparison baselines, and regeneration of every
table and figure in the paper's evaluation.

Quick tour (see README.md for the narrative)::

    from repro import (
        nsfnet_backbone, build_path_table, nsfnet_nominal_traffic,
        primary_link_loads, ControlledAlternateRouting,
        generate_trace, simulate,
    )

    net = nsfnet_backbone()
    table = build_path_table(net)
    traffic = nsfnet_nominal_traffic()
    loads = primary_link_loads(net, table, traffic)
    policy = ControlledAlternateRouting(net, table, loads)
    result = simulate(net, policy, generate_trace(traffic, 110.0, seed=0))
    print(result.network_blocking)
"""

from .api import (
    BatchResult,
    LabConfig,
    Scenario,
    StudyResult,
    run_scenario,
    run_study,
)
from .analysis import (
    FairnessReport,
    FixedPointResult,
    erlang_bound,
    erlang_fixed_point,
    fairness_report,
)
from .core import (
    BirthDeathChain,
    displacement_bound,
    erlang_b,
    figure2_curve,
    generalized_erlang_b,
    link_chain,
    min_protection_level,
    protection_levels,
    verify_theorem1,
)
from .routing import (
    ControlledAlternateRouting,
    MinLossSolution,
    OttKrishnanRouting,
    RoutingPolicy,
    SinglePathRouting,
    UncontrolledAlternateRouting,
    optimize_primary_flows,
)
from .sim import (
    ArrivalTrace,
    FailureScenario,
    LossNetworkSimulator,
    SimulationResult,
    apply_failures,
    generate_trace,
    simulate,
)
from .topology import (
    Network,
    build_path_table,
    fully_connected,
    min_hop_path,
    nsfnet_backbone,
    quadrangle,
    simple_paths_by_length,
)
from .traffic import (
    TrafficMatrix,
    nsfnet_nominal_traffic,
    primary_link_loads,
    uniform_traffic,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # façade
    "Scenario",
    "StudyResult",
    "BatchResult",
    "LabConfig",
    "run_scenario",
    "run_study",
    # core
    "erlang_b",
    "generalized_erlang_b",
    "BirthDeathChain",
    "link_chain",
    "displacement_bound",
    "min_protection_level",
    "protection_levels",
    "figure2_curve",
    "verify_theorem1",
    # topology
    "Network",
    "fully_connected",
    "quadrangle",
    "nsfnet_backbone",
    "build_path_table",
    "min_hop_path",
    "simple_paths_by_length",
    # traffic
    "TrafficMatrix",
    "uniform_traffic",
    "nsfnet_nominal_traffic",
    "primary_link_loads",
    # routing
    "RoutingPolicy",
    "SinglePathRouting",
    "UncontrolledAlternateRouting",
    "ControlledAlternateRouting",
    "OttKrishnanRouting",
    "MinLossSolution",
    "optimize_primary_flows",
    # sim
    "ArrivalTrace",
    "generate_trace",
    "simulate",
    "LossNetworkSimulator",
    "SimulationResult",
    "FailureScenario",
    "apply_failures",
    # analysis
    "erlang_bound",
    "erlang_fixed_point",
    "FixedPointResult",
    "fairness_report",
    "FairnessReport",
]
