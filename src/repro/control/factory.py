"""Wiring helpers: build a ready-to-run control loop from serve pieces."""

from __future__ import annotations

import numpy as np

from ..serve.state import NetworkState
from ..serve.telemetry import MetricsRegistry
from ..topology.paths import PathTable
from ..traffic.matrix import TrafficMatrix
from .controllers import (
    ErlangGradientController,
    MarkovApproximationController,
)
from .estimator import DemandEstimator
from .loop import ControlLoop

__all__ = ["CONTROLLER_NAMES", "make_control_loop"]

CONTROLLER_NAMES = ("gradient", "markov")


def _hop_lengths(state: NetworkState) -> tuple[int, ...]:
    if state.length_thresholds is not None:
        return tuple(sorted(state.length_thresholds))
    hops = getattr(state.policy, "max_hops", None)
    if hops is None:
        hops = max(
            (len(alt) for entries in state.policy.choices.values()
             for choice in entries for alt in choice.alternates),
            default=1,
        )
    if isinstance(hops, np.ndarray):
        hops = int(hops.max())
    return (int(hops),)


def _initial_levels(state: NetworkState) -> dict[int, np.ndarray]:
    capacities = state.capacities
    if state.length_thresholds is not None:
        return {
            int(h): (capacities - row).astype(np.int64)
            for h, row in state.length_thresholds.items()
        }
    (h,) = _hop_lengths(state)
    return {h: (capacities - state.alt_thresholds).astype(np.int64)}


def make_control_loop(
    state: NetworkState,
    table: PathTable,
    traffic: TrafficMatrix,
    *,
    controller: str = "gradient",
    interval: float = 5.0,
    prior_strength: float = 400.0,
    volatility_boost: float = 8.0,
    trust_radius: int = 4,
    beta: float = 4.0,
    seed: int = 0,
    telemetry: MetricsRegistry | None = None,
) -> ControlLoop:
    """Build estimator + controller + clamp for ``state``'s discipline.

    ``controller`` is one of :data:`CONTROLLER_NAMES`; the prior demand
    (the deployed matrix the static levels were provisioned from) seeds
    the estimator, and the controller starts from the levels currently
    in force so the loop's first steps are small.
    """
    if controller not in CONTROLLER_NAMES:
        raise ValueError(
            f"unknown controller {controller!r}; expected one of "
            f"{CONTROLLER_NAMES}"
        )
    estimator = DemandEstimator(
        state.network,
        table,
        traffic,
        prior_strength=prior_strength,
        volatility_boost=volatility_boost,
    )
    hop_lengths = _hop_lengths(state)
    if controller == "gradient":
        strategy = ErlangGradientController(
            state.network,
            hop_lengths,
            _initial_levels(state),
            trust_radius=trust_radius,
        )
    else:
        alternates = {
            od: entries[0].alternates
            for od, entries in state.policy.choices.items()
            if entries and entries[0].alternates
        }
        strategy = MarkovApproximationController(
            state.network,
            hop_lengths,
            alternates,
            beta=beta,
            seed=seed,
        )
    return ControlLoop(
        state,
        estimator,
        strategy,
        interval=interval,
        telemetry=telemetry,
    )
