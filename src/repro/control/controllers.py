"""Pluggable protection-level controllers and the Theorem-1 safety clamp.

Each controller turns the live demand estimate of
:class:`repro.control.estimator.DemandEstimator` into a
:class:`ControlProposal`: a full per-link protection-level assignment —
either one scalar level per link (the paper's global-``H`` scheme) or a
vector of levels keyed by alternate hop length (the Section-3.2
length-adaptive refinement) — plus optionally a truncation of each
pair's alternate-path set.

Whatever a controller proposes, :class:`SafetyClamp` projects it back
onto the paper's feasible region before it is applied: every level must
satisfy the Theorem-1 displacement inequality
``B(Λ̂^k, C^k) / B(Λ̂^k, C^k − r^k) ≤ 1/H`` at the *current estimate*,
so the loop can never re-open the metastable unprotected mode no matter
how aggressive (or buggy) the strategy is.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..core.erlang import erlang_b_many
from ..core.protection import displacement_bound, min_protection_levels
from ..topology.graph import Network

__all__ = [
    "ControlProposal",
    "Controller",
    "ErlangGradientController",
    "MarkovApproximationController",
    "SafetyClamp",
]


@dataclass(frozen=True)
class ControlProposal:
    """One controller output, before clamping.

    ``levels`` maps alternate hop length ``h`` to the per-link protection
    array proposed for ``h``-hop alternates; scalar-threshold strategies
    emit a single entry keyed by their design ``H``.  ``alt_prefix``
    optionally truncates each pair's alternate list to its first ``m``
    entries (``None`` = leave route sets untouched).  ``objective`` is
    the strategy's own figure of merit at the proposal (lower = better);
    ``info`` carries strategy-specific diagnostics.
    """

    time: float
    levels: dict[int, np.ndarray]
    alt_prefix: dict[tuple[int, int], int] | None = None
    objective: float = 0.0
    info: dict = field(default_factory=dict)


class Controller(ABC):
    """Strategy interface: estimate in, proposal out."""

    name: str = "controller"

    @abstractmethod
    def propose(self, now: float, estimate) -> ControlProposal:
        """Propose protection levels for the current demand estimate."""


class ErlangGradientController(Controller):
    """Trust-region descent on the vectorized Erlang objective.

    The measurement-driven objective at estimate ``Λ̂`` is

    ``J(r) = mean_l B(Λ̂_l, C_l) + mean_{l,h} max(0, r_l(h) − r*_l(h)) / C_l``

    where ``r*_l(h) = min r : B(Λ̂_l,C_l)/B(Λ̂_l,C_l−r) ≤ 1/h`` is the
    Equation-15 floor.  The first term is the irreducible per-link Erlang
    blocking of the estimated demand (reported so operators see the
    demand pressure the controller is reacting to); the second is the
    *protection excess* — circuits withheld from alternate traffic beyond
    what Theorem 1 requires.  The unique minimizer over the feasible
    region is the floor itself, so each step moves every level toward
    ``r*`` by at most ``trust_radius`` circuits: bounded, monotone,
    reversible steps a production operator can watch and veto.
    """

    name = "erlang-gradient"

    def __init__(
        self,
        network: Network,
        hop_lengths: tuple[int, ...],
        initial_levels: dict[int, np.ndarray],
        *,
        trust_radius: int = 4,
    ):
        if trust_radius < 1:
            raise ValueError("trust_radius must be >= 1")
        if not hop_lengths:
            raise ValueError("hop_lengths must be non-empty")
        self.network = network
        self.capacities = network.capacities().astype(np.int64)
        self.hop_lengths = tuple(sorted(int(h) for h in hop_lengths))
        self.trust_radius = int(trust_radius)
        self.levels = {
            int(h): np.asarray(initial_levels[h], dtype=np.int64).copy()
            for h in self.hop_lengths
        }

    def propose(self, now: float, estimate) -> ControlProposal:
        loads = np.asarray(estimate.link_loads, dtype=float)
        caps = self.capacities
        pressure = float(np.mean(erlang_b_many(loads, caps)))
        proposed: dict[int, np.ndarray] = {}
        excess = 0.0
        moved = 0
        for h in self.hop_lengths:
            floor = min_protection_levels(loads, caps, h)
            current = self.levels[h]
            step = np.clip(floor - current, -self.trust_radius, self.trust_radius)
            nxt = current + step
            moved += int(np.abs(step).sum())
            proposed[h] = nxt
            excess += float(
                (np.maximum(0, nxt - floor) / np.maximum(caps, 1)).mean()
            )
        self.levels = {h: arr.copy() for h, arr in proposed.items()}
        objective = pressure + excess / len(self.hop_lengths)
        return ControlProposal(
            time=now,
            levels=proposed,
            objective=objective,
            info={
                "strategy": self.name,
                "erlang_pressure": pressure,
                "protection_excess": excess / len(self.hop_lengths),
                "circuits_moved": moved,
                "confidence": float(estimate.confidence),
                "volatility": float(estimate.volatility),
            },
        )


class MarkovApproximationController(Controller):
    """Log-sum-exp sampling over alternate-path sets, per Huang et al.

    Each pair's configuration is the prefix length ``m`` of its alternate
    list.  The utility of serving pair ``od`` with prefix ``m`` combines
    the estimated rescue value of each kept alternate (its blocked-rate
    pressure times the product of per-link survival probabilities at
    ``Λ̂``) against a per-circuit resource price; configurations are then
    sampled from the Gibbs distribution ``p(m) ∝ exp(β·U(m))`` with a
    seeded generator, which is the Markov-approximation recipe: the chain
    concentrates on near-optimal path sets as ``β`` grows while the
    log-sum-exp smoothing keeps it exploring under measurement noise.

    Protection levels are left at the Theorem-1 floor for the current
    estimate — this strategy optimizes the *route sets*, and the clamp
    guarantees the floors regardless.
    """

    name = "markov-approximation"

    def __init__(
        self,
        network: Network,
        hop_lengths: tuple[int, ...],
        alternates: dict[tuple[int, int], tuple[tuple[int, ...], ...]],
        *,
        beta: float = 4.0,
        resource_price: float = 0.02,
        seed: int = 0,
    ):
        if beta <= 0:
            raise ValueError("beta must be positive")
        if resource_price < 0:
            raise ValueError("resource_price must be non-negative")
        self.network = network
        self.capacities = network.capacities().astype(np.int64)
        self.hop_lengths = tuple(sorted(int(h) for h in hop_lengths))
        self.alternates = {od: tuple(alts) for od, alts in alternates.items()}
        self.beta = float(beta)
        self.resource_price = float(resource_price)
        self._rng = np.random.default_rng(seed)
        self.prefixes = {od: len(alts) for od, alts in self.alternates.items()}

    def _utilities(self, od, loads) -> np.ndarray:
        alts = self.alternates[od]
        survival = 1.0 - erlang_b_many(loads, self.capacities)
        utilities = np.zeros(len(alts) + 1)
        gain = 0.0
        for m, path in enumerate(alts, start=1):
            rescue = float(np.prod(survival[list(path)]))
            gain += rescue - self.resource_price * len(path)
            utilities[m] = gain
        return utilities

    def propose(self, now: float, estimate) -> ControlProposal:
        loads = np.asarray(estimate.link_loads, dtype=float)
        caps = self.capacities
        blocked = estimate.blocked_rates
        prefixes: dict[tuple[int, int], int] = {}
        for od in sorted(self.alternates):
            utilities = self._utilities(od, loads)
            # Pairs under blocking pressure value their alternates more.
            utilities = utilities * (1.0 + blocked.get(od, 0.0))
            scores = self.beta * utilities
            scores -= scores.max()
            weights = np.exp(scores)
            weights /= weights.sum()
            prefixes[od] = int(self._rng.choice(len(weights), p=weights))
        self.prefixes = prefixes
        levels = {
            h: min_protection_levels(loads, caps, h) for h in self.hop_lengths
        }
        kept = sum(prefixes.values())
        total = sum(len(a) for a in self.alternates.values())
        objective = float(np.mean(erlang_b_many(loads, caps)))
        return ControlProposal(
            time=now,
            levels=levels,
            alt_prefix=prefixes,
            objective=objective,
            info={
                "strategy": self.name,
                "alternates_kept": kept,
                "alternates_total": total,
                "beta": self.beta,
            },
        )


class SafetyClamp:
    """Project proposals onto the Theorem-1 protection-level floor.

    For every link and every hop length a proposal covers, the applied
    level is lifted to the Equation-15 floor at the *current* demand
    estimate: ``r ≥ min r : B(Λ̂,C)/B(Λ̂,C−r) ≤ 1/h``.  Projection never
    lowers a level, so any strategy — however exploratory — leaves the
    displacement guarantee intact and the metastable mode closed.
    """

    def __init__(self, network: Network):
        self.capacities = network.capacities().astype(np.int64)
        self.violations = 0
        self.max_deficit = 0
        self.projections = 0

    def project(
        self, proposal: ControlProposal, link_loads: np.ndarray
    ) -> tuple[ControlProposal, int]:
        """Clamp ``proposal`` to the floors at ``link_loads``.

        Returns the (possibly identical) safe proposal and the number of
        link-level entries the clamp had to lift.  A feasible proposal
        passes through structurally unchanged.
        """
        loads = np.asarray(link_loads, dtype=float)
        caps = self.capacities
        lifted = 0
        deficit = 0
        clamped: dict[int, np.ndarray] = {}
        for h, levels in proposal.levels.items():
            floor = min_protection_levels(loads, caps, h)
            arr = np.asarray(levels, dtype=np.int64)
            below = arr < floor
            lifted += int(below.sum())
            if below.any():
                deficit = max(deficit, int((floor - arr)[below].max()))
            clamped[h] = np.where(below, floor, arr)
        self.projections += 1
        if lifted:
            self.violations += lifted
            self.max_deficit = max(self.max_deficit, deficit)
        safe = ControlProposal(
            time=proposal.time,
            levels=clamped,
            alt_prefix=proposal.alt_prefix,
            objective=proposal.objective,
            info={**proposal.info, "clamp_lifted": lifted},
        )
        return safe, lifted

    def verify(
        self, levels: dict[int, np.ndarray], link_loads: np.ndarray
    ) -> bool:
        """True iff every level satisfies the displacement inequality.

        Links protected at full capacity (``r = C``, threshold 0) pass
        vacuously: they admit no alternate traffic at all, which is
        Table 1's convention for overloaded links where no ``r ≤ C``
        meets the Equation-15 test.
        """
        loads = np.asarray(link_loads, dtype=float)
        for h, arr in levels.items():
            for link, level in enumerate(np.asarray(arr, dtype=np.int64)):
                capacity = int(self.capacities[link])
                if level >= capacity:
                    continue
                bound = displacement_bound(loads[link], capacity, int(level))
                if bound > 1.0 / h + 1e-12:
                    return False
        return True
