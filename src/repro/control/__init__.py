"""Online protection-level optimization: the serve → re-optimize loop.

``repro.control`` closes the loop the paper leaves open: protection
levels ``r^k`` are computed *offline* from a demand matrix the links
know a priori, but PR 7's EXP-ADV showed that guarantee fraying badly
under time-varying and adversarial load.  This package re-optimizes the
levels online from the telemetry the serving plane already emits:

* :class:`~repro.control.estimator.DemandEstimator` — live ``Λ̂``
  estimate with confidence/staleness/volatility tracking, robust to
  adversarial rotation by shrinking toward the provisioned matrix;
* :class:`~repro.control.controllers.ErlangGradientController` —
  trust-region descent on the vectorized Erlang objective toward the
  Equation-15 floors (Section 3.2's per-hop-length family);
* :class:`~repro.control.controllers.MarkovApproximationController` —
  log-sum-exp Gibbs sampling over alternate-path sets, per Huang et al.;
* :class:`~repro.control.controllers.SafetyClamp` — projection onto the
  Theorem-1 floor so no strategy can re-open the metastable bad mode;
* :class:`~repro.control.loop.ControlLoop` — the interval-driven loop
  applying clamped proposals atomically via ``NetworkState.hot_swap``
  (and, through the cluster router, to every shard), with full
  telemetry and epoch pinning for rollback.
"""

from .controllers import (
    Controller,
    ControlProposal,
    ErlangGradientController,
    MarkovApproximationController,
    SafetyClamp,
)
from .estimator import DemandEstimate, DemandEstimator
from .factory import make_control_loop
from .loop import ControlLoop, ControlStep

__all__ = [
    "ControlLoop",
    "ControlProposal",
    "ControlStep",
    "Controller",
    "DemandEstimate",
    "DemandEstimator",
    "ErlangGradientController",
    "MarkovApproximationController",
    "SafetyClamp",
    "make_control_loop",
]
