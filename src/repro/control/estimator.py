"""Live demand estimation from serve-plane telemetry.

The paper computes protection levels once from a demand matrix the links
"know a priori".  The control plane instead maintains a live estimate
``Λ̂`` folded from the measurements the serving plane already produces:
per-O-D-pair set-up counts and blocking per control window.

The estimator is deliberately *robust* rather than reactive.  EXP-ADV
showed that chasing the adversarial workload's per-epoch demand makes
blocking worse than leaving the static levels alone — the adversary
rotates its targets exactly so that thresholds fit to the last epoch are
maximally wrong for the next.  Two defenses are built in:

* **shrinkage toward the deployed prior** — the estimate is the
  exposure-weighted blend ``(T·mean + k·prior) / (T + k)`` of the
  cumulative measured mean rate and the provisioned matrix, so early,
  volatile observations move the estimate slowly and the long-run limit
  is the *time-averaged* demand (the hindsight-stationary matrix), not
  the most recent epoch;
* **volatility gating** — the prior strength ``k`` is inflated by an
  EWMA of the relative window-to-window demand change, so smooth regime
  shifts (diurnal drift) are tracked while adversarial rotation freezes
  the estimate near the stationary mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..topology.graph import Network
from ..topology.paths import PathTable
from ..traffic.demand import primary_link_loads
from ..traffic.matrix import TrafficMatrix

__all__ = ["DemandEstimate", "DemandEstimator"]


@dataclass(frozen=True)
class DemandEstimate:
    """One snapshot of the live demand estimate.

    ``confidence`` is the weight the measurements carry against the prior
    (0 = pure prior, → 1 as observed exposure dwarfs the gated prior
    strength); ``staleness`` is request time since the last fold;
    ``volatility`` is the EWMA of relative window-to-window change that
    gates the prior.
    """

    time: float
    matrix: TrafficMatrix
    link_loads: np.ndarray
    confidence: float
    staleness: float
    volatility: float
    observed_time: float
    blocked_rates: dict[tuple[int, int], float] = field(default_factory=dict)


class DemandEstimator:
    """Fold per-pair serve telemetry into a live ``Λ̂`` demand estimate."""

    def __init__(
        self,
        network: Network,
        table: PathTable,
        prior: TrafficMatrix,
        *,
        prior_strength: float = 400.0,
        volatility_boost: float = 8.0,
        volatility_weight: float = 0.5,
        blocked_weight: float = 0.3,
    ):
        if prior_strength <= 0:
            raise ValueError("prior_strength must be positive")
        if volatility_boost < 0:
            raise ValueError("volatility_boost must be non-negative")
        if not 0 < volatility_weight <= 1:
            raise ValueError("volatility_weight must lie in (0, 1]")
        if not 0 < blocked_weight <= 1:
            raise ValueError("blocked_weight must lie in (0, 1]")
        self.network = network
        self.table = table
        self.prior = prior
        self.prior_strength = float(prior_strength)
        self.volatility_boost = float(volatility_boost)
        self.volatility_weight = float(volatility_weight)
        self.blocked_weight = float(blocked_weight)
        self._prior_array = prior.as_array().astype(float)
        self.pairs: tuple[tuple[int, int], ...] = tuple(
            od for od, __ in prior.positive_pairs()
        )
        self._mean = {od: 0.0 for od in self.pairs}
        self._last = {
            od: float(self._prior_array[od[0], od[1]]) for od in self.pairs
        }
        self._blocked = {od: 0.0 for od in self.pairs}
        self.observed_time = 0.0
        self.volatility = 0.0
        self.last_fold: float | None = None
        self.folds = 0

    # ------------------------------------------------------------- folding

    def observe(
        self,
        now: float,
        span: float,
        arrivals: dict[tuple[int, int], int],
        blocked: dict[tuple[int, int], int] | None = None,
    ) -> None:
        """Fold one control window: per-pair arrival (and block) counts.

        ``span`` is the window length in request time; ``arrivals`` maps
        O-D pairs to set-up counts observed during the window.  Pairs
        absent from the dict saw zero arrivals — silence is data.
        """
        if span <= 0:
            raise ValueError("span must be positive")
        measured = {od: arrivals.get(od, 0) / span for od in self.pairs}
        change = sum(abs(measured[od] - self._last[od]) for od in self.pairs)
        level = sum(self._last.values()) or 1.0
        w = self.volatility_weight
        self.volatility = (1.0 - w) * self.volatility + w * (change / level)
        self._last = measured
        total = self.observed_time + span
        for od in self.pairs:
            self._mean[od] = (
                self._mean[od] * self.observed_time + measured[od] * span
            ) / total
        if blocked:
            bw = self.blocked_weight
            for od in self.pairs:
                rate = blocked.get(od, 0) / span
                self._blocked[od] = (1.0 - bw) * self._blocked[od] + bw * rate
        self.observed_time = total
        self.last_fold = now
        self.folds += 1

    # ------------------------------------------------------------ estimate

    def gated_prior_strength(self) -> float:
        """Effective prior exposure after volatility inflation."""
        return self.prior_strength * (1.0 + self.volatility_boost * self.volatility)

    def estimate(self, now: float) -> DemandEstimate:
        """The current shrinkage estimate ``Λ̂`` with its link loads."""
        k = self.gated_prior_strength()
        total = self.observed_time + k
        arr = np.zeros_like(self._prior_array)
        for od in self.pairs:
            arr[od[0], od[1]] = (
                self.observed_time * self._mean[od]
                + k * self._prior_array[od[0], od[1]]
            ) / total
        matrix = TrafficMatrix(arr)
        staleness = 0.0 if self.last_fold is None else max(0.0, now - self.last_fold)
        return DemandEstimate(
            time=now,
            matrix=matrix,
            link_loads=primary_link_loads(self.network, self.table, matrix),
            confidence=self.observed_time / total,
            staleness=staleness,
            volatility=self.volatility,
            observed_time=self.observed_time,
            blocked_rates=dict(self._blocked),
        )
