"""The closed control loop: observe → estimate → propose → clamp → swap.

:class:`ControlLoop` is driven by the serving plane on *request time*
(the same virtual clock the adaptation loop uses), so a replayed trace
produces bit-identical control decisions on every run — which is what
lets the smoke harness assert a stable ``decisions_sha256`` and the
cluster prove swap equivalence against the single-process engine.

Every window the loop folds the engine's per-pair setup/block counts
into the :class:`~repro.control.estimator.DemandEstimator`, asks its
:class:`~repro.control.controllers.Controller` for a proposal, projects
the proposal through the Theorem-1
:class:`~repro.control.controllers.SafetyClamp`, and applies the result
atomically via :meth:`repro.serve.state.NetworkState.hot_swap` — unless
the operator has pinned the policy epoch, in which case proposals are
recorded (and visible in telemetry) but not applied: that is the
rollback story, see ``docs/OPERATIONS.md``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..serve.state import NetworkState
from ..serve.telemetry import MetricsRegistry
from .controllers import Controller, ControlProposal, SafetyClamp
from .estimator import DemandEstimator

__all__ = ["ControlLoop", "ControlStep"]


@dataclass(frozen=True)
class ControlStep:
    """One executed control window, for trajectories and audits."""

    time: float
    epoch: int
    applied: bool
    objective: float
    max_delta: float
    clamp_lifted: int
    swap_seconds: float
    confidence: float
    volatility: float
    thresholds: dict[int, tuple[int, ...]]
    alt_prefix: dict[tuple[int, int], int] | None = None
    info: dict = field(default_factory=dict)


class ControlLoop:
    """Interval-driven protection-level controller over live state."""

    def __init__(
        self,
        state: NetworkState,
        estimator: DemandEstimator,
        controller: Controller,
        *,
        clamp: SafetyClamp | None = None,
        interval: float = 5.0,
        telemetry: MetricsRegistry | None = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if state.adaptation is not None:
            raise ValueError(
                "a ControlLoop and threshold adaptation cannot share one "
                "NetworkState: two writers would race on the thresholds"
            )
        self.state = state
        self.estimator = estimator
        self.controller = controller
        self.clamp = clamp if clamp is not None else SafetyClamp(state.network)
        self.interval = float(interval)
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.next_step: float = self.interval
        self._last_boundary = 0.0
        self.steps: list[ControlStep] = []
        self.pinned_epoch: int | None = None
        self.active_prefix: dict[tuple[int, int], int] | None = None
        registry = self.telemetry
        self._m_proposals = registry.counter("control_proposals_total")
        self._m_swaps = registry.counter("control_swaps_total")
        self._m_skipped = registry.counter("control_swaps_skipped_total")
        self._m_lifted = registry.counter("control_clamp_lifted_total")
        self._m_objective = registry.gauge("control_objective")
        self._m_confidence = registry.gauge("control_confidence")
        self._m_volatility = registry.gauge("control_volatility")
        self._m_swap_seconds = registry.histogram("control_swap_seconds")

    # ------------------------------------------------------------- pinning

    def pin(self, epoch: int | None = None) -> int:
        """Freeze swaps at ``epoch`` (default: the current one).

        The loop keeps estimating and proposing — telemetry still shows
        what it *would* do — but the thresholds in force stay at the
        pinned epoch until :meth:`unpin`.
        """
        pinned = self.state.policy_epoch if epoch is None else int(epoch)
        self.pinned_epoch = pinned
        return pinned

    def unpin(self) -> None:
        """Resume applying proposals."""
        self.pinned_epoch = None

    # -------------------------------------------------------------- stepping

    def step(
        self,
        now: float,
        arrivals: dict[tuple[int, int], int],
        blocked: dict[tuple[int, int], int] | None = None,
    ) -> ControlStep | None:
        """Run the control window(s) due at or before ``now``.

        ``arrivals``/``blocked`` are the per-pair counts the engine
        accumulated since the previous step; a gap spanning several
        intervals is folded as one longer window (correct for the
        cumulative-mean estimator).  Returns the executed step, or
        ``None`` when no window boundary has been reached.
        """
        if now < self.next_step:
            return None
        boundary = self.next_step
        while boundary + self.interval <= now:
            boundary += self.interval
        span = boundary - self._last_boundary
        self.estimator.observe(boundary, span, arrivals, blocked)
        estimate = self.estimator.estimate(boundary)
        proposal = self.controller.propose(boundary, estimate)
        self._m_proposals.inc()
        safe, lifted = self.clamp.project(proposal, estimate.link_loads)
        if lifted:
            self._m_lifted.inc(lifted)
        step = self._apply(boundary, safe, estimate, lifted)
        self.steps.append(step)
        self._m_objective.set(step.objective)
        self._m_confidence.set(estimate.confidence)
        self._m_volatility.set(estimate.volatility)
        self._last_boundary = boundary
        self.next_step = boundary + self.interval
        return step

    def _apply(
        self, now: float, proposal: ControlProposal, estimate, lifted: int
    ) -> ControlStep:
        state = self.state
        capacities = state.capacities
        thresholds = {
            int(h): tuple(int(v) for v in (capacities - levels))
            for h, levels in proposal.levels.items()
        }
        if self.pinned_epoch is not None:
            self._m_skipped.inc()
            return ControlStep(
                time=now,
                epoch=state.policy_epoch,
                applied=False,
                objective=proposal.objective,
                max_delta=0.0,
                clamp_lifted=lifted,
                swap_seconds=0.0,
                confidence=float(estimate.confidence),
                volatility=float(estimate.volatility),
                thresholds=thresholds,
                alt_prefix=proposal.alt_prefix,
                info=dict(proposal.info),
            )
        start = time.perf_counter()
        if state.length_thresholds is not None:
            tables = {
                h: np.asarray(row, dtype=np.int64)
                for h, row in thresholds.items()
                if h in state.length_thresholds
            }
            max_delta = state.hot_swap(length_thresholds=tables, now=now)
        else:
            # Scalar discipline: one hop family; its thresholds are the bound.
            h = min(thresholds)
            max_delta = state.hot_swap(
                alt_thresholds=np.asarray(thresholds[h], dtype=np.int64),
                now=now,
            )
        swap_seconds = time.perf_counter() - start
        self.active_prefix = proposal.alt_prefix
        self._m_swaps.inc()
        self._m_swap_seconds.observe(swap_seconds)
        return ControlStep(
            time=now,
            epoch=state.policy_epoch,
            applied=True,
            objective=proposal.objective,
            max_delta=float(max_delta),
            clamp_lifted=lifted,
            swap_seconds=swap_seconds,
            confidence=float(estimate.confidence),
            volatility=float(estimate.volatility),
            thresholds=thresholds,
            alt_prefix=proposal.alt_prefix,
            info=dict(proposal.info),
        )

    # ------------------------------------------------------------ reporting

    def decisions_sha256(self) -> str:
        """Digest of the applied threshold trajectory — replay-stable."""
        canonical = [
            {
                "time": step.time,
                "epoch": step.epoch,
                "applied": step.applied,
                "thresholds": {str(h): list(t) for h, t in sorted(step.thresholds.items())},
                "alt_prefix": (
                    None
                    if step.alt_prefix is None
                    else {f"{od[0]}-{od[1]}": m for od, m in sorted(step.alt_prefix.items())}
                ),
            }
            for step in self.steps
        ]
        blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def trajectory(self) -> list[dict]:
        """JSON-ready per-step records (objective, deltas, swap latency)."""
        return [
            {
                "time": step.time,
                "epoch": step.epoch,
                "applied": step.applied,
                "objective": step.objective,
                "max_delta": step.max_delta,
                "clamp_lifted": step.clamp_lifted,
                "swap_seconds": step.swap_seconds,
                "confidence": step.confidence,
                "volatility": step.volatility,
            }
            for step in self.steps
        ]
