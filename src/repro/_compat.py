"""Backward-compatibility helpers for the public configuration API.

The public config dataclasses (:class:`repro.experiments.runner.ReplicationConfig`,
:class:`repro.sim.signaling.SignalingConfig`) are keyword-only: their field
lists grow over time, and positional call sites silently change meaning when
a field is inserted.  Legacy positional construction keeps working for now
through :func:`positional_shim`, which maps positional arguments onto fields
in declaration order and emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import fields

__all__ = ["positional_shim"]


def positional_shim(cls):
    """Class decorator: accept deprecated positional args on a kw-only dataclass.

    Apply *above* ``@dataclass(kw_only=True)``.  Positional arguments are
    assigned to fields in declaration order — the pre-keyword-only calling
    convention — with a :class:`DeprecationWarning` naming the class, then
    handed to the real keyword-only ``__init__``.
    """
    original_init = cls.__init__
    names = [f.name for f in fields(cls)]

    def __init__(self, *args, **kwargs):
        if args:
            if len(args) > len(names):
                raise TypeError(
                    f"{cls.__name__}() takes at most {len(names)} "
                    f"arguments ({len(args)} given)"
                )
            warnings.warn(
                f"passing {cls.__name__} arguments positionally is deprecated; "
                f"use keyword arguments",
                DeprecationWarning,
                stacklevel=2,
            )
            for name, value in zip(names, args):
                if name in kwargs:
                    raise TypeError(
                        f"{cls.__name__}() got multiple values for argument {name!r}"
                    )
                kwargs[name] = value
        original_init(self, **kwargs)

    __init__.__qualname__ = f"{cls.__name__}.__init__"
    cls.__init__ = __init__
    return cls
