"""Backward-compatibility helpers for the public configuration API.

The public config dataclasses (:class:`repro.experiments.runner.ReplicationConfig`,
:class:`repro.sim.signaling.SignalingConfig`) are keyword-only: their field
lists grow over time, and positional call sites silently change meaning when
a field is inserted.  Legacy positional construction keeps working for now
through :func:`positional_shim`, which maps positional arguments onto fields
in declaration order and emits a :class:`DeprecationWarning`.

Backend selection went through a similar migration: the scattered
``reference: bool`` flags on ``simulate`` / ``run_scenario`` became one
``backend=`` keyword (``"auto"`` / ``"batch"`` / ``"fast"`` / ``"reference"``).
:func:`resolve_backend` collapses both spellings in one place and emits the
deprecation warning for the legacy flag.
"""

from __future__ import annotations

import warnings
from dataclasses import fields

__all__ = ["BACKENDS", "positional_shim", "resolve_backend"]

#: Valid values for the unified ``backend=`` keyword, in resolution order:
#: ``auto`` picks the fastest exact engine for the job, ``batch`` requests the
#: lockstep many-seeds kernel (falling back when ineligible), ``fast`` the
#: per-seed vectorized loop, ``reference`` the general event-loop oracle.
BACKENDS = ("auto", "batch", "fast", "reference")


def resolve_backend(
    backend: str | None = None,
    reference: bool | None = None,
    *,
    owner: str = "simulate",
    default: str = "auto",
) -> str:
    """Collapse the legacy ``reference=`` flag and ``backend=`` into one value.

    ``reference`` left at ``None`` means "not passed"; a real boolean maps to
    ``backend="reference"`` (``True``) or the default (``False``) with a
    :class:`DeprecationWarning`.  Passing both spellings is allowed only when
    they agree; a contradiction raises :class:`ValueError`, as does an unknown
    backend name.
    """
    if reference is not None:
        warnings.warn(
            f"{owner}(reference=...) is deprecated; pass "
            f'backend="reference" (or backend="auto") instead',
            DeprecationWarning,
            stacklevel=3,
        )
        mapped = "reference" if reference else default
        if backend is not None and backend != mapped:
            raise ValueError(
                f"conflicting backend selection: reference={reference!r} means "
                f"backend={mapped!r}, but backend={backend!r} was also passed"
            )
        backend = mapped
    if backend is None:
        backend = default
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    return backend


def positional_shim(cls):
    """Class decorator: accept deprecated positional args on a kw-only dataclass.

    Apply *above* ``@dataclass(kw_only=True)``.  Positional arguments are
    assigned to fields in declaration order — the pre-keyword-only calling
    convention — with a :class:`DeprecationWarning` naming the class, then
    handed to the real keyword-only ``__init__``.
    """
    original_init = cls.__init__
    names = [f.name for f in fields(cls)]

    def __init__(self, *args, **kwargs):
        if args:
            if len(args) > len(names):
                raise TypeError(
                    f"{cls.__name__}() takes at most {len(names)} "
                    f"arguments ({len(args)} given)"
                )
            warnings.warn(
                f"passing {cls.__name__} arguments positionally is deprecated; "
                f"use keyword arguments",
                DeprecationWarning,
                stacklevel=2,
            )
            for name, value in zip(names, args):
                if name in kwargs:
                    raise TypeError(
                        f"{cls.__name__}() got multiple values for argument {name!r}"
                    )
                kwargs[name] = value
        original_init(self, **kwargs)

    __init__.__qualname__ = f"{cls.__name__}.__init__"
    cls.__init__ = __init__
    return cls
