"""State-protection (trunk-reservation) level selection — Section 3 of the paper.

A link with capacity ``C`` and protection level ``r`` rejects alternate-routed
calls whenever its occupancy is in the top ``r + 1`` states
``{C - r, ..., C}``.  Theorem 1 bounds the expected number of *extra* primary
calls lost because one alternate call was accepted::

    L  <=  B(Lambda, C) / B(Lambda, C - r)

where ``Lambda`` is the primary traffic demand on the link.  If alternate
paths have at most ``H`` hops, setting every link's bound to at most ``1/H``
makes the total expected displacement along any alternate path at most one —
so admitting the alternate call can only improve on single-path routing.

This module computes the smallest such ``r`` (the paper's Equation 15), the
full Figure-2 curves, and per-link levels for a whole network.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from .erlang import shared_erlang_table

__all__ = [
    "displacement_bound",
    "min_protection_level",
    "min_protection_level_grid",
    "min_protection_levels",
    "protection_levels",
    "figure2_curve",
]


def displacement_bound(load: float, capacity: int, protection: int) -> float:
    """Theorem-1 bound ``B(load, C) / B(load, C - r)`` on primary displacement.

    Monotone non-increasing in ``protection``; ``protection == 0`` gives
    exactly 1 for any positive load.  Computed through the log-space inverse
    blocking recursion so the ratio stays accurate even when the individual
    blockings underflow (lightly loaded links).  A link with zero primary
    load has nothing to displace; its bound is 0 (except the degenerate
    fully-protected case, where the ratio is 1 by convention but no
    alternate is ever admitted anyway).
    """
    if not 0 <= protection <= capacity:
        raise ValueError(f"protection must lie in [0, {capacity}], got {protection}")
    if load == 0.0:
        # B(0, C) = 0 for C >= 1, so the ratio is 0 (a zero-capacity link
        # blocks everything and the ratio degenerates to 1).
        return 1.0 if capacity == 0 else 0.0
    log_y = shared_erlang_table.log_inverse_sequence(load, capacity)
    # B(load, C) / B(load, C - r) = y_{C-r} / y_C.
    return float(math.exp(log_y[capacity - protection] - log_y[capacity]))


def min_protection_level(load: float, capacity: int, max_hops: int) -> int:
    """Smallest ``r`` with ``B(load, C)/B(load, C - r) <= 1/max_hops``.

    This is the paper's Equation 15 solved for the minimal reservation
    parameter.  If no ``r <= C`` satisfies the inequality (heavily overloaded
    links), the link is fully protected and ``capacity`` is returned — the
    link then never accepts alternate calls, exactly as in the paper's
    Table 1 where overloaded links get ``r = C = 100``.

    The search walks ``r`` upward using a single inverse-blocking recursion
    pass, so the total cost is ``O(capacity)``.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if max_hops < 1:
        raise ValueError("max_hops must be >= 1")
    if load < 0:
        raise ValueError("load must be non-negative")
    if load == 0.0:
        return 0
    # bound(r) = y_{C-r} / y_C in the inverse-blocking sequence; log y is
    # increasing in the index, so the bound is non-increasing in r.  The
    # first r meeting log(bound) <= -log(max_hops) corresponds to the
    # *largest* index with log y <= log y_C - log(max_hops), so a binary
    # search over the (cached) monotone sequence replaces the linear walk.
    log_y = shared_erlang_table.log_inverse_sequence(load, capacity)
    threshold = log_y[capacity] - math.log(float(max_hops))
    index = int(np.searchsorted(log_y, threshold + 1e-15, side="right")) - 1
    if index < 0:
        return capacity
    return capacity - index


def min_protection_level_grid(
    loads: Sequence[float] | np.ndarray, capacity: int, max_hops: int
) -> np.ndarray:
    """Vectorized :func:`min_protection_level` over a grid of primary loads.

    Runs the log-space inverse-blocking recursion for the whole load grid at
    once (one ``logaddexp`` sweep per capacity step instead of one full
    recursion per load) and resolves each load's minimal ``r`` by binary
    search over its monotone sequence.  The per-load logs are taken with
    ``math.log`` so every sequence entry matches the scalar recursion bit for
    bit, and with it the returned integer levels.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if max_hops < 1:
        raise ValueError("max_hops must be >= 1")
    load_arr = np.asarray(loads, dtype=float)
    if load_arr.ndim != 1:
        raise ValueError("loads must be one-dimensional")
    if load_arr.size and ((load_arr < 0).any() or np.isnan(load_arr).any()):
        raise ValueError("loads must be non-negative")
    levels = np.zeros(load_arr.size, dtype=np.int64)
    positive = load_arr > 0.0
    if not positive.any():
        return levels
    grid = load_arr[positive]
    log_loads = np.array([math.log(value) for value in grid])
    log_y = np.zeros((grid.size, capacity + 1))
    for x in range(1, capacity + 1):
        log_y[:, x] = np.logaddexp(0.0, math.log(x) - log_loads + log_y[:, x - 1])
    thresholds = log_y[:, capacity] - math.log(float(max_hops)) + 1e-15
    found = np.empty(grid.size, dtype=np.int64)
    for row in range(grid.size):
        index = int(np.searchsorted(log_y[row], thresholds[row], side="right")) - 1
        found[row] = capacity if index < 0 else capacity - index
    levels[positive] = found
    return levels


def min_protection_levels(
    loads: Sequence[float] | np.ndarray,
    capacities: Sequence[int] | np.ndarray,
    max_hops: int | Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Batch entry point: Theorem-1 levels for per-link ``(load, capacity)`` pairs.

    The whole-network analogue of :func:`min_protection_level_grid`: links are
    grouped by their ``(capacity, max_hops)`` pair and each group shares one
    log-space recursion sweep, so a network whose links mostly share a capacity
    costs one grid pass instead of one scalar recursion per link.  ``max_hops``
    may be a scalar ``H`` or a per-link array (footnote 5's ``H^k``).  Links
    with zero capacity get level 0, matching the call-site convention of the
    routing policies.  Bit-identical to calling :func:`min_protection_level`
    per link.
    """
    load_arr = np.asarray(loads, dtype=float)
    cap_arr = np.asarray(capacities, dtype=np.int64)
    if load_arr.ndim != 1 or load_arr.shape != cap_arr.shape:
        raise ValueError("loads and capacities must be parallel 1-d arrays")
    hop_arr = np.broadcast_to(np.asarray(max_hops, dtype=np.int64), cap_arr.shape)
    if hop_arr.size and (hop_arr < 1).any():
        raise ValueError("max_hops must be >= 1")
    levels = np.zeros(cap_arr.size, dtype=np.int64)
    for capacity, hops in set(zip(cap_arr.tolist(), hop_arr.tolist())):
        if capacity < 1:
            continue
        members = np.flatnonzero((cap_arr == capacity) & (hop_arr == hops))
        levels[members] = min_protection_level_grid(
            load_arr[members], int(capacity), int(hops)
        )
    return levels


def protection_levels(
    loads: Mapping[object, float] | Sequence[float],
    capacities: Mapping[object, int] | Sequence[int],
    max_hops: int,
) -> dict:
    """Per-link protection levels for a whole network.

    ``loads`` and ``capacities`` are parallel mappings (or sequences) keyed by
    link identifier.  Returns ``{link: r}``.
    """
    if isinstance(loads, Mapping) != isinstance(capacities, Mapping):
        raise TypeError("loads and capacities must both be mappings or both sequences")
    if isinstance(loads, Mapping):
        missing = set(loads) ^ set(capacities)
        if missing:
            raise ValueError(f"loads/capacities key mismatch: {sorted(map(str, missing))}")
        keys = list(loads)
        load_list = [loads[k] for k in keys]
        cap_list = [capacities[k] for k in keys]
    else:
        if len(loads) != len(capacities):
            raise ValueError("loads and capacities must have equal length")
        keys = list(range(len(loads)))
        load_list = list(loads)
        cap_list = list(capacities)
    return {
        key: min_protection_level(load, cap, max_hops)
        for key, load, cap in zip(keys, load_list, cap_list)
    }


def figure2_curve(
    capacity: int = 100,
    max_hops: int = 6,
    loads: Sequence[float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Regenerate one curve of the paper's Figure 2.

    Returns ``(loads, r_values)`` with ``r`` the minimal protection level at
    each primary load, for the given ``capacity`` and ``max_hops``.  The
    paper plots ``C = 100`` with ``H = 2, 6, 120`` over ``Lambda <= C``.
    """
    if loads is None:
        loads = np.arange(1.0, float(capacity) + 1.0)
    load_arr = np.asarray(list(loads), dtype=float)
    r_arr = min_protection_level_grid(load_arr, capacity, max_hops).astype(int)
    return load_arr, r_arr
