"""Birth-death Markov chains for single-link occupancy processes.

The paper's Theorem 1 reasons about a link as a birth-death chain whose
states count calls in progress (Figure 1 of the paper).  This module gives an
exact, self-contained treatment of such chains: stationary distributions,
time- and call-blocking, and the first-passage quantities (``E[tau]`` and the
expected accepted-arrival count ``X_{s,s+1}``) that drive both the proof of
Theorem 1 and the Ott-Krishnan shadow prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BirthDeathChain", "link_chain"]


@dataclass(frozen=True)
class BirthDeathChain:
    """A finite birth-death chain on states ``0 .. n``.

    ``births[s]`` is the rate of the ``s -> s+1`` transition for
    ``s = 0 .. n-1`` and ``deaths[s]`` the rate of ``s+1 -> s``.  Both arrays
    therefore have length ``n``.  All rates must be non-negative; the chain
    is irreducible over ``0 .. n`` when all rates are strictly positive.
    """

    births: np.ndarray
    deaths: np.ndarray

    def __init__(self, births: Sequence[float], deaths: Sequence[float]):
        births_arr = np.asarray(births, dtype=float)
        deaths_arr = np.asarray(deaths, dtype=float)
        if births_arr.ndim != 1 or deaths_arr.ndim != 1:
            raise ValueError("births and deaths must be one-dimensional")
        if births_arr.shape != deaths_arr.shape:
            raise ValueError(
                f"births (len {births_arr.size}) and deaths (len {deaths_arr.size}) "
                "must have equal length"
            )
        if births_arr.size == 0:
            raise ValueError("chain needs at least one transition")
        if (births_arr < 0).any() or (deaths_arr < 0).any():
            raise ValueError("rates must be non-negative")
        object.__setattr__(self, "births", births_arr)
        object.__setattr__(self, "deaths", deaths_arr)

    @property
    def num_states(self) -> int:
        """Number of states, ``n + 1``."""
        return self.births.size + 1

    @property
    def top_state(self) -> int:
        """The highest state ``n``."""
        return self.births.size

    def stationary_distribution(self) -> np.ndarray:
        """Exact stationary distribution via detailed balance.

        ``pi[s+1] * deaths[s] = pi[s] * births[s]``.  States upstream of a
        zero birth rate get zero mass (the chain eventually drains below the
        blockage); a zero death rate with positive inflow concentrates mass
        above it.  Degenerate all-zero chains raise ``ValueError``.
        """
        n = self.num_states
        weights = np.zeros(n, dtype=float)
        weights[0] = 1.0
        for s in range(n - 1):
            if self.deaths[s] == 0.0:
                if self.births[s] > 0.0:
                    # All mass escapes upward past s; restart accumulation.
                    weights[: s + 1] = 0.0
                    weights[s + 1] = 1.0
                else:
                    weights[s + 1] = 0.0
                continue
            weights[s + 1] = weights[s] * self.births[s] / self.deaths[s]
            if weights[s + 1] > 1e250:
                weights /= weights[s + 1]
        total = weights.sum()
        if total <= 0.0:
            raise ValueError("degenerate chain: no state has stationary mass")
        return weights / total

    def time_blocking(self) -> float:
        """Stationary probability of the top state."""
        return float(self.stationary_distribution()[self.top_state])

    def call_blocking(self) -> float:
        """Fraction of arrivals that find the chain in the top state.

        With state-dependent arrivals the arriving customer's view differs
        from the time average: the blocking seen by arrivals is
        ``births-weighted``.  The top state contributes with the arrival rate
        it *would* see; we take it to be the last birth rate (the paper's
        chains always saturate their rate vectors this way).
        """
        pi = self.stationary_distribution()
        top_rate = self.births[-1]
        arrival_rates = np.append(self.births, top_rate)
        seen = arrival_rates * pi
        total = seen.sum()
        if total == 0.0:
            return 0.0
        return float(seen[self.top_state] / total)

    def upward_passage_times(self) -> np.ndarray:
        """``m[s] = E[time to first hit s+1, starting from s]`` for each s.

        Standard birth-death recursion::

            m_0 = 1 / births[0]
            m_s = (1 + deaths[s-1] * m_{s-1}) / births[s]

        A zero birth rate makes the passage impossible; the entry (and all
        entries above it) become ``inf``.
        """
        n = self.births.size
        m = np.empty(n, dtype=float)
        with np.errstate(divide="ignore"):
            m[0] = np.inf if self.births[0] == 0.0 else 1.0 / self.births[0]
            for s in range(1, n):
                if self.births[s] == 0.0:
                    m[s] = np.inf
                else:
                    m[s] = (1.0 + self.deaths[s - 1] * m[s - 1]) / self.births[s]
        return m

    def upward_passage_counts(self) -> np.ndarray:
        """``X[s] = E[# accepted arrivals from s until first hitting s+1]``.

        This is the ``X_{s,s+1}`` of the paper's Theorem-1 proof
        (Equations 4-5)::

            X_0 = 1
            X_s = 1 + (deaths[s-1] / births[s]) * X_{s-1}

        Note the death rate indexing: from state ``s`` the downward rate is
        ``deaths[s-1]``.
        """
        n = self.births.size
        x = np.empty(n, dtype=float)
        x[0] = 1.0 if self.births[0] > 0.0 else np.inf
        for s in range(1, n):
            if self.births[s] == 0.0:
                x[s] = np.inf
            else:
                x[s] = 1.0 + (self.deaths[s - 1] / self.births[s]) * x[s - 1]
        return x

    def mean_occupancy(self) -> float:
        """Stationary mean state (carried calls for a link chain)."""
        pi = self.stationary_distribution()
        return float(np.dot(pi, np.arange(self.num_states)))


def link_chain(
    primary_rate: float,
    capacity: int,
    protection: int = 0,
    overflow_rates: Sequence[float] | None = None,
) -> BirthDeathChain:
    """Build the occupancy chain of a protected link (paper's Figure 1).

    ``primary_rate`` is the state-independent Poisson rate ``nu`` of primary
    calls.  ``overflow_rates[s]`` is the (arbitrary, state-dependent) rate
    ``lambda_s^(o)`` of alternate-routed arrivals in state ``s``; it is
    truncated by state protection: alternate calls are rejected in states
    ``capacity - protection .. capacity``, so only entries for
    ``s < capacity - protection`` contribute.  Death rates are
    ``[1 .. capacity]`` (unit-mean exponential holding).
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if not 0 <= protection <= capacity:
        raise ValueError(f"protection must lie in [0, {capacity}], got {protection}")
    if primary_rate < 0:
        raise ValueError("primary_rate must be non-negative")
    births = np.full(capacity, float(primary_rate))
    accept_limit = capacity - protection  # alternate calls accepted in states < limit
    if overflow_rates is not None:
        overflow = np.asarray(overflow_rates, dtype=float)
        if (overflow < 0).any():
            raise ValueError("overflow rates must be non-negative")
        usable = min(overflow.size, accept_limit)
        births[:usable] += overflow[:usable]
    deaths = np.arange(1, capacity + 1, dtype=float)
    return BirthDeathChain(births, deaths)
