"""Exact primary-call displacement and numeric verification of Theorem 1.

Theorem 1 of the paper states: if a link with capacity ``C``, primary Poisson
rate ``nu <= Lambda`` and *arbitrary state-dependent* alternate (overflow)
arrival rates uses protection level ``r``, then the expected increase ``L`` in
lost primary calls caused by accepting one alternate call satisfies::

    L <= B(Lambda, C) / B(Lambda, C - r)

This module computes ``L`` *exactly* for any concrete overflow-rate vector by
first-passage analysis of the occupancy chain (the argument of the paper's
Equation 3, after Ott & Krishnan), enabling direct numeric verification of
the bound — which the test suite does exhaustively and property-based.

Reproduction note: the second inequality of the paper's Equation 10 requires
the generalized blocking ``B(lambda_, c)`` to be non-increasing in the
capacity ``c``, which holds when the overflow-rate vector is non-increasing
in the link state (constant rates are the classical special case) but *not*
for arbitrary vectors — an adversarial, steeply increasing overflow profile
makes the Equation-3 quantity exceed the bound.  Physically, overflow traffic
does not intensify as a link fills, so the assumption is benign; the paper's
rigorous Markov-decision proof is deferred to its reference [37].  Our tests
verify the bound over the non-increasing class and document the adversarial
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .markov import link_chain
from .protection import displacement_bound

__all__ = ["exact_displacement", "displacement_profile", "TheoremCheck", "verify_theorem1"]


def exact_displacement(
    primary_rate: float,
    capacity: int,
    protection: int,
    overflow_rates: Sequence[float],
    state: int,
) -> float:
    """Exact expected extra primary-call loss from one alternate acceptance.

    The link is in ``state`` (with ``state < capacity - protection``, else the
    alternate call would be rejected and the displacement is zero).  Following
    the paper's coupling argument: if the call is rejected, the link re-joins
    the accepted trajectory as soon as it first climbs to ``state + 1``; until
    then (expected time ``E[tau]``) no primary calls are lost on the rejected
    trajectory that would also be lost on the accepted one.  Hence::

        L(state) = E[tau] * B * nu

    where ``B`` is the stationary time-blocking of the chain *with the
    alternate-routing scheme in place* and ``nu`` the primary rate.
    """
    if not 0 <= state <= capacity:
        raise ValueError(f"state must lie in [0, {capacity}], got {state}")
    if state >= capacity - protection:
        return 0.0
    chain = link_chain(primary_rate, capacity, protection, overflow_rates)
    if primary_rate == 0.0:
        return 0.0
    blocking = chain.time_blocking()
    tau = chain.upward_passage_times()
    return float(tau[state] * blocking * primary_rate)


def displacement_profile(
    primary_rate: float,
    capacity: int,
    protection: int,
    overflow_rates: Sequence[float],
) -> np.ndarray:
    """``L(state)`` for every state where an alternate call can be accepted.

    Returns an array of length ``capacity - protection`` (possibly empty when
    the link is fully protected).  Shares one chain construction across all
    states, unlike repeated :func:`exact_displacement` calls.
    """
    accept_states = capacity - protection
    if accept_states <= 0 or primary_rate == 0.0:
        return np.zeros(max(accept_states, 0), dtype=float)
    chain = link_chain(primary_rate, capacity, protection, overflow_rates)
    blocking = chain.time_blocking()
    tau = chain.upward_passage_times()
    return tau[:accept_states] * blocking * primary_rate


@dataclass(frozen=True)
class TheoremCheck:
    """Outcome of one Theorem-1 verification.

    ``worst_displacement`` is ``max_s L(s)`` over acceptable states, ``bound``
    the Theorem-1 right-hand side, and ``holds`` whether the inequality is
    respected (with a small numerical tolerance).
    """

    primary_rate: float
    demand: float
    capacity: int
    protection: int
    worst_displacement: float
    bound: float

    @property
    def holds(self) -> bool:
        return self.worst_displacement <= self.bound * (1.0 + 1e-9) + 1e-12

    @property
    def slack(self) -> float:
        """How loose the bound is: ``bound - worst_displacement``."""
        return self.bound - self.worst_displacement


def verify_theorem1(
    demand: float,
    capacity: int,
    protection: int,
    overflow_rates: Sequence[float],
    primary_rate: float | None = None,
) -> TheoremCheck:
    """Check Theorem 1 for a concrete scenario.

    ``demand`` is the primary traffic demand ``Lambda`` (the quantity the
    bound is expressed in); ``primary_rate`` is the *effective* primary rate
    ``nu <= Lambda`` (defaults to ``Lambda`` itself).  The overflow rates may
    be any non-negative state-dependent vector, per assumption A1.
    """
    nu = demand if primary_rate is None else primary_rate
    if nu > demand + 1e-12:
        raise ValueError(f"effective rate nu={nu} exceeds demand Lambda={demand}")
    profile = displacement_profile(nu, capacity, protection, overflow_rates)
    worst = float(profile.max()) if profile.size else 0.0
    bound = displacement_bound(demand, capacity, protection)
    return TheoremCheck(
        primary_rate=nu,
        demand=demand,
        capacity=capacity,
        protection=protection,
        worst_displacement=worst,
        bound=bound,
    )
