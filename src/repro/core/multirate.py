"""Multirate (multi-service) loss links — the paper's stated future work.

The paper restricts itself to calls of identical bandwidth ("In this
preliminary study we do not address the support of multiple call types")
while noting that its control strategy extends to Multiple Service/Multiple
Resource models.  This module supplies the multirate substrate:

* the **Kaufman-Roberts recursion** — the exact occupancy distribution and
  per-class blocking of a complete-sharing link offered several Poisson
  classes with integer bandwidths (the multirate generalization of
  Erlang-B);
* a **conservative protection level** for multirate alternate routing: a
  bandwidth-``b`` alternate call is treated as ``b`` simultaneous unit
  calls, each of which Theorem 1 charges with at most
  ``B(L, C)/B(L, C - r)`` displaced primary *units*, where ``L`` is the
  link's primary demand in bandwidth units.  Requiring the per-unit bound
  to be at most ``1 / (H * b_max)`` makes the whole alternate call's
  displacement along any route at most one call-equivalent, preserving the
  better-than-single-path guarantee.  This unit-decomposition is a
  conservative engineering extension, not a theorem from the paper; it is
  exact in the single-class unit-bandwidth case, where it reduces to
  Equation 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .protection import min_protection_level

__all__ = [
    "TrafficClass",
    "kaufman_roberts_distribution",
    "multirate_blocking",
    "multirate_protection_level",
]


@dataclass(frozen=True)
class TrafficClass:
    """One call class: a name, an offered load (Erlangs) and a bandwidth.

    Bandwidth is in capacity units (the paper's prototype call — 1 Mb/s
    video on links provisioned in 1 Mb/s slots — is bandwidth 1).  Holding
    times are unit mean for every class, as in the paper.
    """

    name: str
    load: float
    bandwidth: int

    def __post_init__(self) -> None:
        if self.load < 0:
            raise ValueError(f"load must be non-negative, got {self.load}")
        if self.bandwidth < 1 or self.bandwidth != int(self.bandwidth):
            raise ValueError(f"bandwidth must be a positive integer, got {self.bandwidth}")


def kaufman_roberts_distribution(
    classes: Sequence[TrafficClass], capacity: int
) -> np.ndarray:
    """Exact occupancy distribution of a complete-sharing multirate link.

    Returns ``q`` with ``q[j]`` the stationary probability that ``j``
    bandwidth units are busy, via the Kaufman-Roberts recursion::

        j * q(j) = sum over classes k of  load_k * b_k * q(j - b_k)

    Exact for Poisson arrivals and any holding-time distribution with unit
    mean (the distribution is insensitive).  Reduces to the Erlang
    distribution when a single unit-bandwidth class is offered.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    q = np.zeros(capacity + 1, dtype=float)
    q[0] = 1.0
    for j in range(1, capacity + 1):
        total = 0.0
        for cls in classes:
            if cls.bandwidth <= j and cls.load > 0:
                total += cls.load * cls.bandwidth * q[j - cls.bandwidth]
        q[j] = total / j
        if q[j] > 1e250:
            q[: j + 1] /= q[j]
    q /= q.sum()
    return q


def multirate_blocking(
    classes: Sequence[TrafficClass], capacity: int
) -> dict[str, float]:
    """Per-class blocking probabilities of a complete-sharing link.

    Class ``k`` is blocked when fewer than ``b_k`` units are free::

        B_k = sum of q(j) for j > capacity - b_k

    (By PASTA each Poisson class sees the stationary distribution.)
    """
    q = kaufman_roberts_distribution(classes, capacity)
    blocking: dict[str, float] = {}
    for cls in classes:
        threshold = capacity - cls.bandwidth
        blocking[cls.name] = float(q[threshold + 1 :].sum()) if threshold >= 0 else 1.0
    return blocking


def multirate_protection_level(
    primary_unit_load: float,
    capacity: int,
    max_hops: int,
    max_alternate_bandwidth: int,
) -> int:
    """Conservative protection level for a multirate link.

    ``primary_unit_load`` is the link's primary demand measured in bandwidth
    units (each class contributes ``load * bandwidth``); ``capacity`` is in
    the same units.  An alternate call of bandwidth ``b`` is decomposed into
    ``b`` unit calls; bounding each unit's displacement by
    ``1 / (max_hops * max_alternate_bandwidth)`` caps the call's total
    displacement along any alternate route at one call-equivalent.  With a
    single unit-bandwidth class this is exactly the paper's Equation 15.
    """
    if max_alternate_bandwidth < 1:
        raise ValueError("max_alternate_bandwidth must be >= 1")
    return min_protection_level(
        primary_unit_load, capacity, max_hops * max_alternate_bandwidth
    )
