"""Erlang blocking functions.

This module implements the classical Erlang-B blocking function, its
numerically stable inverse-blocking recursion (Jagerman's Equation 12, which
the paper leans on in Section 2), the generalized Erlang blocking function of
a birth-death chain with state-dependent arrival rates, and the derivatives
needed by the min-link-loss primary-path optimizer.

Everything operates on a link modeled as an ``M/M/C/C`` loss system: calls
arrive Poisson at ``load`` Erlangs (holding time is the unit of time) and the
link carries at most ``capacity`` simultaneous calls.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "erlang_b",
    "erlang_b_inverse_sequence",
    "erlang_b_sequence",
    "log_erlang_b_inverse_sequence",
    "erlang_b_derivative",
    "expected_lost_calls",
    "expected_lost_calls_derivative",
    "generalized_erlang_b",
    "erlang_b_fixed_capacity_solve",
]


def _validate_capacity(capacity: int) -> int:
    if capacity != int(capacity) or capacity < 0:
        raise ValueError(f"capacity must be a non-negative integer, got {capacity!r}")
    return int(capacity)


def _validate_load(load: float) -> float:
    load = float(load)
    if load < 0 or math.isnan(load):
        raise ValueError(f"load must be non-negative, got {load!r}")
    return load


def erlang_b_inverse_sequence(load: float, capacity: int) -> np.ndarray:
    """Return ``y_x = 1 / B(load, x)`` for ``x = 0 .. capacity``.

    Uses the well-known recursion for the inverse blocking function
    (Equation 12 of the paper, after Jagerman)::

        y_0 = 1
        y_x = 1 + (x / load) * y_{x-1}

    The recursion is numerically stable (all terms positive) and costs
    ``O(capacity)``.  For ``load == 0`` the convention ``B(0, 0) = 1`` and
    ``B(0, x) = 0`` for ``x >= 1`` applies, so ``y`` is ``[1, inf, ...]``.
    """
    load = _validate_load(load)
    capacity = _validate_capacity(capacity)
    y = np.empty(capacity + 1, dtype=float)
    y[0] = 1.0
    if capacity == 0:
        return y
    if load == 0.0:
        y[1:] = np.inf
        return y
    with np.errstate(over="ignore"):
        # Overflow to inf is the correct limit: y -> inf means B -> 0.
        for x in range(1, capacity + 1):
            y[x] = 1.0 + (x / load) * y[x - 1]
    return y


def erlang_b_sequence(load: float, capacity: int) -> np.ndarray:
    """Return ``B(load, x)`` for ``x = 0 .. capacity`` as an array."""
    y = erlang_b_inverse_sequence(load, capacity)
    with np.errstate(divide="ignore"):
        return 1.0 / y


def log_erlang_b_inverse_sequence(load: float, capacity: int) -> np.ndarray:
    """Return ``log y_x = -log B(load, x)`` for ``x = 0 .. capacity``.

    The plain recursion overflows ``y`` (equivalently, ``B`` underflows)
    once blocking drops below ~1e-308 — routine for lightly loaded links of
    even moderate capacity.  Running it in log space,
    ``log y_x = logaddexp(0, log(x / load) + log y_{x-1})``, stays finite for
    any positive load, which is what the protection-level search needs: it
    compares *ratios* of blockings that are individually unrepresentable.
    """
    load = _validate_load(load)
    capacity = _validate_capacity(capacity)
    log_y = np.empty(capacity + 1, dtype=float)
    log_y[0] = 0.0
    if capacity == 0:
        return log_y
    if load == 0.0:
        log_y[1:] = np.inf
        return log_y
    log_load = math.log(load)
    for x in range(1, capacity + 1):
        # log(x) - log(load), not log(x / load): the quotient overflows for
        # subnormal loads long before its logarithm does.
        log_y[x] = np.logaddexp(0.0, math.log(x) - log_load + log_y[x - 1])
    return log_y


def erlang_b(load: float, capacity: int) -> float:
    """Erlang-B blocking probability ``B(load, capacity)``.

    ``load`` is the offered traffic in Erlangs; ``capacity`` is the number of
    simultaneous calls the link supports.  ``B(load, 0) == 1`` for any load
    (a zero-capacity link blocks everything) and ``B(0, c) == 0`` for
    ``c >= 1``.
    """
    load = _validate_load(load)
    capacity = _validate_capacity(capacity)
    if capacity == 0:
        return 1.0
    if load == 0.0:
        return 0.0
    y = 1.0
    for x in range(1, capacity + 1):
        y = 1.0 + (x / load) * y
    return 1.0 / y


def erlang_b_derivative(load: float, capacity: int) -> float:
    """Derivative ``dB/d(load)`` of the Erlang-B function in the load.

    Uses the closed form ``B'(a) = B(a) * (C / a - 1 + B(a))`` which follows
    from differentiating the defining sum.  Needed by the min-link-loss
    optimizer (Section 4.2.2 of the paper, after Krishnan [23]).
    """
    load = _validate_load(load)
    capacity = _validate_capacity(capacity)
    if capacity == 0:
        return 0.0
    if load == 0.0:
        # B(a, C) ~ a^C / C! near zero, so B'(0) = 0 for C >= 2 and 1 for C == 1.
        return 1.0 if capacity == 1 else 0.0
    b = erlang_b(load, capacity)
    return b * (capacity / load - 1.0 + b)


def expected_lost_calls(load: float, capacity: int) -> float:
    """Expected lost-call rate ``load * B(load, capacity)``.

    Krishnan [23] proves this is convex in ``load``, which is what makes the
    min-link-loss primary-path optimization a convex program.
    """
    return _validate_load(load) * erlang_b(load, capacity)


def expected_lost_calls_derivative(load: float, capacity: int) -> float:
    """Derivative of ``load * B(load, capacity)`` in the load."""
    load = _validate_load(load)
    b = erlang_b(load, capacity)
    return b + load * erlang_b_derivative(load, capacity)


def generalized_erlang_b(birth_rates: Sequence[float]) -> float:
    """Generalized Erlang blocking function ``B(lambda_vec, C)``.

    ``birth_rates[s]`` is the total arrival rate when the link holds ``s``
    calls, for ``s = 0 .. C-1`` (so ``C = len(birth_rates)``).  Death rates
    are the canonical ``[1, 2, ..., C]`` of unit-mean exponential holding
    times.  Returns the stationary probability of the full state ``C`` —
    the *time* blocking, which by PASTA equals the call blocking seen by any
    state-independent Poisson sub-stream.

    This is the ``B(lambda_, C)`` of the paper's Theorem-1 proof (Figure 1).
    """
    rates = [float(r) for r in birth_rates]
    if any(r < 0 for r in rates):
        raise ValueError("birth rates must be non-negative")
    capacity = len(rates)
    if capacity == 0:
        return 1.0
    # Unnormalized stationary weights pi_s = prod_{j<s} birth[j] / (j+1),
    # accumulated in a running fashion and normalized at the end.  To avoid
    # overflow for large capacities we renormalize on the fly.
    weights = np.empty(capacity + 1, dtype=float)
    weights[0] = 1.0
    for s in range(capacity):
        weights[s + 1] = weights[s] * rates[s] / (s + 1.0)
        if weights[s + 1] > 1e250:
            weights[: s + 2] /= weights[s + 1]
    total = weights.sum()
    return float(weights[capacity] / total)


def erlang_b_fixed_capacity_solve(blocking: float, capacity: int) -> float:
    """Invert Erlang-B in the load: find ``a`` with ``B(a, capacity) = blocking``.

    Solved by bisection; ``B`` is strictly increasing in the load for
    ``capacity >= 1``.  Raises ``ValueError`` for targets outside ``(0, 1)``.
    """
    capacity = _validate_capacity(capacity)
    if capacity == 0:
        raise ValueError("capacity 0 blocks everything; no load solves B = blocking < 1")
    if not 0.0 < blocking < 1.0:
        raise ValueError(f"blocking must lie strictly in (0, 1), got {blocking!r}")
    lo, hi = 0.0, max(1.0, float(capacity))
    while erlang_b(hi, capacity) < blocking:
        hi *= 2.0
        if hi > 1e12:
            raise ValueError("no finite load reaches the requested blocking")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if erlang_b(mid, capacity) < blocking:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)
