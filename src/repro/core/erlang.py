"""Erlang blocking functions.

This module implements the classical Erlang-B blocking function, its
numerically stable inverse-blocking recursion (Jagerman's Equation 12, which
the paper leans on in Section 2), the generalized Erlang blocking function of
a birth-death chain with state-dependent arrival rates, and the derivatives
needed by the min-link-loss primary-path optimizer.

Everything operates on a link modeled as an ``M/M/C/C`` loss system: calls
arrive Poisson at ``load`` Erlangs (holding time is the unit of time) and the
link carries at most ``capacity`` simultaneous calls.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Sequence

import numpy as np

__all__ = [
    "erlang_b",
    "erlang_b_grid",
    "erlang_b_batch",
    "erlang_b_many",
    "erlang_b_inverse_sequence",
    "erlang_b_sequence",
    "log_erlang_b_inverse_sequence",
    "erlang_b_derivative",
    "expected_lost_calls",
    "expected_lost_calls_derivative",
    "generalized_erlang_b",
    "erlang_b_fixed_capacity_solve",
    "ErlangTable",
    "shared_erlang_table",
]


def _validate_capacity(capacity: int) -> int:
    if capacity != int(capacity) or capacity < 0:
        raise ValueError(f"capacity must be a non-negative integer, got {capacity!r}")
    return int(capacity)


def _validate_load(load: float) -> float:
    load = float(load)
    if load < 0 or math.isnan(load):
        raise ValueError(f"load must be non-negative, got {load!r}")
    return load


def erlang_b_inverse_sequence(load: float, capacity: int) -> np.ndarray:
    """Return ``y_x = 1 / B(load, x)`` for ``x = 0 .. capacity``.

    Uses the well-known recursion for the inverse blocking function
    (Equation 12 of the paper, after Jagerman)::

        y_0 = 1
        y_x = 1 + (x / load) * y_{x-1}

    The recursion is numerically stable (all terms positive) and costs
    ``O(capacity)``.  For ``load == 0`` the convention ``B(0, 0) = 1`` and
    ``B(0, x) = 0`` for ``x >= 1`` applies, so ``y`` is ``[1, inf, ...]``.
    """
    load = _validate_load(load)
    capacity = _validate_capacity(capacity)
    y = np.empty(capacity + 1, dtype=float)
    y[0] = 1.0
    if capacity == 0:
        return y
    if load == 0.0:
        y[1:] = np.inf
        return y
    with np.errstate(over="ignore"):
        # Overflow to inf is the correct limit: y -> inf means B -> 0.
        for x in range(1, capacity + 1):
            y[x] = 1.0 + (x / load) * y[x - 1]
    return y


def erlang_b_sequence(load: float, capacity: int) -> np.ndarray:
    """Return ``B(load, x)`` for ``x = 0 .. capacity`` as an array."""
    y = erlang_b_inverse_sequence(load, capacity)
    with np.errstate(divide="ignore"):
        return 1.0 / y


def log_erlang_b_inverse_sequence(load: float, capacity: int) -> np.ndarray:
    """Return ``log y_x = -log B(load, x)`` for ``x = 0 .. capacity``.

    The plain recursion overflows ``y`` (equivalently, ``B`` underflows)
    once blocking drops below ~1e-308 — routine for lightly loaded links of
    even moderate capacity.  Running it in log space,
    ``log y_x = logaddexp(0, log(x / load) + log y_{x-1})``, stays finite for
    any positive load, which is what the protection-level search needs: it
    compares *ratios* of blockings that are individually unrepresentable.
    """
    load = _validate_load(load)
    capacity = _validate_capacity(capacity)
    log_y = np.empty(capacity + 1, dtype=float)
    log_y[0] = 0.0
    if capacity == 0:
        return log_y
    if load == 0.0:
        log_y[1:] = np.inf
        return log_y
    log_load = math.log(load)
    for x in range(1, capacity + 1):
        # log(x) - log(load), not log(x / load): the quotient overflows for
        # subnormal loads long before its logarithm does.
        log_y[x] = np.logaddexp(0.0, math.log(x) - log_load + log_y[x - 1])
    return log_y


def erlang_b(load: float, capacity: int) -> float:
    """Erlang-B blocking probability ``B(load, capacity)``.

    ``load`` is the offered traffic in Erlangs; ``capacity`` is the number of
    simultaneous calls the link supports.  ``B(load, 0) == 1`` for any load
    (a zero-capacity link blocks everything) and ``B(0, c) == 0`` for
    ``c >= 1``.
    """
    load = _validate_load(load)
    capacity = _validate_capacity(capacity)
    if capacity == 0:
        return 1.0
    if load == 0.0:
        return 0.0
    y = 1.0
    for x in range(1, capacity + 1):
        y = 1.0 + (x / load) * y
    return 1.0 / y


def erlang_b_grid(loads: Sequence[float] | np.ndarray, capacity: int) -> np.ndarray:
    """Vectorized ``B(load, capacity)`` over a grid of loads at one capacity.

    Runs the inverse-blocking recursion elementwise across the whole grid, so
    every entry performs exactly the same floating-point operations (in the
    same order) as the scalar :func:`erlang_b` — the results are bit-identical,
    just computed ``len(loads)`` links at a time instead of one by one.  This
    is the kernel behind the vectorized reduced-load fixed points, which group
    a network's links by capacity and evaluate each group in one call.
    """
    capacity = _validate_capacity(capacity)
    grid = np.asarray(loads, dtype=float)
    if grid.ndim != 1:
        raise ValueError("loads must be one-dimensional")
    if grid.size and ((grid < 0).any() or np.isnan(grid).any()):
        raise ValueError("loads must be non-negative")
    if capacity == 0:
        return np.ones_like(grid)
    y = np.ones_like(grid)
    with np.errstate(divide="ignore", over="ignore"):
        # x / 0 -> inf makes y -> inf, and 1 / inf -> 0: exactly the scalar
        # convention B(0, c) = 0 for c >= 1, with no special-casing.
        for x in range(1, capacity + 1):
            y = 1.0 + (x / grid) * y
        return 1.0 / y


def erlang_b_batch(loads: Sequence[float] | np.ndarray, capacity: int) -> np.ndarray:
    """Fast vectorized ``B(load, capacity)`` over a grid of loads.

    Evaluates the inverse blocking ``1/B = sum_{k=0..C} C!/(C-k)! / load^k``
    directly: one ``(len(loads), capacity)`` matrix of factors
    ``(C - k + 1) / load``, one ``cumprod`` along the capacity axis, one sum.
    Unlike :func:`erlang_b_grid` this does not replay the scalar Horner
    recursion step by step — the sum is accumulated in a different order — so
    results agree with :func:`erlang_b` only to within a few ulp (relative
    error ~1e-13) rather than bit for bit.  In exchange it is an order of
    magnitude faster on the small link groups the fixed points sweep, because
    the sequential per-``x`` dependency disappears into a single kernel.

    Limits behave as in the scalar function: ``load == 0`` divides to ``inf``
    and returns blocking 0; term overflow saturates to ``inf`` and likewise
    returns 0, the correct limit.
    """
    capacity = _validate_capacity(capacity)
    grid = np.asarray(loads, dtype=float)
    if grid.ndim != 1:
        raise ValueError("loads must be one-dimensional")
    if grid.size and ((grid < 0).any() or np.isnan(grid).any()):
        raise ValueError("loads must be non-negative")
    if capacity == 0:
        return np.ones_like(grid)
    descending = np.arange(capacity, 0, -1, dtype=float)
    with np.errstate(divide="ignore", over="ignore"):
        terms = np.cumprod(descending[np.newaxis, :] / grid[:, np.newaxis], axis=1)
        y = 1.0 + terms.sum(axis=1)
        return 1.0 / y


def erlang_b_many(
    loads: Sequence[float] | np.ndarray, capacities: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Elementwise ``B(loads[i], capacities[i])``, grouped by capacity.

    Links sharing a capacity are evaluated together through
    :func:`erlang_b_grid`; meshes with homogeneous trunk groups (the paper's
    networks) collapse into a single vectorized recursion.  Zero-capacity
    entries follow the ``B(load, 0) = 1`` convention.  Bit-identical to
    calling :func:`erlang_b` per element.
    """
    load_arr = np.asarray(loads, dtype=float)
    cap_arr = np.asarray(capacities, dtype=np.int64)
    if load_arr.shape != cap_arr.shape or load_arr.ndim != 1:
        raise ValueError("loads and capacities must be parallel 1-D arrays")
    out = np.empty(load_arr.shape, dtype=float)
    for capacity in np.unique(cap_arr):
        mask = cap_arr == capacity
        out[mask] = erlang_b_grid(load_arr[mask], int(capacity))
    return out


class ErlangTable:
    """Memoized Erlang-B evaluations keyed on ``(capacity, load-grid)``.

    The reduced-load fixed points re-evaluate Erlang blocking for the same
    capacity groups sweep after sweep, and the protection-level machinery
    re-walks the same log-space inverse-blocking sequences for every ``H``
    and every repeated ``(load, capacity)`` pair.  One shared, LRU-bounded
    table serves both: :meth:`blocking_grid` caches vectorized
    :func:`erlang_b_grid` results keyed on the capacity and the exact byte
    content of the load grid, and :meth:`log_inverse_sequence` caches
    :func:`log_erlang_b_inverse_sequence` keyed on ``(capacity, load)``.

    Cached arrays are returned read-only (copy before mutating).  Memoization
    never changes values — keys are exact, so a hit returns precisely what a
    fresh computation would.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _get(self, key: tuple, compute) -> np.ndarray:
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        value = compute()
        value.setflags(write=False)
        self._cache[key] = value
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return value

    def blocking_grid(self, loads: np.ndarray, capacity: int) -> np.ndarray:
        """Cached ``erlang_b_grid(loads, capacity)`` (read-only array)."""
        grid = np.ascontiguousarray(loads, dtype=float)
        key = ("grid", int(capacity), grid.tobytes())
        return self._get(key, lambda: erlang_b_grid(grid, capacity))

    def blocking_batch(self, loads: np.ndarray, capacity: int) -> np.ndarray:
        """Cached ``erlang_b_batch(loads, capacity)`` (read-only array).

        The fixed points call this once per capacity group per sweep; repeated
        sweeps over the same load grid (load sweeps, protection searches,
        benchmark reruns) hit the cache instead of recomputing.
        """
        grid = np.ascontiguousarray(loads, dtype=float)
        key = ("batch", int(capacity), grid.tobytes())
        return self._get(key, lambda: erlang_b_batch(grid, capacity))

    def log_inverse_sequence(self, load: float, capacity: int) -> np.ndarray:
        """Cached ``log_erlang_b_inverse_sequence`` (read-only array)."""
        key = ("logseq", int(capacity), float(load))
        return self._get(key, lambda: log_erlang_b_inverse_sequence(load, capacity))

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}


#: Process-wide table shared by the fixed points and the protection searches.
shared_erlang_table = ErlangTable()


def erlang_b_derivative(load: float, capacity: int) -> float:
    """Derivative ``dB/d(load)`` of the Erlang-B function in the load.

    Uses the closed form ``B'(a) = B(a) * (C / a - 1 + B(a))`` which follows
    from differentiating the defining sum.  Needed by the min-link-loss
    optimizer (Section 4.2.2 of the paper, after Krishnan [23]).
    """
    load = _validate_load(load)
    capacity = _validate_capacity(capacity)
    if capacity == 0:
        return 0.0
    if load == 0.0:
        # B(a, C) ~ a^C / C! near zero, so B'(0) = 0 for C >= 2 and 1 for C == 1.
        return 1.0 if capacity == 1 else 0.0
    b = erlang_b(load, capacity)
    return b * (capacity / load - 1.0 + b)


def expected_lost_calls(load: float, capacity: int) -> float:
    """Expected lost-call rate ``load * B(load, capacity)``.

    Krishnan [23] proves this is convex in ``load``, which is what makes the
    min-link-loss primary-path optimization a convex program.
    """
    return _validate_load(load) * erlang_b(load, capacity)


def expected_lost_calls_derivative(load: float, capacity: int) -> float:
    """Derivative of ``load * B(load, capacity)`` in the load."""
    load = _validate_load(load)
    b = erlang_b(load, capacity)
    return b + load * erlang_b_derivative(load, capacity)


def generalized_erlang_b(birth_rates: Sequence[float]) -> float:
    """Generalized Erlang blocking function ``B(lambda_vec, C)``.

    ``birth_rates[s]`` is the total arrival rate when the link holds ``s``
    calls, for ``s = 0 .. C-1`` (so ``C = len(birth_rates)``).  Death rates
    are the canonical ``[1, 2, ..., C]`` of unit-mean exponential holding
    times.  Returns the stationary probability of the full state ``C`` —
    the *time* blocking, which by PASTA equals the call blocking seen by any
    state-independent Poisson sub-stream.

    This is the ``B(lambda_, C)`` of the paper's Theorem-1 proof (Figure 1).
    """
    rates = [float(r) for r in birth_rates]
    if any(r < 0 for r in rates):
        raise ValueError("birth rates must be non-negative")
    capacity = len(rates)
    if capacity == 0:
        return 1.0
    # Unnormalized stationary weights pi_s = prod_{j<s} birth[j] / (j+1),
    # accumulated in a running fashion and normalized at the end.  To avoid
    # overflow for large capacities we renormalize on the fly.
    weights = np.empty(capacity + 1, dtype=float)
    weights[0] = 1.0
    for s in range(capacity):
        weights[s + 1] = weights[s] * rates[s] / (s + 1.0)
        if weights[s + 1] > 1e250:
            weights[: s + 2] /= weights[s + 1]
    total = weights.sum()
    return float(weights[capacity] / total)


def erlang_b_fixed_capacity_solve(blocking: float, capacity: int) -> float:
    """Invert Erlang-B in the load: find ``a`` with ``B(a, capacity) = blocking``.

    Solved by bisection; ``B`` is strictly increasing in the load for
    ``capacity >= 1``.  Raises ``ValueError`` for targets outside ``(0, 1)``.
    """
    capacity = _validate_capacity(capacity)
    if capacity == 0:
        raise ValueError("capacity 0 blocks everything; no load solves B = blocking < 1")
    if not 0.0 < blocking < 1.0:
        raise ValueError(f"blocking must lie strictly in (0, 1), got {blocking!r}")
    lo, hi = 0.0, max(1.0, float(capacity))
    while erlang_b(hi, capacity) < blocking:
        hi *= 2.0
        if hi > 1e12:
            raise ValueError("no finite load reaches the requested blocking")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if erlang_b(mid, capacity) < blocking:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)
