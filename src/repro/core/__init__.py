"""Analytic core: Erlang blocking, birth-death chains, Theorem 1, protection levels."""

from .erlang import (
    erlang_b,
    erlang_b_derivative,
    erlang_b_fixed_capacity_solve,
    erlang_b_inverse_sequence,
    erlang_b_sequence,
    log_erlang_b_inverse_sequence,
    expected_lost_calls,
    expected_lost_calls_derivative,
    generalized_erlang_b,
)
from .markov import BirthDeathChain, link_chain
from .multirate import (
    TrafficClass,
    kaufman_roberts_distribution,
    multirate_blocking,
    multirate_protection_level,
)
from .protection import (
    displacement_bound,
    figure2_curve,
    min_protection_level,
    min_protection_levels,
    protection_levels,
)
from .theorem import (
    TheoremCheck,
    displacement_profile,
    exact_displacement,
    verify_theorem1,
)

__all__ = [
    "erlang_b",
    "erlang_b_derivative",
    "erlang_b_fixed_capacity_solve",
    "erlang_b_inverse_sequence",
    "erlang_b_sequence",
    "log_erlang_b_inverse_sequence",
    "expected_lost_calls",
    "expected_lost_calls_derivative",
    "generalized_erlang_b",
    "BirthDeathChain",
    "link_chain",
    "TrafficClass",
    "kaufman_roberts_distribution",
    "multirate_blocking",
    "multirate_protection_level",
    "displacement_bound",
    "figure2_curve",
    "min_protection_level",
    "min_protection_levels",
    "protection_levels",
    "TheoremCheck",
    "displacement_profile",
    "exact_displacement",
    "verify_theorem1",
]
