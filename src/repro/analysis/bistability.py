"""Bistability of alternate routing in symmetric networks (mean-field).

The paper's motivation for control cites the bistability/instability results
of Akinpelu [1], Gibbens-Hunt-Kelly [10] and Mason [25]: in a symmetric
fully-connected network where blocked calls overflow to two-hop alternates,
the mean-field (Erlang fixed-point) equations develop *two* stable operating
points past a critical load — a low-blocking one and a high-blocking one in
which most carried calls occupy two circuits.  Trunk reservation removes the
high-blocking branch.

Mean-field model (the classical one):

* every link is a birth-death chain with primary rate ``load`` and an
  overflow rate ``a`` in the unprotected states ``s < C - r``;
* a call blocked on its direct link (probability ``E`` = stationary mass of
  state ``C``) attempts one random two-hop alternate; the attempt lands on
  each of its two links as a Poisson stream and succeeds iff *both* links
  are below their protection threshold (independence approximation);
* consistency: each alternate attempt occupies two links, and every link is
  on equally many potential alternate paths, so the per-link attempt rate is
  ``a = 2 * load * E * (1 - F)`` where ``F`` = stationary mass of the
  protected states ``{C - r, ..., C}`` of the *other* link — by symmetry the
  same chain.

Iterating the map from different starting points exposes the multiple fixed
points; :func:`find_fixed_points` scans a grid of starts and deduplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.markov import link_chain

__all__ = [
    "SymmetricFixedPoint",
    "mean_field_map",
    "find_fixed_points",
    "network_blocking",
    "bistable_loads",
]


@dataclass(frozen=True)
class SymmetricFixedPoint:
    """One self-consistent operating point of the mean-field model.

    ``direct_blocking`` is ``E`` (a primary call finds its direct link
    full); ``protection_occupancy`` is ``F`` (a link is at or above its
    protection threshold); ``overflow_rate`` the per-link alternate attempt
    rate ``a``; ``blocking`` the end-to-end call blocking.
    """

    direct_blocking: float
    protection_occupancy: float
    overflow_rate: float
    blocking: float


def _chain_statistics(
    load: float, capacity: int, reservation: int, overflow: float
) -> tuple[float, float]:
    """Stationary ``(E, F)`` of the protected link chain with overflow rate."""
    chain = link_chain(load, capacity, reservation, [overflow] * capacity)
    pi = chain.stationary_distribution()
    direct = float(pi[capacity])
    protected = float(pi[capacity - reservation :].sum())
    return direct, protected


def _expected_attempts(protected: float, max_attempts: int) -> float:
    """Expected number of alternates tried per blocked call.

    Each attempt succeeds with probability ``(1 - F)^2`` (both links of the
    two-hop alternate below threshold, independence approximation); the call
    keeps trying fresh random alternates until success or ``max_attempts``.
    """
    failure = 1.0 - (1.0 - protected) ** 2
    if failure >= 1.0:
        return float(max_attempts)
    if failure == 0.0:
        return 1.0
    return (1.0 - failure**max_attempts) / (1.0 - failure)


def mean_field_map(
    load: float,
    capacity: int,
    reservation: int,
    state: tuple[float, float],
    max_attempts: int = 1,
) -> tuple[float, float]:
    """One iteration of the symmetric mean-field consistency map.

    Given the current guess ``(E, F)``, computes the implied per-link
    overflow attempt rate — blocked primaries times expected alternate
    attempts, each attempt touching two links and thinned by the partner
    link's availability — and returns the chain's new ``(E, F)``.  Larger
    ``max_attempts`` (the paper's networks retry every loop-free alternate)
    amplifies overflow and is what produces the classical bistability.
    """
    direct, protected = state
    attempts = _expected_attempts(protected, max_attempts)
    attempt_rate = 2.0 * load * direct * attempts * max(0.0, 1.0 - protected)
    return _chain_statistics(load, capacity, reservation, attempt_rate)


def network_blocking(state: tuple[float, float], max_attempts: int = 1) -> float:
    """End-to-end blocking at a mean-field state.

    A call is lost iff its direct link is full *and* all of its (up to
    ``max_attempts``) two-hop alternates fail::

        B = E * (1 - (1 - F)^2)^max_attempts
    """
    direct, protected = state
    failure = 1.0 - (1.0 - protected) ** 2
    return direct * failure**max_attempts


def find_fixed_points(
    load: float,
    capacity: int,
    reservation: int,
    max_attempts: int = 1,
    starts: Sequence[tuple[float, float]] = ((0.0, 0.0), (0.5, 0.5), (1.0, 1.0)),
    tolerance: float = 1e-10,
    max_iterations: int = 5_000,
    resolution: float = 1e-3,
) -> list[SymmetricFixedPoint]:
    """All distinct fixed points reachable from the given starts.

    Successive substitution converges to a *stable* fixed point from each
    start; starts at the idle and saturated corners find the low- and
    high-blocking branches when both exist.  Fixed points closer than
    ``resolution`` in ``(E, F)`` are merged.  Returned sorted by blocking.
    """
    found: list[SymmetricFixedPoint] = []
    for start in starts:
        state = (float(start[0]), float(start[1]))
        for __ in range(max_iterations):
            new_state = mean_field_map(load, capacity, reservation, state, max_attempts)
            delta = abs(new_state[0] - state[0]) + abs(new_state[1] - state[1])
            state = new_state
            if delta < tolerance:
                break
        attempts = _expected_attempts(state[1], max_attempts)
        attempt_rate = 2.0 * load * state[0] * attempts * max(0.0, 1.0 - state[1])
        candidate = SymmetricFixedPoint(
            direct_blocking=state[0],
            protection_occupancy=state[1],
            overflow_rate=attempt_rate,
            blocking=network_blocking(state, max_attempts),
        )
        duplicate = any(
            abs(candidate.direct_blocking - fp.direct_blocking) < resolution
            and abs(candidate.protection_occupancy - fp.protection_occupancy) < resolution
            for fp in found
        )
        if not duplicate:
            found.append(candidate)
    found.sort(key=lambda fp: fp.blocking)
    return found


def bistable_loads(
    capacity: int,
    reservation: int,
    loads: Sequence[float],
    max_attempts: int = 1,
) -> list[float]:
    """The subset of ``loads`` at which the model has multiple fixed points."""
    return [
        float(load)
        for load in loads
        if len(find_fixed_points(load, capacity, reservation, max_attempts)) > 1
    ]
