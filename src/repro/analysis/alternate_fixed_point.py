"""Reduced-load fixed point for (controlled) alternate routing on a mesh.

The classical Erlang fixed point (:mod:`repro.analysis.fixed_point`) covers
single-path routing.  This module extends it to the paper's two-tier scheme
on a *general* mesh, generalizing the symmetric mean-field of
:mod:`repro.analysis.bistability`:

* every link ``l`` is a birth-death chain with a state-independent primary
  rate ``nu_l`` plus an overflow rate ``a_l`` admitted only below the
  protection threshold ``C_l - r_l`` (the chain of the paper's Figure 1);
* the chain yields two per-link probabilities: ``E_l`` (full — blocks a
  primary set-up) and ``F_l`` (at/above the threshold — blocks an
  alternate);
* per O-D pair, the primary path blocks with ``1 - prod(1 - E)``; blocked
  traffic attempts the alternates in order, each failing with
  ``1 - prod(1 - F)`` (link independence throughout);
* consistency closes the loop: ``nu_l`` is the primary demand thinned by
  the *other* links of each primary path, and ``a_l`` sums, over every
  alternate route through ``l``, the pair's demand times the probability
  the attempt reaches that alternate times the acceptance probability of
  the route's other links.

Damped successive substitution converges in the paper's regimes (the
bistable regimes of the symmetric model can make the iterate start-
dependent — by design; see the bistability module).  Setting every ``r`` to
0 models uncontrolled alternate routing; an empty alternate table recovers
the classical single-path fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.markov import link_chain
from ..topology.graph import Network
from ..topology.paths import PathTable
from ..traffic.matrix import TrafficMatrix

__all__ = ["AlternateFixedPointResult", "alternate_routing_fixed_point"]


@dataclass(frozen=True)
class AlternateFixedPointResult:
    """Converged reduced-load model of the two-tier scheme.

    ``full_probability`` is ``E_l`` per link; ``protected_probability`` is
    ``F_l``; ``overflow_rates`` the converged per-link alternate arrival
    rates; ``pair_blocking`` the end-to-end per-O-D estimate and
    ``network_blocking`` its demand-weighted average.
    """

    full_probability: np.ndarray
    protected_probability: np.ndarray
    overflow_rates: np.ndarray
    pair_blocking: dict[tuple[int, int], float]
    network_blocking: float
    iterations: int
    converged: bool


def alternate_routing_fixed_point(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    protection_levels: np.ndarray,
    damping: float = 0.3,
    tolerance: float = 1e-8,
    max_iterations: int = 2_000,
) -> AlternateFixedPointResult:
    """Iterate the two-tier reduced-load equations to a fixed point."""
    if not 0 < damping <= 1:
        raise ValueError("damping must lie in (0, 1]")
    capacities = network.capacities()
    levels = np.asarray(protection_levels, dtype=np.int64)
    if levels.shape != (network.num_links,):
        raise ValueError("protection_levels must be per-link")
    if (levels < 0).any() or (levels > capacities).any():
        raise ValueError("protection levels must lie in [0, capacity]")

    demands = []
    for od, demand in traffic.positive_pairs():
        primary = table.primary.get(od)
        if primary is None:
            raise ValueError(f"O-D pair {od} has demand but no primary path")
        primary_links = network.path_links(primary)
        alternate_links = [
            network.path_links(path) for path in table.alternates.get(od, ())
        ]
        demands.append((od, demand, primary_links, alternate_links))

    num_links = network.num_links
    full = np.zeros(num_links)       # E_l
    protected = np.zeros(num_links)  # F_l
    overflow = np.zeros(num_links)
    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        # --- demand side: thinned primary rates and overflow attempt rates.
        nu = np.zeros(num_links)
        attempts = np.zeros(num_links)
        for __, demand, primary_links, alternates in demands:
            pass_primary = 1.0
            for link in primary_links:
                pass_primary *= 1.0 - full[link]
            for link in primary_links:
                own = 1.0 - full[link]
                nu[link] += demand * (pass_primary / own if own > 0 else 0.0)
            reach = demand * (1.0 - pass_primary)  # traffic entering tier 2
            for alt in alternates:
                accept = 1.0
                for link in alt:
                    accept *= 1.0 - protected[link]
                for link in alt:
                    own = 1.0 - protected[link]
                    attempts[link] += reach * (accept / own if own > 0 else 0.0)
                reach *= 1.0 - accept  # next alternate sees the failures
        # --- link side: solve each protected chain.
        new_full = np.empty(num_links)
        new_protected = np.empty(num_links)
        for link in range(num_links):
            capacity = int(capacities[link])
            if capacity == 0:
                new_full[link] = 1.0
                new_protected[link] = 1.0
                continue
            chain = link_chain(
                float(nu[link]),
                capacity,
                int(levels[link]),
                [float(attempts[link])] * capacity,
            )
            pi = chain.stationary_distribution()
            new_full[link] = float(pi[capacity])
            new_protected[link] = float(pi[capacity - int(levels[link]) :].sum())
        step = max(
            np.abs(new_full - full).max(), np.abs(new_protected - protected).max()
        )
        full = full + damping * (new_full - full)
        protected = protected + damping * (new_protected - protected)
        overflow = attempts
        if step < tolerance:
            converged = True
            break

    pair_blocking: dict[tuple[int, int], float] = {}
    weighted = 0.0
    total_demand = 0.0
    for od, demand, primary_links, alternates in demands:
        pass_primary = 1.0
        for link in primary_links:
            pass_primary *= 1.0 - full[link]
        lost = 1.0 - pass_primary
        for alt in alternates:
            accept = 1.0
            for link in alt:
                accept *= 1.0 - protected[link]
            lost *= 1.0 - accept
        pair_blocking[od] = lost
        weighted += demand * lost
        total_demand += demand
    return AlternateFixedPointResult(
        full_probability=full,
        protected_probability=protected,
        overflow_rates=overflow,
        pair_blocking=pair_blocking,
        network_blocking=weighted / total_demand if total_demand else 0.0,
        iterations=iterations,
        converged=converged,
    )
