"""Reduced-load fixed point for (controlled) alternate routing on a mesh.

The classical Erlang fixed point (:mod:`repro.analysis.fixed_point`) covers
single-path routing.  This module extends it to the paper's two-tier scheme
on a *general* mesh, generalizing the symmetric mean-field of
:mod:`repro.analysis.bistability`:

* every link ``l`` is a birth-death chain with a state-independent primary
  rate ``nu_l`` plus an overflow rate ``a_l`` admitted only below the
  protection threshold ``C_l - r_l`` (the chain of the paper's Figure 1);
* the chain yields two per-link probabilities: ``E_l`` (full — blocks a
  primary set-up) and ``F_l`` (at/above the threshold — blocks an
  alternate);
* per O-D pair, the primary path blocks with ``1 - prod(1 - E)``; blocked
  traffic attempts the alternates in order, each failing with
  ``1 - prod(1 - F)`` (link independence throughout);
* consistency closes the loop: ``nu_l`` is the primary demand thinned by
  the *other* links of each primary path, and ``a_l`` sums, over every
  alternate route through ``l``, the pair's demand times the probability
  the attempt reaches that alternate times the acceptance probability of
  the route's other links.

Damped successive substitution converges in the paper's regimes (the
bistable regimes of the symmetric model can make the iterate start-
dependent — by design; see the bistability module).  Setting every ``r`` to
0 models uncontrolled alternate routing; an empty alternate table recovers
the classical single-path fixed point.

Two implementations exist.  The default vectorizes both halves of each
sweep: primary and alternate routes are flattened once into link-index
arrays (``np.multiply.reduceat`` for path products, ``np.bincount`` for the
rate accumulations, a short stage loop to chain ``reach`` across each
pair's ordered alternates), and the per-link birth-death chains are solved
per capacity group in log space — one ``cumsum`` of log birth-rate ratios
replaces ``num_links`` sequential chain solves, with a max-shift before
exponentiating standing in for the reference's on-the-fly renormalization.
The log-space solve reorders floating-point work, so results match the
reference loops to ~1e-10 relative rather than bit for bit; pass
``reference=True`` for the original implementation (the equivalence tests
pin the tolerance, the perf benchmarks time the two against each other).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.markov import link_chain
from ..topology.graph import Network
from ..topology.paths import PathTable
from ..traffic.matrix import TrafficMatrix

__all__ = ["AlternateFixedPointResult", "alternate_routing_fixed_point"]


@dataclass(frozen=True)
class AlternateFixedPointResult:
    """Converged reduced-load model of the two-tier scheme.

    ``full_probability`` is ``E_l`` per link; ``protected_probability`` is
    ``F_l``; ``overflow_rates`` the converged per-link alternate arrival
    rates; ``pair_blocking`` the end-to-end per-O-D estimate and
    ``network_blocking`` its demand-weighted average.
    """

    full_probability: np.ndarray
    protected_probability: np.ndarray
    overflow_rates: np.ndarray
    pair_blocking: dict[tuple[int, int], float]
    network_blocking: float
    iterations: int
    converged: bool


def _resolve_routes(
    network: Network, table: PathTable, traffic: TrafficMatrix
) -> list[tuple[tuple[int, int], float, tuple[int, ...], list[tuple[int, ...]]]]:
    """Resolve each positive-demand pair's primary and alternates to links."""
    demands = []
    for od, demand in traffic.positive_pairs():
        primary = table.primary.get(od)
        if primary is None:
            raise ValueError(f"O-D pair {od} has demand but no primary path")
        primary_links = network.path_links(primary)
        alternate_links = [
            network.path_links(path) for path in table.alternates.get(od, ())
        ]
        demands.append((od, demand, primary_links, alternate_links))
    return demands


def _flatten(paths: list) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a path list to (flat_links, starts, entry_path) index arrays."""
    lengths = np.array([len(p) for p in paths], dtype=np.int64)
    flat = np.array([link for path in paths for link in path], dtype=np.int64)
    starts = np.zeros(len(paths), dtype=np.int64)
    if paths:
        starts[1:] = np.cumsum(lengths)[:-1]
    entry = np.repeat(np.arange(len(paths), dtype=np.int64), lengths)
    return flat, starts, entry


def alternate_routing_fixed_point(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    protection_levels: np.ndarray,
    damping: float = 0.3,
    tolerance: float = 1e-8,
    max_iterations: int = 2_000,
    reference: bool = False,
) -> AlternateFixedPointResult:
    """Iterate the two-tier reduced-load equations to a fixed point.

    ``reference=True`` runs the original per-pair/per-link Python loops —
    the equivalence oracle for the tests and the baseline the perf
    benchmarks time against.
    """
    if not 0 < damping <= 1:
        raise ValueError("damping must lie in (0, 1]")
    capacities = network.capacities()
    levels = np.asarray(protection_levels, dtype=np.int64)
    if levels.shape != (network.num_links,):
        raise ValueError("protection_levels must be per-link")
    if (levels < 0).any() or (levels > capacities).any():
        raise ValueError("protection levels must lie in [0, capacity]")
    if reference:
        return _alternate_fixed_point_reference(
            network, table, traffic, levels, damping, tolerance, max_iterations
        )

    demands = _resolve_routes(network, table, traffic)
    num_links = network.num_links
    num_pairs = len(demands)
    demand_arr = np.array([demand for __, demand, __, __ in demands], dtype=float)

    # Primary paths, flattened pair-major so bincount accumulates rates in
    # the same order as the reference loops.
    p_flat, p_starts, p_entry = _flatten([links for __, __, links, __ in demands])
    p_demand_entry = demand_arr[p_entry]

    # Alternate routes, flattened route-major: route order is (pair, stage)
    # lexicographic, again matching the reference accumulation order.  The
    # stage index arrays drive the short reach-chaining loop.
    routes: list[tuple[int, ...]] = []
    route_pair: list[int] = []
    route_stage: list[int] = []
    for pair_index, (__, __, __, alternates) in enumerate(demands):
        for stage, alt in enumerate(alternates):
            routes.append(alt)
            route_pair.append(pair_index)
            route_stage.append(stage)
    a_flat, a_starts, a_entry = _flatten(routes)
    route_pair_arr = np.array(route_pair, dtype=np.int64)
    num_stages = max(route_stage) + 1 if route_stage else 0
    stage_routes = [
        np.flatnonzero(np.array(route_stage, dtype=np.int64) == s)
        for s in range(num_stages)
    ]

    # Link side: group links by capacity; zero-capacity links are pinned.
    zero_cap = np.flatnonzero(capacities == 0)
    cap_groups = []
    for capacity in np.unique(capacities):
        if capacity == 0:
            continue
        indices = np.flatnonzero(capacities == capacity)
        group_levels = levels[indices]
        # log((s+1)!) offsets and the per-state overflow-admission mask
        # (state s admits overflow iff s < C - r) are iteration-invariant.
        capacity = int(capacity)
        states = np.arange(capacity, dtype=float)
        log_service = np.log(states + 1.0)
        admit = states[np.newaxis, :] < (capacity - group_levels)[:, np.newaxis]
        cap_groups.append((capacity, indices, group_levels, log_service, admit))

    full = np.zeros(num_links)       # E_l
    protected = np.zeros(num_links)  # F_l
    overflow = np.zeros(num_links)
    iterations = 0
    converged = False
    row_index = {
        capacity: np.arange(indices.size)
        for capacity, indices, __, __, __ in cap_groups
    }
    with np.errstate(divide="ignore", invalid="ignore"):
        while iterations < max_iterations:
            iterations += 1
            # --- demand side: thinned primary rates and overflow attempts.
            p_pass_factors = 1.0 - full[p_flat]
            pass_primary = np.multiply.reduceat(p_pass_factors, p_starts) \
                if p_flat.size else np.empty(0)
            ratio = np.where(
                p_pass_factors > 0.0,
                pass_primary[p_entry] / p_pass_factors,
                0.0,
            )
            nu = np.bincount(
                p_flat, weights=p_demand_entry * ratio, minlength=num_links
            )
            reach_pair = demand_arr * (1.0 - pass_primary)
            if a_flat.size:
                a_pass_factors = 1.0 - protected[a_flat]
                accept_route = np.multiply.reduceat(a_pass_factors, a_starts)
                reach_route = np.empty(len(routes))
                for idx in stage_routes:
                    reach_route[idx] = reach_pair[route_pair_arr[idx]]
                    reach_pair[route_pair_arr[idx]] *= 1.0 - accept_route[idx]
                route_weight = reach_route * accept_route
                entry_weight = np.where(
                    a_pass_factors > 0.0,
                    route_weight[a_entry] / a_pass_factors,
                    0.0,
                )
                attempts = np.bincount(
                    a_flat, weights=entry_weight, minlength=num_links
                )
            else:
                attempts = np.zeros(num_links)
            # --- link side: all protected chains of one capacity at once.
            new_full = np.empty(num_links)
            new_protected = np.empty(num_links)
            new_full[zero_cap] = 1.0
            new_protected[zero_cap] = 1.0
            for capacity, indices, group_levels, log_service, admit in cap_groups:
                rates = nu[indices, np.newaxis] + np.where(
                    admit, attempts[indices, np.newaxis], 0.0
                )
                # Unnormalized log weights: log pi_{s+1} - log pi_s
                # = log rate_s - log(s+1); cumsum replaces the sequential
                # renormalizing product of BirthDeathChain.
                log_w = np.empty((indices.size, capacity + 1))
                log_w[:, 0] = 0.0
                np.cumsum(np.log(rates) - log_service, axis=1, out=log_w[:, 1:])
                log_w -= log_w.max(axis=1, keepdims=True)
                w = np.exp(log_w)
                total = w.sum(axis=1)
                tail = np.cumsum(w[:, ::-1], axis=1)[:, ::-1]
                new_full[indices] = w[:, capacity] / total
                new_protected[indices] = (
                    tail[row_index[capacity], capacity - group_levels] / total
                )
            step = max(
                np.abs(new_full - full).max(),
                np.abs(new_protected - protected).max(),
            )
            full = full + damping * (new_full - full)
            protected = protected + damping * (new_protected - protected)
            overflow = attempts
            if step < tolerance:
                converged = True
                break

        # --- final per-pair estimate from the converged probabilities.
        pass_primary = np.multiply.reduceat(1.0 - full[p_flat], p_starts) \
            if p_flat.size else np.empty(0)
        lost = 1.0 - pass_primary
        if a_flat.size:
            accept_route = np.multiply.reduceat(1.0 - protected[a_flat], a_starts)
            for idx in stage_routes:
                lost[route_pair_arr[idx]] *= 1.0 - accept_route[idx]
    pair_blocking: dict[tuple[int, int], float] = {}
    weighted = 0.0
    total_demand = 0.0
    for index, (od, demand, __, __) in enumerate(demands):
        pair_blocking[od] = float(lost[index])
        weighted += demand * lost[index]
        total_demand += demand
    return AlternateFixedPointResult(
        full_probability=full,
        protected_probability=protected,
        overflow_rates=overflow,
        pair_blocking=pair_blocking,
        network_blocking=weighted / total_demand if total_demand else 0.0,
        iterations=iterations,
        converged=converged,
    )


def _alternate_fixed_point_reference(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    levels: np.ndarray,
    damping: float,
    tolerance: float,
    max_iterations: int,
) -> AlternateFixedPointResult:
    """The original per-pair/per-link loops, kept as the equivalence oracle."""
    capacities = network.capacities()
    demands = _resolve_routes(network, table, traffic)

    num_links = network.num_links
    full = np.zeros(num_links)       # E_l
    protected = np.zeros(num_links)  # F_l
    overflow = np.zeros(num_links)
    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        # --- demand side: thinned primary rates and overflow attempt rates.
        nu = np.zeros(num_links)
        attempts = np.zeros(num_links)
        for __, demand, primary_links, alternates in demands:
            pass_primary = 1.0
            for link in primary_links:
                pass_primary *= 1.0 - full[link]
            for link in primary_links:
                own = 1.0 - full[link]
                nu[link] += demand * (pass_primary / own if own > 0 else 0.0)
            reach = demand * (1.0 - pass_primary)  # traffic entering tier 2
            for alt in alternates:
                accept = 1.0
                for link in alt:
                    accept *= 1.0 - protected[link]
                for link in alt:
                    own = 1.0 - protected[link]
                    attempts[link] += reach * (accept / own if own > 0 else 0.0)
                reach *= 1.0 - accept  # next alternate sees the failures
        # --- link side: solve each protected chain.
        new_full = np.empty(num_links)
        new_protected = np.empty(num_links)
        for link in range(num_links):
            capacity = int(capacities[link])
            if capacity == 0:
                new_full[link] = 1.0
                new_protected[link] = 1.0
                continue
            chain = link_chain(
                float(nu[link]),
                capacity,
                int(levels[link]),
                [float(attempts[link])] * capacity,
            )
            pi = chain.stationary_distribution()
            new_full[link] = float(pi[capacity])
            new_protected[link] = float(pi[capacity - int(levels[link]) :].sum())
        step = max(
            np.abs(new_full - full).max(), np.abs(new_protected - protected).max()
        )
        full = full + damping * (new_full - full)
        protected = protected + damping * (new_protected - protected)
        overflow = attempts
        if step < tolerance:
            converged = True
            break

    pair_blocking: dict[tuple[int, int], float] = {}
    weighted = 0.0
    total_demand = 0.0
    for od, demand, primary_links, alternates in demands:
        pass_primary = 1.0
        for link in primary_links:
            pass_primary *= 1.0 - full[link]
        lost = 1.0 - pass_primary
        for alt in alternates:
            accept = 1.0
            for link in alt:
                accept *= 1.0 - protected[link]
            lost *= 1.0 - accept
        pair_blocking[od] = lost
        weighted += demand * lost
        total_demand += demand
    return AlternateFixedPointResult(
        full_probability=full,
        protected_probability=protected,
        overflow_rates=overflow,
        pair_blocking=pair_blocking,
        network_blocking=weighted / total_demand if total_demand else 0.0,
        iterations=iterations,
        converged=converged,
    )
