"""Analytic companions: Erlang cut bound, fixed-point approximation, fairness."""

from .alternate_fixed_point import (
    AlternateFixedPointResult,
    alternate_routing_fixed_point,
)
from .bistability import (
    SymmetricFixedPoint,
    bistable_loads,
    find_fixed_points,
    mean_field_map,
    network_blocking,
)
from .erlang_bound import cut_bound_term, erlang_bound, single_node_cut_bound
from .fairness import FairnessReport, fairness_report
from .fixed_point import FixedPointResult, erlang_fixed_point

__all__ = [
    "AlternateFixedPointResult",
    "alternate_routing_fixed_point",
    "SymmetricFixedPoint",
    "bistable_loads",
    "find_fixed_points",
    "mean_field_map",
    "network_blocking",
    "cut_bound_term",
    "erlang_bound",
    "single_node_cut_bound",
    "FairnessReport",
    "fairness_report",
    "FixedPointResult",
    "erlang_fixed_point",
]
