"""Per-O-D blocking fairness metrics (Section 4.2.2, "Blocking on an O-D pair basis").

The paper observes that alternate routing, by sharing resources more freely,
equalizes blocking across O-D pairs: single-path routing shows the most
skewed per-pair blocking, uncontrolled alternate routing the least, with the
controlled scheme in between.  This module quantifies that skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = ["FairnessReport", "fairness_report"]


@dataclass(frozen=True)
class FairnessReport:
    """Dispersion statistics of a per-O-D blocking profile.

    * ``mean`` / ``std`` — plain moments over pairs;
    * ``coefficient_of_variation`` — std normalized by the mean (the
      scale-free skew measure; zero when every pair blocks equally);
    * ``max`` / ``min`` — extremes across pairs;
    * ``gini`` — Gini coefficient of the blocking profile in [0, 1];
    * ``pairs`` — number of pairs measured.
    """

    mean: float
    std: float
    coefficient_of_variation: float
    max: float
    min: float
    gini: float
    pairs: int

    def more_skewed_than(self, other: "FairnessReport") -> bool:
        """Compare skew by coefficient of variation (the primary measure)."""
        return self.coefficient_of_variation > other.coefficient_of_variation


def _gini(values: np.ndarray) -> float:
    """Gini coefficient; zero for a uniform profile, defined as 0 at zero mean."""
    if values.size == 0:
        return 0.0
    mean = values.mean()
    if mean == 0.0:
        return 0.0
    diff_sum = np.abs(values[:, None] - values[None, :]).sum()
    return float(diff_sum / (2.0 * values.size**2 * mean))


def fairness_report(pair_blocking: Mapping[tuple[int, int], float]) -> FairnessReport:
    """Summarize the skew of a per-O-D blocking profile."""
    values = np.array(list(pair_blocking.values()), dtype=float)
    if values.size == 0:
        raise ValueError("no O-D pairs to report on")
    if (values < 0).any() or (values > 1).any():
        raise ValueError("blocking probabilities must lie in [0, 1]")
    mean = float(values.mean())
    std = float(values.std())
    cov = std / mean if mean > 0 else 0.0
    return FairnessReport(
        mean=mean,
        std=std,
        coefficient_of_variation=cov,
        max=float(values.max()),
        min=float(values.min()),
        gini=_gini(values),
        pairs=int(values.size),
    )
