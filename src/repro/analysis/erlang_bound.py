"""The cut-set Erlang lower bound on network blocking (Section 4).

For every node cut ``(S, complement)`` the traffic crossing the cut in each
direction cannot do better than a single pooled Erlang link of the cut's
total capacity — even if calls could be re-packed.  The paper evaluates, for
each cut ``S``::

    T(S->S') / T_total * B(T(S->S'), C(S->S'))
  + T(S'->S) / T_total * B(T(S'->S), C(S'->S))

and takes the maximum over cuts as a lower bound on the average network
blocking (after Gibbens & Kelly's direction-less argument).  On the paper's
small meshes exhaustive enumeration of the ``2^N - 2`` cuts is cheap; a
restriction to single-node cuts is provided for larger networks.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator

import numpy as np

from ..core.erlang import erlang_b
from ..topology.graph import Network
from ..traffic.matrix import TrafficMatrix

__all__ = ["cut_bound_term", "erlang_bound", "single_node_cut_bound"]


def _cut_quantities(
    network: Network, traffic: TrafficMatrix, cut: frozenset[int]
) -> tuple[float, int, float, int]:
    """Traffic and capacity crossing the cut, in both directions.

    Returns ``(traffic_out, capacity_out, traffic_in, capacity_in)`` where
    "out" means from ``cut`` to its complement.
    """
    matrix = traffic.as_array()
    inside = sorted(cut)
    outside = [n for n in network.nodes() if n not in cut]
    traffic_out = float(matrix[np.ix_(inside, outside)].sum())
    traffic_in = float(matrix[np.ix_(outside, inside)].sum())
    capacity_out = 0
    capacity_in = 0
    for link in network.links:
        if network.is_failed(link.index):
            continue
        if link.src in cut and link.dst not in cut:
            capacity_out += link.capacity
        elif link.src not in cut and link.dst in cut:
            capacity_in += link.capacity
    return traffic_out, capacity_out, traffic_in, capacity_in


def cut_bound_term(
    network: Network, traffic: TrafficMatrix, cut: Iterable[int]
) -> float:
    """The paper's bound expression evaluated for one cut set ``S``."""
    cut_set = frozenset(cut)
    if not cut_set or cut_set >= set(network.nodes()):
        raise ValueError("cut must be a proper non-empty subset of the nodes")
    total = traffic.total
    if total == 0.0:
        return 0.0
    t_out, c_out, t_in, c_in = _cut_quantities(network, traffic, cut_set)
    term = 0.0
    if t_out > 0.0:
        term += (t_out / total) * erlang_b(t_out, c_out)
    if t_in > 0.0:
        term += (t_in / total) * erlang_b(t_in, c_in)
    return term


def _proper_subsets(num_nodes: int) -> Iterator[frozenset[int]]:
    """All proper non-empty node subsets, one representative per complement pair.

    The bound expression is symmetric under complementation (it sums both
    directions), so enumerating half the subsets suffices.
    """
    nodes = list(range(num_nodes))
    for size in range(1, num_nodes // 2 + 1):
        for combo in combinations(nodes, size):
            if 2 * size == num_nodes and 0 not in combo:
                continue  # complement already seen
            yield frozenset(combo)


def erlang_bound(network: Network, traffic: TrafficMatrix) -> float:
    """Maximum of the cut bound over all cuts — the paper's Erlang Bound.

    A loose lower bound on the average network blocking of *any* routing
    scheme (it even allows re-packing).  Exhaustive over the ``2^(N-1) - 1``
    complement-distinct cuts; fine for the paper's 4- and 12-node networks.
    """
    if network.num_nodes > 22:
        raise ValueError(
            "exhaustive cut enumeration is impractical beyond ~22 nodes; "
            "use single_node_cut_bound"
        )
    best = 0.0
    for cut in _proper_subsets(network.num_nodes):
        best = max(best, cut_bound_term(network, traffic, cut))
    return best


def single_node_cut_bound(network: Network, traffic: TrafficMatrix) -> float:
    """The bound restricted to single-node cuts (cheap, weaker)."""
    best = 0.0
    for node in network.nodes():
        best = max(best, cut_bound_term(network, traffic, {node}))
    return best
