"""The cut-set Erlang lower bound on network blocking (Section 4).

For every node cut ``(S, complement)`` the traffic crossing the cut in each
direction cannot do better than a single pooled Erlang link of the cut's
total capacity — even if calls could be re-packed.  The paper evaluates, for
each cut ``S``::

    T(S->S') / T_total * B(T(S->S'), C(S->S'))
  + T(S'->S) / T_total * B(T(S'->S), C(S'->S))

and takes the maximum over cuts as a lower bound on the average network
blocking (after Gibbens & Kelly's direction-less argument).  On the paper's
small meshes exhaustive enumeration of the ``2^N - 2`` cuts is cheap; a
restriction to single-node cuts is provided for larger networks.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator

import numpy as np

from ..core.erlang import erlang_b, shared_erlang_table
from ..topology.graph import Network
from ..traffic.matrix import TrafficMatrix

__all__ = ["cut_bound_term", "erlang_bound", "single_node_cut_bound"]

#: Cuts evaluated per vectorized block; bounds the ``(block, nodes)``
#: membership matrix for the 2^21-cut worst case at ~22 nodes.
_CUT_BLOCK = 8192


def _cut_quantities(
    network: Network, traffic: TrafficMatrix, cut: frozenset[int]
) -> tuple[float, int, float, int]:
    """Traffic and capacity crossing the cut, in both directions.

    Returns ``(traffic_out, capacity_out, traffic_in, capacity_in)`` where
    "out" means from ``cut`` to its complement.
    """
    matrix = traffic.as_array()
    inside = sorted(cut)
    outside = [n for n in network.nodes() if n not in cut]
    traffic_out = float(matrix[np.ix_(inside, outside)].sum())
    traffic_in = float(matrix[np.ix_(outside, inside)].sum())
    capacity_out = 0
    capacity_in = 0
    for link in network.links:
        if network.is_failed(link.index):
            continue
        if link.src in cut and link.dst not in cut:
            capacity_out += link.capacity
        elif link.src not in cut and link.dst in cut:
            capacity_in += link.capacity
    return traffic_out, capacity_out, traffic_in, capacity_in


def cut_bound_term(
    network: Network, traffic: TrafficMatrix, cut: Iterable[int]
) -> float:
    """The paper's bound expression evaluated for one cut set ``S``."""
    cut_set = frozenset(cut)
    if not cut_set or cut_set >= set(network.nodes()):
        raise ValueError("cut must be a proper non-empty subset of the nodes")
    total = traffic.total
    if total == 0.0:
        return 0.0
    t_out, c_out, t_in, c_in = _cut_quantities(network, traffic, cut_set)
    term = 0.0
    if t_out > 0.0:
        term += (t_out / total) * erlang_b(t_out, c_out)
    if t_in > 0.0:
        term += (t_in / total) * erlang_b(t_in, c_in)
    return term


def _proper_subsets(num_nodes: int) -> Iterator[frozenset[int]]:
    """All proper non-empty node subsets, one representative per complement pair.

    The bound expression is symmetric under complementation (it sums both
    directions), so enumerating half the subsets suffices.
    """
    nodes = list(range(num_nodes))
    for size in range(1, num_nodes // 2 + 1):
        for combo in combinations(nodes, size):
            if 2 * size == num_nodes and 0 not in combo:
                continue  # complement already seen
            yield frozenset(combo)


def erlang_bound(
    network: Network, traffic: TrafficMatrix, reference: bool = False
) -> float:
    """Maximum of the cut bound over all cuts — the paper's Erlang Bound.

    A loose lower bound on the average network blocking of *any* routing
    scheme (it even allows re-packing).  Exhaustive over the ``2^(N-1) - 1``
    complement-distinct cuts; fine for the paper's 4- and 12-node networks.

    The default evaluates cuts in vectorized blocks: each block's node
    membership matrix turns the directional cut traffics into two matrix
    products, crossing capacities into masked sums over the link arrays, and
    the Erlang evaluations batch by capacity through the shared memoized
    table.  ``reference=True`` enumerates cuts one
    :func:`cut_bound_term` at a time — the equivalence oracle for tests and
    the perf-benchmark baseline.  The two orderings of the Erlang sum agree
    to ~1e-12 relative.
    """
    if network.num_nodes > 22:
        raise ValueError(
            "exhaustive cut enumeration is impractical beyond ~22 nodes; "
            "use single_node_cut_bound"
        )
    if reference:
        best = 0.0
        for cut in _proper_subsets(network.num_nodes):
            best = max(best, cut_bound_term(network, traffic, cut))
        return best
    total = traffic.total
    if total == 0.0:
        return 0.0
    num_nodes = network.num_nodes
    matrix = traffic.as_array().astype(float)
    live = [link for link in network.links if not network.is_failed(link.index)]
    src = np.array([link.src for link in live], dtype=np.int64)
    dst = np.array([link.dst for link in live], dtype=np.int64)
    caps = np.array([link.capacity for link in live], dtype=float)
    # One representative per complement pair: every subset containing node 0
    # except the full node set.  The bound term is complement-symmetric, so
    # the maximum over these equals the maximum over all proper cuts.
    all_masks = np.arange((1 << (num_nodes - 1)) - 1, dtype=np.int64) * 2 + 1
    node_bits = np.arange(num_nodes, dtype=np.int64)
    best = 0.0
    for start in range(0, all_masks.size, _CUT_BLOCK):
        masks = all_masks[start : start + _CUT_BLOCK]
        inside = ((masks[:, np.newaxis] >> node_bits) & 1).astype(float)
        outside = 1.0 - inside
        row_sums = inside @ matrix  # (cuts, nodes): traffic from S to each node
        t_out = (row_sums * outside).sum(axis=1)
        col_sums = inside @ matrix.T
        t_in = (col_sums * outside).sum(axis=1)
        c_out = (inside[:, src] * outside[:, dst]) @ caps
        c_in = (outside[:, src] * inside[:, dst]) @ caps
        loads = np.concatenate([t_out, t_in])
        cut_caps = np.concatenate([c_out, c_in]).astype(np.int64)
        blocking = np.empty(loads.size)
        for capacity in np.unique(cut_caps):
            group = cut_caps == capacity
            blocking[group] = shared_erlang_table.blocking_batch(
                loads[group], int(capacity)
            )
        terms = np.where(loads > 0.0, (loads / total) * blocking, 0.0)
        block_best = (terms[: masks.size] + terms[masks.size :]).max()
        best = max(best, float(block_best))
    return best


def single_node_cut_bound(network: Network, traffic: TrafficMatrix) -> float:
    """The bound restricted to single-node cuts (cheap, weaker)."""
    best = 0.0
    for node in network.nodes():
        best = max(best, cut_bound_term(network, traffic, {node}))
    return best
