"""Erlang fixed-point (reduced-load) approximation for single-path routing.

The classical analytic companion to the simulator: under the independent-link
assumption, each link ``k`` sees a thinned Poisson load

    rho_k = sum over O-D pairs routed over k of
            T(i, j) * prod over other links l on the path of (1 - B_l)

and ``B_k = ErlangB(rho_k, C_k)``.  Iterating to a fixed point gives per-link
and per-O-D blocking estimates for the single-path policy — the scheme
Kelly's analyses build on, and a useful cross-check on the simulator (the
tests compare the two at moderate loads).

Also exposes the *unreduced* per-O-D estimate (no thinning) used when the
paper says it feeds "the unreduced primary load intensities" to the
Ott-Krishnan comparator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.erlang import erlang_b
from ..topology.graph import Network
from ..topology.paths import PathTable
from ..traffic.matrix import TrafficMatrix

__all__ = ["FixedPointResult", "erlang_fixed_point"]


@dataclass(frozen=True)
class FixedPointResult:
    """Converged reduced-load approximation.

    ``link_blocking`` is indexed by link index; ``pair_blocking`` keyed by
    O-D pair; ``network_blocking`` is the demand-weighted average;
    ``iterations`` the number of damped sweeps used.
    """

    link_blocking: np.ndarray
    pair_blocking: dict[tuple[int, int], float]
    network_blocking: float
    iterations: int
    converged: bool


def erlang_fixed_point(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    tolerance: float = 1e-10,
    max_iterations: int = 10_000,
    damping: float = 0.5,
) -> FixedPointResult:
    """Iterate the reduced-load equations to a fixed point.

    Damped successive substitution: ``B <- (1-d) * B + d * ErlangB(rho(B))``.
    The map is continuous on ``[0, 1]^L`` so a fixed point exists (Brouwer);
    damping keeps the iteration from oscillating at high loads.
    """
    if not 0 < damping <= 1:
        raise ValueError("damping must lie in (0, 1]")
    demands = list(traffic.positive_pairs())
    paths = []
    for od, demand in demands:
        primary = table.primary.get(od)
        if primary is None:
            raise ValueError(f"O-D pair {od} has demand but no primary path")
        paths.append(network.path_links(primary))
    capacities = network.capacities()
    blocking = np.zeros(network.num_links, dtype=float)
    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        loads = np.zeros(network.num_links, dtype=float)
        for (od, demand), links in zip(demands, paths):
            passing = 1.0
            for link in links:
                passing *= 1.0 - blocking[link]
            for link in links:
                own = 1.0 - blocking[link]
                thinned = demand * (passing / own if own > 0 else 0.0)
                loads[link] += thinned
        updated = np.array(
            [
                erlang_b(loads[i], int(capacities[i])) if capacities[i] > 0 else 1.0
                for i in range(network.num_links)
            ]
        )
        step = damping * (updated - blocking)
        blocking = blocking + step
        if np.abs(step).max() < tolerance:
            converged = True
            break
    pair_blocking: dict[tuple[int, int], float] = {}
    weighted = 0.0
    total_demand = 0.0
    for (od, demand), links in zip(demands, paths):
        passing = 1.0
        for link in links:
            passing *= 1.0 - blocking[link]
        loss = 1.0 - passing
        pair_blocking[od] = loss
        weighted += demand * loss
        total_demand += demand
    network_blocking = weighted / total_demand if total_demand else 0.0
    return FixedPointResult(
        link_blocking=blocking,
        pair_blocking=pair_blocking,
        network_blocking=network_blocking,
        iterations=iterations,
        converged=converged,
    )
