"""Erlang fixed-point (reduced-load) approximation for single-path routing.

The classical analytic companion to the simulator: under the independent-link
assumption, each link ``k`` sees a thinned Poisson load

    rho_k = sum over O-D pairs routed over k of
            T(i, j) * prod over other links l on the path of (1 - B_l)

and ``B_k = ErlangB(rho_k, C_k)``.  Iterating to a fixed point gives per-link
and per-O-D blocking estimates for the single-path policy — the scheme
Kelly's analyses build on, and a useful cross-check on the simulator (the
tests compare the two at moderate loads).

Also exposes the *unreduced* per-O-D estimate (no thinning) used when the
paper says it feeds "the unreduced primary load intensities" to the
Ott-Krishnan comparator.

Two implementations exist.  The default sweeps the whole network per
iteration with NumPy: paths are flattened into link-index arrays once (and
memoized across calls, so load sweeps pay the path resolution once), path
products come from ``np.multiply.reduceat``, thinned loads accumulate through
``np.bincount``, and the Erlang update groups links by capacity and evaluates
each group with :func:`repro.core.erlang.erlang_b_batch` through the shared
memoized table (:data:`repro.core.erlang.shared_erlang_table`).  The batch
kernel accumulates the Erlang sum in a different (vectorized) order than the
scalar recursion, so the two implementations agree to ~1e-12 relative rather
than bit for bit; pass ``reference=True`` to run the original loops (the
perf benchmarks time one against the other, and the equivalence tests pin
the tolerance).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..core.erlang import erlang_b, shared_erlang_table
from ..topology.graph import Network
from ..topology.paths import PathTable
from ..traffic.matrix import TrafficMatrix

__all__ = ["FixedPointResult", "erlang_fixed_point"]


@dataclass(frozen=True)
class FixedPointResult:
    """Converged reduced-load approximation.

    ``link_blocking`` is indexed by link index; ``pair_blocking`` keyed by
    O-D pair; ``network_blocking`` is the demand-weighted average;
    ``iterations`` the number of damped sweeps used.
    """

    link_blocking: np.ndarray
    pair_blocking: dict[tuple[int, int], float]
    network_blocking: float
    iterations: int
    converged: bool


def _primary_paths(
    network: Network, table: PathTable, traffic: TrafficMatrix
) -> tuple[list[tuple[tuple[int, int], float]], list[tuple[int, ...]]]:
    """Resolve each positive-demand pair's primary path to link indices."""
    demands = list(traffic.positive_pairs())
    paths = []
    for od, __ in demands:
        primary = table.primary.get(od)
        if primary is None:
            raise ValueError(f"O-D pair {od} has demand but no primary path")
        paths.append(network.path_links(primary))
    return demands, paths


# (network, table) -> (weakrefs, od order, flattened link-index arrays).  Load
# sweeps call the fixed point with fresh (scaled) traffic but the same network
# and path table; resolving every primary path to link indices costs more than
# a converged sweep once the numerics are vectorized, so the flattening is
# memoized.  Keys are object ids guarded by weakrefs (a dead referent, or an
# od order that no longer matches the traffic, invalidates the entry).
_FLATTEN_CACHE: dict[tuple[int, int], tuple] = {}
_FLATTEN_CACHE_MAX = 64


def _flatten_paths(
    network: Network, table: PathTable, demands: list
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten primary paths to (flat_links, starts, entry_pair) arrays.

    The flattening lists link entries in (pair, hop) order, so every
    reduceat/bincount over them touches memory in exactly the order the
    reference loops do — float accumulation order is preserved.
    """
    ods = [od for od, __ in demands]
    key = (id(network), id(table))
    cached = _FLATTEN_CACHE.get(key)
    if cached is not None:
        net_ref, table_ref, cached_ods, arrays = cached
        if net_ref() is network and table_ref() is table and cached_ods == ods:
            return arrays
    paths = []
    for od in ods:
        primary = table.primary.get(od)
        if primary is None:
            raise ValueError(f"O-D pair {od} has demand but no primary path")
        paths.append(network.path_links(primary))
    lengths = np.array([len(p) for p in paths], dtype=np.int64)
    flat_links = np.array(
        [link for path in paths for link in path], dtype=np.int64
    )
    starts = np.zeros(len(paths), dtype=np.int64)
    if paths:
        starts[1:] = np.cumsum(lengths)[:-1]
    entry_pair = np.repeat(np.arange(len(paths), dtype=np.int64), lengths)
    arrays = (flat_links, starts, entry_pair)
    if len(_FLATTEN_CACHE) >= _FLATTEN_CACHE_MAX:
        _FLATTEN_CACHE.clear()
    try:
        _FLATTEN_CACHE[key] = (
            weakref.ref(network),
            weakref.ref(table),
            ods,
            arrays,
        )
    except TypeError:
        pass  # non-weakrefable objects simply skip the cache
    return arrays


def erlang_fixed_point(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    tolerance: float = 1e-10,
    max_iterations: int = 10_000,
    damping: float = 0.5,
    reference: bool = False,
) -> FixedPointResult:
    """Iterate the reduced-load equations to a fixed point.

    Damped successive substitution: ``B <- (1-d) * B + d * ErlangB(rho(B))``.
    The map is continuous on ``[0, 1]^L`` so a fixed point exists (Brouwer);
    damping keeps the iteration from oscillating at high loads.

    ``reference=True`` runs the original unvectorized per-link loops — the
    equivalence oracle for the tests and the baseline the perf benchmarks
    time against.
    """
    if not 0 < damping <= 1:
        raise ValueError("damping must lie in (0, 1]")
    if reference:
        return _erlang_fixed_point_reference(
            network, table, traffic, tolerance, max_iterations, damping
        )
    demands = list(traffic.positive_pairs())
    num_links = network.num_links
    capacities = network.capacities()
    flat_links, starts, entry_pair = _flatten_paths(network, table, demands)
    demand_arr = np.array([demand for __, demand in demands], dtype=float)
    demand_entry = demand_arr[entry_pair]
    cap_groups = [
        (int(capacity), np.flatnonzero(capacities == capacity))
        for capacity in np.unique(capacities)
    ]
    single_group = len(cap_groups) == 1 and cap_groups[0][1].size == num_links

    blocking = np.zeros(num_links, dtype=float)
    iterations = 0
    converged = False
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        while iterations < max_iterations:
            iterations += 1
            if flat_links.size:
                passing_factors = 1.0 - blocking[flat_links]
                path_passing = np.multiply.reduceat(passing_factors, starts)
                ratio = np.where(
                    passing_factors > 0.0,
                    path_passing[entry_pair] / passing_factors,
                    0.0,
                )
                thinned = demand_entry * ratio
                loads = np.bincount(
                    flat_links, weights=thinned, minlength=num_links
                )
            else:
                loads = np.zeros(num_links, dtype=float)
            if single_group:
                updated = shared_erlang_table.blocking_batch(
                    loads, cap_groups[0][0]
                )
            else:
                updated = np.empty(num_links, dtype=float)
                for capacity, indices in cap_groups:
                    updated[indices] = shared_erlang_table.blocking_batch(
                        loads[indices], capacity
                    )
            step = damping * (updated - blocking)
            blocking = blocking + step
            if np.abs(step).max() < tolerance:
                converged = True
                break
    if flat_links.size:
        path_passing = np.multiply.reduceat(1.0 - blocking[flat_links], starts)
    else:
        path_passing = np.empty(0)
    pair_blocking: dict[tuple[int, int], float] = {}
    weighted = 0.0
    total_demand = 0.0
    for index, (od, demand) in enumerate(demands):
        loss = 1.0 - path_passing[index]
        pair_blocking[od] = loss
        weighted += demand * loss
        total_demand += demand
    network_blocking = weighted / total_demand if total_demand else 0.0
    return FixedPointResult(
        link_blocking=blocking,
        pair_blocking=pair_blocking,
        network_blocking=network_blocking,
        iterations=iterations,
        converged=converged,
    )


def _erlang_fixed_point_reference(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    tolerance: float,
    max_iterations: int,
    damping: float,
) -> FixedPointResult:
    """The original per-link Python loops, kept as the equivalence oracle."""
    demands, paths = _primary_paths(network, table, traffic)
    capacities = network.capacities()
    blocking = np.zeros(network.num_links, dtype=float)
    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        loads = np.zeros(network.num_links, dtype=float)
        for (od, demand), links in zip(demands, paths):
            passing = 1.0
            for link in links:
                passing *= 1.0 - blocking[link]
            for link in links:
                own = 1.0 - blocking[link]
                thinned = demand * (passing / own if own > 0 else 0.0)
                loads[link] += thinned
        updated = np.array(
            [
                erlang_b(loads[i], int(capacities[i])) if capacities[i] > 0 else 1.0
                for i in range(network.num_links)
            ]
        )
        step = damping * (updated - blocking)
        blocking = blocking + step
        if np.abs(step).max() < tolerance:
            converged = True
            break
    pair_blocking: dict[tuple[int, int], float] = {}
    weighted = 0.0
    total_demand = 0.0
    for (od, demand), links in zip(demands, paths):
        passing = 1.0
        for link in links:
            passing *= 1.0 - blocking[link]
        loss = 1.0 - passing
        pair_blocking[od] = loss
        weighted += demand * loss
        total_demand += demand
    network_blocking = weighted / total_demand if total_demand else 0.0
    return FixedPointResult(
        link_blocking=blocking,
        pair_blocking=pair_blocking,
        network_blocking=network_blocking,
        iterations=iterations,
        converged=converged,
    )
