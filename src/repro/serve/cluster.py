"""The sharded admission cluster: router, journal, and wire front end.

:class:`ClusterRouter` partitions a network's links across N worker
processes (:mod:`repro.serve.shard`, spawned and watched through
:mod:`repro.serve.supervisor`) and answers the same
:class:`~repro.serve.engine.AdmitRequest` / ``ReleaseRequest`` objects as
the in-process :class:`~repro.serve.engine.RequestEngine` — but each
admission is now a distributed set-up, the paper's signaling plane made
operational:

* a candidate path whose links all live on one shard is admitted in a
  **single hop** (``rescommit``): one command, no reservation state;
* a path spanning shards runs **two-phase reserve/commit**: phase 1
  reserves the circuits on every touched shard in parallel under a
  hold-timer; if every shard says yes the router journals the call and
  commits, otherwise it aborts the partial reservations and **cranks
  back** to the next alternate — exactly the protocol
  :mod:`repro.sim.signaling` simulates, driven by the same
  :mod:`repro.sim.sigpolicy` policy objects (retry timeout/backoff,
  crankback budget, hold-timer horizon).

Two router modes trade determinism against throughput:

* ``ordered`` — one request is decided end-to-end at a time.  With faults
  off this is *bit-identical* to the single-process engine on the same
  trace (the replay-equivalence oracle in ``tests/test_cluster.py``), and
  it is the mode the chaos smoke uses so fault-free prefixes stay
  comparable;
* ``pipelined`` — every request is its own task; per-shard command
  buffers are flushed once per event-loop pass so hundreds of commands
  share one pickle frame.  Concurrent set-ups may race for the same
  circuits; the loser's reserve is refused and it cranks back — the
  signaling simulator's *race abort*, here a live phenomenon rather than
  a modelled one.

Fault tolerance is journal-centric: the router's
:class:`ReservationJournal` (held call -> path/width) is the single
authoritative record once a client has been answered.  Workers are
disposable — when the monitor's heartbeats or a broken pipe declare a
shard dead, the supervisor restarts it and the router resyncs its
occupancy *from the journal*; uncommitted phase-1 reservations die with
the worker (their callers crank back or retry), and reservations orphaned
by lost aborts are reaped by the worker's own hold-timer.  While a shard
is down the router degrades instead of failing: candidate paths touching
it are skipped, and only a call with *no* reachable route is refused,
with the dedicated ``"shard-down"`` reason.

The wire front end (:class:`ClusterServer` / :class:`ClusterClient`)
speaks length-prefixed pickle frames — batched decisions, metrics,
drain, and the ``audit`` op that diffs every live shard's occupancy
against the journal (leak detection for the chaos harness).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import pickle
import socket
import struct
from dataclasses import dataclass, field

from ..routing.base import RoutingPolicy
from ..sim.sigpolicy import CrankbackPolicy, HoldTimerPolicy, RetryPolicy
from ..topology.graph import Network
from .chaos import ChaosConfig, MessageChaos
from .engine import AdmitRequest, Decision, ReleaseRequest, compile_routes
from .shard import PRIMARY_KIND
from .state import NetworkState, PolicySwap, partition_links
from .supervisor import ShardSupervisor
from .telemetry import MetricsRegistry

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterServer",
    "ClusterClient",
    "ReservationJournal",
    "ShardError",
    "ShardDown",
    "ShardTimeout",
]

#: Cap on commands per router->shard frame.  The router's side of every
#: pipe is non-blocking (excess bytes queue in ``_wbufs``), so the cap is
#: not about deadlock — it bounds how much work one frame hands a worker
#: before the worker surfaces for its hold-timer tick and reply write.
_MAX_FRAME_COMMANDS = 1024

#: :mod:`multiprocessing.connection`'s length prefix (4-byte big-endian,
#: signed).  The router writes and parses this format on the raw shard
#: pipe fds so the workers keep using plain blocking ``Connection``s.
_WIRE = struct.Struct("!i")

_MODES = ("ordered", "pipelined")

#: Cap on requests merged into one pipelined wave.  A wave admits first
#: and runs intra-wave releases after (see ``_decide_batch_rounds``), so
#: an unbounded merge of a deep client backlog would span minutes of
#: trace time, hold every admitted call's circuits until wave end, and
#: inflate blocking far past the engine's.  Whole batches are taken up
#: to this cap; the rest stay queued for the next wave.
_MAX_WAVE_REQUESTS = 2048


def _reservation_id(call_id: int | str, index: int) -> int | str:
    """Per-attempt reservation key.

    Integer call ids (the common case) get an arithmetic key — cheapest
    to build and to pickle per command; anything else falls back to a
    string.  Candidate indices are bounded far below 256 by the route
    tables and the crankback budget; the guard keeps exotic inputs safe.
    """
    if type(call_id) is int and call_id >= 0 and index < 256:
        return call_id * 256 + index
    return f"{call_id}#{index}"


def _release_id(call_id: int | str) -> int | str:
    """Teardown key for a call — negative, so it can't collide with the
    non-negative admission keys of :func:`_reservation_id`."""
    if type(call_id) is int and call_id >= 0:
        return -call_id - 1
    return f"{call_id}!release"


class ShardError(Exception):
    """Base class for shard RPC failures."""


class ShardDown(ShardError):
    """The target shard is marked down (dead worker or broken pipe)."""


class ShardTimeout(ShardError):
    """The retry policy's attempts were exhausted without a reply."""


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster's shape and its signaling-policy knobs.

    ``mode`` picks ordered (deterministic, engine-equivalent) or
    pipelined (concurrent, race-aborts-as-crankbacks) routing.  The three
    :mod:`repro.sim.sigpolicy` objects govern the distributed set-up
    exactly as they do the simulated one: ``retry`` bounds each shard
    RPC (timeout, retries, backoff), ``crankback`` optionally caps how
    many alternates one call may try (``None`` = the engine's unlimited
    semantics, required for replay equivalence), ``hold`` is the
    reservation hold-timer workers enforce on phase-1 bookings.
    ``heartbeat_interval``/``heartbeat_misses`` drive the monitor that
    declares live-but-wedged workers dead.  ``journal_path`` (optional)
    mirrors every journal event to JSONL for post-mortem audits.
    """

    num_shards: int = 2
    mode: str = "ordered"
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(timeout=0.25))
    crankback: CrankbackPolicy = field(default_factory=CrankbackPolicy)
    hold: HoldTimerPolicy = field(default_factory=lambda: HoldTimerPolicy(duration=1.0))
    heartbeat_interval: float = 0.2
    heartbeat_misses: int = 3
    tick: float = 0.02
    journal_path: str | None = None
    chaos: ChaosConfig | None = None

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        if self.tick <= 0:
            raise ValueError("tick must be positive")
        chaos = self.chaos
        if chaos is not None and (chaos.drop_probability or chaos.delay_probability):
            if not self.retry.enabled:
                raise ValueError(
                    "message drop/delay chaos requires an enabled RetryPolicy "
                    "(a dropped frame would otherwise hang forever)"
                )


class ReservationJournal:
    """The router's authoritative record of held calls.

    ``held`` maps call id -> ``(path, width, tier)``; it is written
    *before* commit commands go out, so a shard crashing mid-commit is
    recovered exactly by replaying the journal into a ``sync``
    (:meth:`occupancy_for`).  With ``path`` set, every admit/release is
    also appended to a JSONL file for offline audits.
    """

    def __init__(self, path: str | None = None):
        self.held: dict[int | str, tuple[tuple[int, ...], int, str]] = {}
        self.admits = 0
        self.releases = 0
        self._fh = open(path, "a", encoding="utf-8") if path else None

    def record_admit(
        self, call_id: int | str, path: tuple[int, ...], width: int, tier: str
    ) -> None:
        self.held[call_id] = (tuple(path), width, tier)
        self.admits += 1
        if self._fh is not None:
            self._fh.write(json.dumps(
                {"event": "admit", "id": call_id, "path": list(path),
                 "width": width, "tier": tier}
            ) + "\n")
            self._fh.flush()

    def record_release(
        self, call_id: int | str
    ) -> tuple[tuple[int, ...], int, str] | None:
        entry = self.held.pop(call_id, None)
        if entry is not None:
            self.releases += 1
            if self._fh is not None:
                self._fh.write(json.dumps({"event": "release", "id": call_id}) + "\n")
                self._fh.flush()
        return entry

    def occupancy_for(self, links) -> dict[int, int]:
        """Per-link circuit counts implied by the held registry."""
        counts = {int(link): 0 for link in links}
        for path, width, __ in self.held.values():
            for link in path:
                if link in counts:
                    counts[link] += width
        return counts

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class _Frame:
    """One in-flight router->shard frame awaiting its reply.

    ``entries`` maps contiguous result slices back to caller futures:
    each ``(future, count)`` receives the next ``count`` results as a
    list, so one frame can carry many callers' command groups.
    """

    __slots__ = ("commands", "entries", "attempt", "timer", "done")

    def __init__(self, commands, entries, attempt):
        self.commands = commands
        self.entries = entries
        self.attempt = attempt
        self.timer = None
        self.done = False


class ClusterRouter:
    """Admission decisions over a fleet of link-shard workers."""

    def __init__(
        self,
        network: Network,
        policy: RoutingPolicy,
        config: ClusterConfig | None = None,
        *,
        telemetry: MetricsRegistry | None = None,
    ):
        self.network = network
        self.policy = policy
        self.config = config if config is not None else ClusterConfig()
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.journal = ReservationJournal(self.config.journal_path)
        # Compile the same dispatch structures the engine uses; NetworkState
        # is borrowed purely for its shard_spec slicing.
        state = NetworkState(network, policy)
        self._routes = compile_routes(policy)
        self.partitions = partition_links(network.num_links, self.config.num_shards)
        self._link_shard = {
            link: sid
            for sid, links in enumerate(self.partitions)
            for link in links
        }
        chaos = self.config.chaos
        specs = {}
        for sid, links in enumerate(self.partitions):
            spec = state.shard_spec(sid, links)
            spec["hold_timer"] = self.config.hold.duration
            spec["tick"] = self.config.tick
            spec["chaos"] = chaos.worker_plan(sid) if chaos is not None else None
            specs[sid] = spec
        self.supervisor = ShardSupervisor(specs)
        self.chaos = MessageChaos(chaos) if chaos is not None and chaos.active else None
        # Transport state, all touched only from the event loop thread.
        self._conns: dict[int, object] = {}
        self._epochs: dict[int, int] = {sid: 0 for sid in specs}
        self._buffers: dict[int, list] = {sid: [] for sid in specs}
        # Raw non-blocking pipe IO: inbound parse buffer, outbound byte
        # backlog, and whether an add_writer callback is registered.
        self._rbufs: dict[int, bytearray] = {sid: bytearray() for sid in specs}
        self._wbufs: dict[int, bytearray] = {sid: bytearray() for sid in specs}
        self._writer_on: dict[int, bool] = {sid: False for sid in specs}
        self._inflight: dict[int, dict[int, _Frame]] = {sid: {} for sid in specs}
        self._seq = itertools.count(1)
        self._down: set[int] = set()
        self._misses: dict[int, int] = {sid: 0 for sid in specs}
        self._lock = asyncio.Lock()
        self._active: dict[int | str, asyncio.Task] = {}
        self._batches = 0
        self._path_groups: dict[tuple, tuple] = {}
        self._candidates = self._compile_candidates()
        # Pipelined batches queue here; one scheduler task merges every
        # batch waiting at wave-start into a single decision wave.
        self._wave_queue: list[tuple[list, asyncio.Future]] = []
        self._wave_task: asyncio.Task | None = None
        self._monitor_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = False
        self.decisions_total = 0
        #: Policy version across the fleet: bumped by every hot_swap and
        #: stamped into each shard (and its respawn spec), so restarted
        #: workers come back with the bounds in force, not the boot ones.
        self.policy_epoch = 0
        self.swaps: list[PolicySwap] = []
        self._length_disciplined = policy.discipline == "length-threshold"
        self._capacities = network.capacities().astype(int).tolist()
        registry = self.telemetry
        self._m_primary = registry.counter("serve_decisions_total", tier="primary")
        self._m_alternate = registry.counter("serve_decisions_total", tier="alternate")
        self._m_rejected = {
            reason: registry.counter("serve_rejected_total", reason=reason)
            for reason in ("blocked", "no-route", "shard-down")
        }
        self._m_released = registry.counter("serve_released_total")
        self._m_errors = registry.counter("serve_errors_total")
        self._m_fastpath = registry.counter("serve_cluster_fastpath_total")
        self._m_twophase = registry.counter("serve_cluster_twophase_total")
        self._m_crankbacks = registry.counter("serve_cluster_crankbacks_total")
        self._m_retries = registry.counter("serve_cluster_frame_retries_total")
        self._m_restarts = registry.counter("serve_cluster_restarts_total")
        self._m_held = registry.gauge("serve_held_calls")
        self._m_up = {
            sid: registry.gauge("serve_shard_up", shard=str(sid)) for sid in specs
        }
        self._m_swaps = registry.counter("serve_cluster_swaps_total")
        self._m_epoch = registry.gauge("serve_policy_epoch")

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Fork the workers, register their pipes, start the monitor."""
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        for sid, conn in self.supervisor.start().items():
            self._conns[sid] = conn
            self._register_reader(sid)
            self._m_up[sid].set(1)
        self._monitor_task = asyncio.ensure_future(self._monitor())
        self._started = True

    async def stop(self) -> None:
        """Tear everything down: monitor, readers, workers, journal file."""
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        if self._wave_task is not None:
            self._wave_task.cancel()
            try:
                await self._wave_task
            except asyncio.CancelledError:
                pass
            self._wave_task = None
        for task in list(self._active.values()):
            task.cancel()
        self._active.clear()
        for sid in list(self._conns):
            self._unregister_reader(sid)
            self._fail_inflight(sid, ShardDown(f"shard {sid}: router stopped"))
        self.supervisor.stop_all()
        self._conns.clear()
        self.journal.close()
        self._started = False

    async def drain(self) -> None:
        """Wait for every in-flight pipelined decision to settle."""
        while self._active or self._batches:
            if self._active:
                await asyncio.gather(
                    *list(self._active.values()), return_exceptions=True
                )
            else:
                await asyncio.sleep(0.01)

    async def __aenter__(self) -> "ClusterRouter":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------- transport

    def _register_reader(self, sid: int) -> None:
        """Adopt the shard pipe for raw non-blocking IO on the event loop.

        The router never issues a blocking read or write on a shard pipe:
        a stalled worker (full buffer, long command, chaos sleep) backs
        bytes up in ``_wbufs`` instead of wedging the whole loop — which
        is what keeps one slow shard from stalling every other shard's
        traffic.  The workers stay on plain blocking ``Connection``s;
        only the router's end of each socketpair goes non-blocking, so
        the wire format is still multiprocessing's length-prefixed
        pickle.
        """
        conn = self._conns[sid]
        os.set_blocking(conn.fileno(), False)
        self._rbufs[sid] = bytearray()
        self._wbufs[sid] = bytearray()
        self._writer_on[sid] = False
        epoch = self._epochs[sid]
        self._loop.add_reader(conn.fileno(), self._on_readable, sid, epoch)

    def _unregister_reader(self, sid: int) -> None:
        conn = self._conns.get(sid)
        if conn is None:
            return
        try:
            self._loop.remove_reader(conn.fileno())
        except (OSError, ValueError):  # pragma: no cover - fd already dead
            pass
        if self._writer_on.get(sid):
            self._writer_on[sid] = False
            try:
                self._loop.remove_writer(conn.fileno())
            except (OSError, ValueError):  # pragma: no cover - fd already dead
                pass

    def _on_readable(self, sid: int, epoch: int) -> None:
        if self._epochs[sid] != epoch:
            return  # stale registration from before a restart
        conn = self._conns.get(sid)
        if conn is None:
            return
        try:
            chunk = os.read(conn.fileno(), 1 << 18)
        except BlockingIOError:  # pragma: no cover - spurious wakeup
            return
        except OSError:
            self._mark_down(sid, "pipe closed")
            return
        if not chunk:
            self._mark_down(sid, "pipe closed")
            return
        buf = self._rbufs[sid]
        buf += chunk
        start = 0
        while len(buf) - start >= 4:
            (size,) = _WIRE.unpack_from(buf, start)
            if size < 0:  # pragma: no cover - >2GB frame marker, never sent
                self._mark_down(sid, "oversized frame")
                return
            if len(buf) - start - 4 < size:
                break
            frame = pickle.loads(bytes(buf[start + 4:start + 4 + size]))
            start += 4 + size
            if frame[0] == "reply":
                self._resolve(sid, frame[1], frame[2])
            if self._epochs[sid] != epoch:  # resolve cascaded into a restart
                return
        del buf[:start]

    def _resolve(self, sid: int, seq: int, results: list) -> None:
        record = self._inflight[sid].pop(seq, None)
        if record is None or record.done:
            return
        record.done = True
        if record.timer is not None:
            record.timer.cancel()
        offset = 0
        for future, count in record.entries:
            if not future.done():
                future.set_result(results[offset:offset + count])
            offset += count

    def _fail_inflight(self, sid: int, error: ShardError) -> None:
        inflight = self._inflight[sid]
        for record in inflight.values():
            record.done = True
            if record.timer is not None:
                record.timer.cancel()
            for future, __ in record.entries:
                if not future.done():
                    future.set_exception(error)
        inflight.clear()

    def _mark_down(self, sid: int, why: str) -> None:
        if sid in self._down:
            return
        self._down.add(sid)
        self._epochs[sid] += 1
        self._unregister_reader(sid)
        self._fail_inflight(sid, ShardDown(f"shard {sid} down: {why}"))
        self._buffers[sid].clear()
        self._rbufs[sid] = bytearray()
        self._wbufs[sid] = bytearray()
        self._m_up[sid].set(0)

    def _enqueue(self, sid: int, commands: list[tuple]) -> asyncio.Future:
        """Buffer one command group for ``sid``; flushed once per loop pass.

        The returned future resolves to the group's results in order.
        Groups from many callers share pickle frames, which is where the
        pipelined mode's throughput comes from.
        """
        future = self._loop.create_future()
        if sid in self._down:
            future.set_exception(ShardDown(f"shard {sid} is down"))
            return future
        buffer = self._buffers[sid]
        if not buffer:
            self._loop.call_soon(self._flush, sid)
        buffer.append((commands, future))
        return future

    def _flush(self, sid: int) -> None:
        buffer = self._buffers[sid]
        if not buffer:
            return
        self._buffers[sid] = []
        if sid in self._down:
            for __, future in buffer:
                if not future.done():
                    future.set_exception(ShardDown(f"shard {sid} is down"))
            return
        # Pack whole groups into frames up to the size cap (groups are a
        # handful of commands each, far below the cap).
        commands: list[tuple] = []
        entries: list[tuple[asyncio.Future, int]] = []
        for group, future in buffer:
            if commands and len(commands) + len(group) > _MAX_FRAME_COMMANDS:
                self._send_frame(sid, _Frame(commands, entries, attempt=0))
                commands, entries = [], []
            commands.extend(group)
            entries.append((future, len(group)))
        if commands:
            self._send_frame(sid, _Frame(commands, entries, attempt=0))

    def _send_frame(self, sid: int, record: _Frame) -> None:
        if record.done:
            return
        if sid in self._down:
            self._fail_record(record, ShardDown(f"shard {sid} is down"))
            return
        seq = next(self._seq)
        self._inflight[sid][seq] = record
        action = "pass" if self.chaos is None else self.chaos.classify()
        if action == "pass":
            self._raw_send(sid, ("cmds", seq, record.commands))
        elif action == "delay":
            epoch = self._epochs[sid]
            self._loop.call_later(
                self.chaos.config.delay_seconds,
                self._delayed_send, sid, epoch, seq, record,
            )
        # "drop": never written; the retry timer below re-sends.
        retry = self.config.retry
        if retry.enabled:
            record.timer = self._loop.call_later(
                retry.wait_for(record.attempt), self._on_frame_timeout,
                sid, seq, record,
            )
        elif action == "drop":  # pragma: no cover - forbidden by ClusterConfig
            self._fail_record(record, ShardTimeout(f"shard {sid}: frame dropped"))

    def _delayed_send(self, sid: int, epoch: int, seq: int, record: _Frame) -> None:
        if record.done or self._epochs[sid] != epoch:
            return
        self._raw_send(sid, ("cmds", seq, record.commands))

    def _raw_send(self, sid: int, frame: tuple) -> None:
        if self._conns.get(sid) is None:
            return
        payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        buf = self._wbufs[sid]
        buf += _WIRE.pack(len(payload))
        buf += payload
        if not self._writer_on[sid]:
            self._pump_writes(sid, self._epochs[sid])

    def _pump_writes(self, sid: int, epoch: int) -> None:
        """Drain the outbound byte backlog without ever blocking."""
        if self._epochs[sid] != epoch:
            return
        conn = self._conns.get(sid)
        if conn is None:
            return
        buf = self._wbufs[sid]
        fd = conn.fileno()
        while buf:
            try:
                written = os.write(fd, buf)
            except BlockingIOError:
                break
            except OSError:
                self._mark_down(sid, "send failed")
                return
            del buf[:written]
        if buf and not self._writer_on[sid]:
            self._writer_on[sid] = True
            self._loop.add_writer(fd, self._pump_writes, sid, epoch)
        elif not buf and self._writer_on[sid]:
            self._writer_on[sid] = False
            try:
                self._loop.remove_writer(fd)
            except (OSError, ValueError):  # pragma: no cover - fd already dead
                pass

    def _on_frame_timeout(self, sid: int, seq: int, record: _Frame) -> None:
        if record.done:
            return
        self._inflight[sid].pop(seq, None)
        retries_used = record.attempt + 1
        if self.config.retry.allows_retry(retries_used):
            self._m_retries.inc()
            record.attempt = retries_used
            self._send_frame(sid, record)
            return
        # Attempts exhausted: declare the shard suspect.  Restart+resync
        # is always safe (the journal is authoritative), so erring toward
        # down beats wedging callers.
        self._fail_record(
            record, ShardTimeout(f"shard {sid}: no reply after {retries_used} tries")
        )
        self._mark_down(sid, "rpc timeout")

    @staticmethod
    def _fail_record(record: _Frame, error: ShardError) -> None:
        record.done = True
        if record.timer is not None:
            record.timer.cancel()
        for future, __ in record.entries:
            if not future.done():
                future.set_exception(error)

    async def _call(self, sid: int, commands: list[tuple]) -> list:
        """Send one command group to one shard; results in order."""
        return await self._enqueue(sid, commands)

    # ----------------------------------------------------------- monitoring

    async def _monitor(self) -> None:
        """Heartbeat loop: detect dead/wedged workers, restart, resync."""
        interval = self.config.heartbeat_interval
        while True:
            await asyncio.sleep(interval)
            for sid in self.supervisor.shard_ids:
                if sid in self._down:
                    await self._recover(sid)
                    continue
                if not self.supervisor.is_alive(sid):
                    self._mark_down(sid, "process exited")
                    await self._recover(sid)
                    continue
                try:
                    (snapshot,) = await self._call(sid, [("snapshot",)])
                except ShardError:
                    self._misses[sid] += 1
                    if (sid not in self._down
                            and self._misses[sid] >= self.config.heartbeat_misses):
                        self._mark_down(sid, "heartbeat misses")
                    continue
                self._misses[sid] = 0
                self.telemetry.fold(snapshot["tallies"], shard=str(sid))
                self.telemetry.gauge(
                    "serve_shard_pending", shard=str(sid)
                ).set(snapshot["pending"])

    async def _recover(self, sid: int) -> bool:
        """Restart a dead worker (if needed) and resync it from the journal."""
        if not self.supervisor.is_alive(sid):
            conn = self.supervisor.restart(sid)
            self._conns[sid] = conn
            self._m_restarts.inc()
        self._epochs[sid] += 1
        self._register_reader(sid)
        self._misses[sid] = 0
        # Leave the down set and enqueue the sync in the same loop step, so
        # no other task can slip a command in ahead of the resync.
        self._down.discard(sid)
        occupancy = self.journal.occupancy_for(self.partitions[sid])
        try:
            await self._call(sid, [("sync", occupancy)])
        except ShardError:
            return False  # still down; the next heartbeat tick retries
        self._m_up[sid].set(1)
        return True

    # --------------------------------------------------------------- routing

    def _groups(self, path: tuple[int, ...]) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """Shard grouping of a path, cached — the candidate set is static."""
        cached = self._path_groups.get(path)
        if cached is None:
            groups: dict[int, list[int]] = {}
            link_shard = self._link_shard
            for link in path:
                groups.setdefault(link_shard[link], []).append(link)
            cached = tuple(
                (sid, tuple(links)) for sid, links in sorted(groups.items())
            )
            self._path_groups[path] = cached
        return cached

    def _compile_candidates(self) -> dict:
        """Bake every O-D pair's candidate chains once, shard groups included.

        A chain entry is ``(path, kind, tier, groups)`` — everything the
        admission loops need per attempt without per-request allocation.
        """
        def chain(primary, alternates):
            path = tuple(primary)
            entries = [(path, PRIMARY_KIND, "primary", self._groups(path))]
            for alt in alternates:
                alt = tuple(alt)
                entries.append((alt, len(alt), "alternate", self._groups(alt)))
            return tuple(entries)

        compiled: dict = {}
        for od, entry in self._routes.items():
            if entry[0] == "single":
                compiled[od] = ("single", chain(entry[1], entry[2]))
            else:
                compiled[od] = (
                    "multi",
                    [chain(p, alts) for p, alts in entry[1]],
                    entry[2],
                )
        return compiled

    def _candidates_for(self, od, uniform: float):
        """The request's candidate chain, or ``None`` for no route.

        The bifurcation pick mirrors :func:`repro.serve.engine.pick_route`
        exactly — ordered-mode bit-equivalence depends on it.
        """
        entry = self._candidates.get(od)
        if entry is None:
            return None
        if entry[0] == "single":
            return entry[1]
        chains, cum = entry[1], entry[2]
        pick = 0
        while pick < len(cum) - 1 and uniform >= cum[pick]:
            pick += 1
        return chains[pick]

    async def _admit(self, request: AdmitRequest) -> Decision:
        if request.id in self.journal.held:
            self._m_errors.inc()
            return Decision(request.id, False, None, "none", "duplicate-call")
        candidates = self._candidates_for(request.od, request.uniform)
        if candidates is None:
            self._m_rejected["no-route"].inc()
            return Decision(request.id, False, None, "none", "no-route")
        width = request.width
        crankback = self.config.crankback
        skipped_down = 0
        reroutes = 0
        for index, (path, kind, tier, groups) in enumerate(candidates):
            if tier == "alternate":
                reroutes += 1
                if crankback.exhausted(reroutes):
                    break
            if any(sid in self._down for sid, __ in groups):
                skipped_down += 1
                continue
            rid = _reservation_id(request.id, index)
            if len(groups) == 1:
                verdict = await self._attempt_fast(groups, rid, width, kind)
            else:
                verdict = await self._attempt_two_phase(
                    request.id, groups, rid, width, kind, path, tier
                )
            if verdict == "yes":
                if len(groups) == 1:
                    self.journal.record_admit(request.id, path, width, tier)
                (self._m_primary if tier == "primary" else self._m_alternate).inc()
                self._m_held.set(len(self.journal.held))
                return Decision(request.id, True, path, tier, None)
            if verdict == "down":
                skipped_down += 1
            elif tier == "alternate" or len(candidates) == 1:
                self._m_crankbacks.inc()
        reason = "shard-down" if skipped_down else "blocked"
        self._m_rejected[reason].inc()
        return Decision(request.id, False, None, "none", reason)

    async def _attempt_fast(
        self, groups: tuple, rid: str, width: int, kind: int
    ) -> str:
        ((sid, links),) = groups
        try:
            (result,) = await self._call(
                sid, [("rescommit", rid, links, width, kind)]
            )
        except ShardError:
            return "down"
        self._m_fastpath.inc()
        return "yes" if result == 1 else "no"

    async def _attempt_two_phase(
        self,
        call_id: int | str,
        groups: tuple,
        rid: str,
        width: int,
        kind: int,
        path: tuple[int, ...],
        tier: str,
    ) -> str:
        self._m_twophase.inc()
        outcomes = await asyncio.gather(
            *(
                self._call(sid, [("reserve", rid, links, width, kind)])
                for sid, links in groups
            ),
            return_exceptions=True,
        )
        reserved: list[tuple[int, tuple[int, ...]]] = []
        refused = failed = False
        for (sid, links), outcome in zip(groups, outcomes):
            if isinstance(outcome, BaseException):
                failed = True
            elif outcome[0] == 1:
                reserved.append((sid, links))
            else:
                refused = True
        if not refused and not failed:
            # Journal first, then commit: a shard crashing mid-commit is
            # resynced from the journal, so the admit survives the crash.
            self.journal.record_admit(call_id, path, width, tier)
            await asyncio.gather(
                *(
                    self._call(sid, [("commit", rid)])
                    for sid, __ in reserved
                ),
                return_exceptions=True,
            )
            return "yes"
        # Crankback: free the partial reservations.  A lost abort is not a
        # leak — the worker's hold-timer reaps the orphan.
        await asyncio.gather(
            *(self._call(sid, [("abort", rid)]) for sid, __ in reserved),
            return_exceptions=True,
        )
        return "down" if failed and not refused else "no"

    async def _release(self, request: ReleaseRequest) -> Decision:
        entry = self.journal.record_release(request.id)
        if entry is None:
            self._m_errors.inc()
            return Decision(request.id, False, None, "release", "unknown-call")
        path, width, __ = entry
        rid = _release_id(request.id)
        calls = []
        for sid, links in self._groups(path):
            if sid in self._down:
                # The journal already forgot the call, so the restarted
                # worker's resync lands on the post-release occupancy.
                continue
            calls.append(self._call(sid, [("release", rid, links, width)]))
        if calls:
            await asyncio.gather(*calls, return_exceptions=True)
        self._m_released.inc()
        self._m_held.set(len(self.journal.held))
        return Decision(request.id, True, path, "release", None)

    async def _dispatch(self, request: AdmitRequest | ReleaseRequest) -> Decision:
        if type(request) is ReleaseRequest:
            return await self._release(request)
        return await self._admit(request)

    # ------------------------------------------------------------ public API

    async def hot_swap(
        self,
        *,
        alt_thresholds=None,
        length_thresholds=None,
        now: float = 0.0,
    ) -> float:
        """Install new admission bounds on every shard, atomically per shard.

        Mirrors :meth:`NetworkState.hot_swap`: exactly one of
        ``alt_thresholds`` (scalar ``threshold`` discipline) or
        ``length_thresholds`` (per-hop-length tables) must be given and
        must match the policy's discipline.  The swap is serialized
        against ordered-mode dispatch by the router lock, so no decision
        straddles two policy versions; every shard gets one ``swap``
        command stamped with the new epoch, and the supervisor's respawn
        specs are updated first — a worker that crashes mid-broadcast is
        restarted with the *new* bounds, never the boot ones.  Down
        shards only get the spec update; their restart resync brings
        them current.  Returns the max absolute per-link threshold move.
        """
        if (alt_thresholds is None) == (length_thresholds is None):
            raise ValueError(
                "pass exactly one of alt_thresholds or length_thresholds"
            )
        capacities = self._capacities
        num_links = self.network.num_links
        if alt_thresholds is not None:
            if self._length_disciplined:
                raise ValueError(
                    "cluster policy uses the length-threshold discipline; "
                    "swap via length_thresholds"
                )
            flat = [int(t) for t in alt_thresholds]
            if len(flat) != num_links:
                raise ValueError("alt_thresholds must be per-link")
            tables_full = None
        else:
            if not self._length_disciplined:
                raise ValueError(
                    "cluster policy uses the scalar threshold discipline; "
                    "swap via alt_thresholds"
                )
            tables_full = {
                int(h): [int(t) for t in row]
                for h, row in length_thresholds.items()
            }
            for h, row in tables_full.items():
                if len(row) != num_links:
                    raise ValueError("length threshold rows must be per-link")
            # Flat telemetry mirror: the laxest (shortest-hop) table.
            flat = list(tables_full[min(tables_full)])
        for vec in [flat] if tables_full is None else tables_full.values():
            for link, bound in enumerate(vec):
                if bound < 0 or bound > capacities[link]:
                    raise ValueError("thresholds must lie in [0, capacity]")
        async with self._lock:
            self.policy_epoch += 1
            epoch = self.policy_epoch
            max_delta = 0
            calls = []
            for sid, links in enumerate(self.partitions):
                spec = self.supervisor.specs[sid]
                thr_slice = {l: flat[l] for l in links}
                tab_slice = (
                    None if tables_full is None
                    else {
                        h: {l: row[l] for l in links}
                        for h, row in tables_full.items()
                    }
                )
                old_thr = spec["thresholds"]
                for l in links:
                    max_delta = max(max_delta, abs(thr_slice[l] - old_thr[l]))
                old_tabs = spec.get("tables")
                if tab_slice is not None and old_tabs:
                    for h, row in tab_slice.items():
                        prev = old_tabs.get(h, {})
                        for l, bound in row.items():
                            max_delta = max(
                                max_delta, abs(bound - prev.get(l, bound))
                            )
                spec["thresholds"] = thr_slice
                spec["tables"] = tab_slice
                spec["epoch"] = epoch
                if sid not in self._down:
                    calls.append(
                        self._call(sid, [("swap", epoch, thr_slice, tab_slice)])
                    )
            if calls:
                # A shard failing its swap is marked down by the transport
                # layer and restarted by the monitor from the spec we just
                # updated, so it still converges to the new epoch.
                await asyncio.gather(*calls, return_exceptions=True)
        self._m_swaps.inc()
        self._m_epoch.set(epoch)
        self.swaps.append(
            PolicySwap(time=now, epoch=epoch, max_delta=float(max_delta))
        )
        return float(max_delta)

    async def submit(self, request: AdmitRequest | ReleaseRequest) -> Decision:
        """Decide one request under the configured mode's concurrency."""
        self.decisions_total += 1
        if self.config.mode == "ordered":
            async with self._lock:
                return await self._dispatch(request)
        if type(request) is ReleaseRequest:
            prior = self._active.get(request.id)
            if prior is not None:
                # A release must observe its own call's admit: wait it out.
                await asyncio.gather(prior, return_exceptions=True)
            return await self._dispatch(request)
        if request.id in self._active or request.id in self.journal.held:
            self._m_errors.inc()
            return Decision(request.id, False, None, "none", "duplicate-call")
        task = asyncio.ensure_future(self._dispatch(request))
        self._active[request.id] = task
        try:
            return await task
        finally:
            if self._active.get(request.id) is task:
                del self._active[request.id]

    async def submit_batch(
        self, requests: list[AdmitRequest | ReleaseRequest]
    ) -> list[Decision]:
        """Decide a batch; ordered mode serializes, pipelined overlaps.

        The pipelined path decides the whole batch in candidate *rounds*
        rather than request tasks: every still-undecided admission's
        current candidate is tried in one volley — all of the round's
        commands to a shard share a frame — then refusals crank back and
        join the next round.  Per-request overhead collapses to dict
        operations, which is what lets four worker processes outrun the
        single-process socket server.
        """
        if self.config.mode == "ordered":
            return [await self.submit(request) for request in requests]
        self.decisions_total += len(requests)
        future = asyncio.get_running_loop().create_future()
        self._wave_queue.append((list(requests), future))
        self._batches += 1
        try:
            if self._wave_task is None or self._wave_task.done():
                self._wave_task = asyncio.ensure_future(self._wave_loop())
            return await future
        finally:
            self._batches -= 1

    async def _wave_loop(self) -> None:
        """Drain the pipelined batch queue, one merged wave at a time.

        Batches submitted concurrently (one per client connection) are
        *merged* into a single wave and re-interleaved by request time
        instead of raced against each other: concurrent waves would
        contend for the same circuits and crank calls back for capacity
        that is only transiently reserved, inflating blocking far above
        the engine's.  One wave at a time keeps the worker serialization
        honest while still amortizing the whole wave's commands into a
        few frames per shard.
        """
        while self._wave_queue:
            queue = self._wave_queue
            pending: list[tuple[list, asyncio.Future]] = []
            total = 0
            while queue and (
                not pending or total + len(queue[0][0]) <= _MAX_WAVE_REQUESTS
            ):
                batch = queue.pop(0)
                pending.append(batch)
                total += len(batch[0])
            items: list[tuple] = []
            for b, (requests, __) in enumerate(pending):
                for j, request in enumerate(requests):
                    items.append((request.time, b, j, request))
            if len(pending) > 1 and all(it[0] is not None for it in items):
                # Stable (time, batch, position) order: each call's admit
                # and release live in one batch, so their relative order
                # survives the interleave.
                items.sort(key=lambda it: (it[0], it[1], it[2]))
            try:
                decisions = await self._decide_batch_rounds(
                    [it[3] for it in items]
                )
            except BaseException as error:
                for __, future in pending:
                    if not future.done():
                        future.set_exception(error)
                if isinstance(error, asyncio.CancelledError):
                    raise
                continue
            outs: list[list] = [[None] * len(reqs) for reqs, __ in pending]
            for (__, b, j, ___), decision in zip(items, decisions):
                outs[b][j] = decision
            for (___, future), out in zip(pending, outs):
                if not future.done():
                    future.set_result(out)

    async def _decide_batch_rounds(
        self, requests: list[AdmitRequest | ReleaseRequest]
    ) -> list[Decision]:
        decisions: list[Decision | None] = [None] * len(requests)
        admit_ids: set[int | str] = set()
        admits: list[tuple[int, AdmitRequest]] = []
        early_releases: list[tuple[int, ReleaseRequest]] = []
        late_releases: list[tuple[int, ReleaseRequest]] = []
        for i, request in enumerate(requests):
            if type(request) is ReleaseRequest:
                # A release whose call is admitted *in this batch* must run
                # after the admit wave; anything else can go first.
                target = late_releases if request.id in admit_ids else early_releases
                target.append((i, request))
            elif (request.id in admit_ids or request.id in self.journal.held
                    or request.id in self._active):
                self._m_errors.inc()
                decisions[i] = Decision(
                    request.id, False, None, "none", "duplicate-call"
                )
            else:
                admit_ids.add(request.id)
                admits.append((i, request))
        await self._release_wave(early_releases, decisions)
        await self._admit_wave(admits, decisions)
        await self._release_wave(late_releases, decisions)
        self._m_held.set(len(self.journal.held))
        return decisions

    async def _release_wave(
        self,
        releases: list[tuple[int, ReleaseRequest]],
        decisions: list[Decision | None],
    ) -> None:
        if not releases:
            return
        by_shard: dict[int, list[tuple]] = {}
        released = errors = 0
        for i, request in releases:
            entry = self.journal.record_release(request.id)
            if entry is None:
                errors += 1
                decisions[i] = Decision(
                    request.id, False, None, "release", "unknown-call"
                )
                continue
            path, width, __ = entry
            rid = _release_id(request.id)
            for sid, links in self._groups(path):
                if sid in self._down:
                    continue  # journal already forgot it; resync heals
                by_shard.setdefault(sid, []).append(("release", rid, links, width))
            released += 1
            decisions[i] = Decision(request.id, True, path, "release", None)
        self._m_released.inc(released)
        if errors:
            self._m_errors.inc(errors)
        if by_shard:
            await asyncio.gather(
                *(self._enqueue(sid, cmds) for sid, cmds in by_shard.items()),
                return_exceptions=True,
            )

    async def _admit_wave(
        self,
        admits: list[tuple[int, AdmitRequest]],
        decisions: list[Decision | None],
    ) -> None:
        crankback = self.config.crankback
        journal = self.journal
        down = self._down
        cleanup: list[asyncio.Future] = []
        tallies = {
            "primary": 0, "alternate": 0, "blocked": 0, "shard-down": 0,
            "no-route": 0, "fastpath": 0, "twophase": 0, "crankbacks": 0,
        }
        # One mutable record per undecided admission:
        # [index, request, candidates, position, reroutes, skipped_down].
        active: list[list] = []
        for i, request in admits:
            candidates = self._candidates_for(request.od, request.uniform)
            if candidates is None:
                tallies["no-route"] += 1
                decisions[i] = Decision(request.id, False, None, "none", "no-route")
                continue
            active.append([i, request, candidates, 0, 0, 0])

        def finalize(item: list) -> None:
            reason = "shard-down" if item[5] else "blocked"
            tallies[reason] += 1
            decisions[item[0]] = Decision(item[1].id, False, None, "none", reason)

        while active:
            plan: list[tuple[list, tuple, int, str, tuple, dict, int | str]] = []
            for item in active:
                candidates = item[2]
                groups = None
                while item[3] < len(candidates):
                    path, kind, tier, groups = candidates[item[3]]
                    if tier == "alternate":
                        item[4] += 1
                        if crankback.exhausted(item[4]):
                            item[3] = len(candidates)
                            break
                    if down and any(sid in down for sid, __ in groups):
                        item[5] += 1
                        item[3] += 1
                        groups = None
                        continue
                    break
                if item[3] >= len(candidates) or groups is None:
                    finalize(item)
                    continue
                rid = _reservation_id(item[1].id, item[3])
                plan.append((item, path, kind, tier, groups, {}, rid))
            if not plan:
                break
            by_shard: dict[int, list[tuple]] = {}
            tags: dict[int, list[dict]] = {}
            for item, path, kind, tier, groups, votes, rid in plan:
                request = item[1]
                fast = len(groups) == 1
                tallies["fastpath" if fast else "twophase"] += 1
                op = "rescommit" if fast else "reserve"
                for sid, links in groups:
                    by_shard.setdefault(sid, []).append(
                        (op, rid, links, request.width, kind)
                    )
                    tags.setdefault(sid, []).append(votes)
            futures = {sid: self._enqueue(sid, cmds) for sid, cmds in by_shard.items()}
            replies = await asyncio.gather(*futures.values(), return_exceptions=True)
            for (sid, __), reply in zip(futures.items(), replies):
                shard_tags = tags[sid]
                if isinstance(reply, BaseException):
                    for votes in shard_tags:
                        votes[sid] = "down"
                else:
                    for votes, result in zip(shard_tags, reply):
                        votes[sid] = "yes" if result == 1 else "no"
            active = []
            # Phase-2 traffic for the whole round, batched per shard (one
            # future per shard per round, not one per admission).
            after: dict[int, list[tuple]] = {}
            for item, path, kind, tier, groups, votes, rid in plan:
                i, request = item[0], item[1]
                if all(vote == "yes" for vote in votes.values()):
                    # Multi-shard: journal first, then commit (see _admit).
                    journal.record_admit(request.id, path, request.width, tier)
                    if len(groups) > 1:
                        for sid, __ in groups:
                            after.setdefault(sid, []).append(("commit", rid))
                    tallies[tier] += 1
                    decisions[i] = Decision(request.id, True, path, tier, None)
                    continue
                # Crankback: abort whatever reserved, advance the candidate.
                if len(groups) > 1:
                    for sid, __ in groups:
                        if votes.get(sid) == "yes":
                            after.setdefault(sid, []).append(("abort", rid))
                if any(vote == "down" for vote in votes.values()):
                    item[5] += 1
                else:
                    tallies["crankbacks"] += 1
                item[3] += 1
                active.append(item)
            # Enqueued before the next round's reserves: per-shard FIFO
            # means every commit/abort lands ahead of the next attempt.
            for sid, cmds in after.items():
                cleanup.append(self._enqueue(sid, cmds))
        self._m_primary.inc(tallies["primary"])
        self._m_alternate.inc(tallies["alternate"])
        for reason in ("blocked", "shard-down", "no-route"):
            if tallies[reason]:
                self._m_rejected[reason].inc(tallies[reason])
        self._m_fastpath.inc(tallies["fastpath"])
        self._m_twophase.inc(tallies["twophase"])
        self._m_crankbacks.inc(tallies["crankbacks"])
        if cleanup:
            await asyncio.gather(*cleanup, return_exceptions=True)

    async def audit(self) -> dict:
        """Diff every live shard's occupancy against the journal.

        ``leaked_circuits`` counts circuits booked on workers beyond what
        the journal can explain — the orphaned-reservation signal the
        chaos smoke asserts to be zero once hold-timers have had their
        horizon.  ``mismatches`` lists every differing link either way
        (under-booking shows up after commits lost to a dead shard and is
        healed by the next resync, not a leak).
        """
        shards: dict[int, dict] = {}
        leaked = 0
        mismatches: list[dict] = []
        pending = 0
        for sid in self.supervisor.shard_ids:
            if sid in self._down:
                shards[sid] = {"up": False}
                continue
            expected = self.journal.occupancy_for(self.partitions[sid])
            try:
                (snapshot,) = await self._call(sid, [("snapshot",)])
            except ShardError:
                shards[sid] = {"up": False}
                continue
            pending += snapshot["pending"]
            for link, want in expected.items():
                got = snapshot["occupancy"].get(link, 0)
                if got != want:
                    mismatches.append(
                        {"shard": sid, "link": link, "worker": got, "journal": want}
                    )
                    if got > want:
                        leaked += got - want
            shards[sid] = {
                "up": True,
                "ops": snapshot["ops"],
                "pending": snapshot["pending"],
            }
        return {
            "consistent": not mismatches,
            "leaked_circuits": leaked,
            "pending_reservations": pending,
            "mismatches": mismatches,
            "held_calls": len(self.journal.held),
            "down_shards": sorted(self._down),
            "restarts": dict(self.supervisor.restarts),
            "shards": shards,
        }

    async def resync_all(self) -> None:
        """Force every live shard back to journal-derived occupancy."""
        for sid in self.supervisor.shard_ids:
            if sid in self._down:
                continue
            occupancy = self.journal.occupancy_for(self.partitions[sid])
            try:
                await self._call(sid, [("sync", occupancy)])
            except ShardError:
                continue

    def shard_status(self) -> dict:
        """Cheap synchronous view for the ``shards`` wire op and the CLI."""
        return {
            "num_shards": self.config.num_shards,
            "mode": self.config.mode,
            "partitions": [list(links) for links in self.partitions],
            "up": [sid for sid in self.supervisor.shard_ids if sid not in self._down],
            "down": sorted(self._down),
            "restarts": dict(self.supervisor.restarts),
            "held_calls": len(self.journal.held),
            "chaos": None if self.chaos is None else dict(self.chaos.decisions),
        }


# --------------------------------------------------------------- wire layer

#: Length prefix for pickle frames: 4-byte big-endian payload size.
_HEADER = struct.Struct(">I")


def _decode_request(item: tuple) -> AdmitRequest | ReleaseRequest:
    if item[0] == "admit":
        __, rid, od, uniform, when, width = item
        return AdmitRequest(
            id=rid, od=(int(od[0]), int(od[1])), uniform=float(uniform),
            time=when, width=int(width),
        )
    if item[0] == "release":
        return ReleaseRequest(id=item[1], time=item[2])
    raise ValueError(f"unknown request kind {item[0]!r}")


class ClusterServer:
    """Pickle-frame front end for a :class:`ClusterRouter`.

    The protocol is one request dict per frame (``{"op": ...}``), one
    reply dict per frame.  ``batch`` carries requests as compact tuples
    (see :func:`_decode_request`) and answers with per-decision
    ``(admitted, tier, reason)`` triples — the loadgen's aggregation
    needs nothing more, and skipping route echo keeps frames small.
    """

    def __init__(self, router: ClusterRouter, host: str = "127.0.0.1", port: int = 0):
        self.router = router
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._draining = False

    async def start(self) -> None:
        await self.router.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.router.stop()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(_HEADER.size)
                except asyncio.IncompleteReadError:
                    break
                payload = await reader.readexactly(_HEADER.unpack(header)[0])
                message = pickle.loads(payload)
                reply = await self._answer(message)
                blob = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
                writer.write(_HEADER.pack(len(blob)) + blob)
                await writer.drain()
                if message.get("op") == "drain":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _answer(self, message: dict) -> dict:
        op = message.get("op")
        router = self.router
        if op == "batch":
            if self._draining:
                return {"error": "draining"}
            requests = [_decode_request(item) for item in message["requests"]]
            decisions = await router.submit_batch(requests)
            return {
                "decisions": [(d.admitted, d.tier, d.reason) for d in decisions]
            }
        if op == "metrics":
            return {
                "text": router.telemetry.render_text(),
                "snapshot": router.telemetry.snapshot(),
            }
        if op == "ping":
            return {"ok": True}
        if op == "shards":
            return router.shard_status()
        if op == "audit":
            return await router.audit()
        if op == "resync":
            await router.resync_all()
            return {"ok": True}
        if op == "drain":
            self._draining = True
            await router.drain()
            return {"ok": True, "held_calls": len(router.journal.held)}
        return {"error": f"unknown op {op!r}"}


class ClusterClient:
    """Blocking pickle-frame client (tests, loadgen worker processes)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def request(self, message: dict) -> dict:
        blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self._sock.sendall(_HEADER.pack(len(blob)) + blob)
        header = self._recv_exact(_HEADER.size)
        return pickle.loads(self._recv_exact(_HEADER.unpack(header)[0]))

    def decide_batch(self, items: list[tuple]) -> list[tuple]:
        """Submit request tuples; returns (admitted, tier, reason) triples."""
        reply = self.request({"op": "batch", "requests": items})
        if "error" in reply:
            raise RuntimeError(reply["error"])
        return reply["decisions"]

    def _recv_exact(self, size: int) -> bytes:
        chunks = []
        while size:
            chunk = self._sock.recv(size)
            if not chunk:
                raise ConnectionError("cluster server closed the connection")
            chunks.append(chunk)
            size -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
