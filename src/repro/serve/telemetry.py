"""Live service telemetry: counters, gauges, histograms, and their exports.

The serving plane needs observability that the offline subsystems never
did: admit/shed rates *per tier*, queue depth, decision latency — read
while the service runs, not after it exits.  This module is a tiny
dependency-free metrics registry in the Prometheus idiom:

* :class:`Counter` — monotone event counts (``serve_decisions_total``);
* :class:`Gauge` — instantaneous values (``serve_queue_depth``);
* :class:`Histogram` — fixed-bucket latency distributions with quantile
  estimates (``serve_decision_seconds``);
* :class:`MetricsRegistry` — the namespace holding them, rendering a
  ``/metrics``-style text dump and publishing JSONL snapshots over the
  :class:`repro.lab.events.EventBus` (the same bus the lab scheduler logs
  to, so one tail follows both offline studies and the live service).

Metrics support Prometheus-style labels: ``registry.counter("x", tier=
"primary")`` and ``registry.counter("x", tier="alternate")`` are distinct
series under one family name.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lab.events import EventBus

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Decision-latency buckets (seconds): 1us .. 100ms, log-ish spaced.  The
#: admission decision itself is sub-microsecond in a batch; the upper
#: buckets exist to make queueing/overload visible.
DEFAULT_LATENCY_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """An instantaneous value that may move in either direction."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts.

    ``buckets`` are the inclusive upper bounds of each bucket; values above
    the last bound land in the implicit ``+Inf`` bucket.  ``quantile`` is a
    bucket-resolution estimate (the upper bound of the bucket holding the
    requested rank) — coarse but monotone and cheap, which is what an
    overload guardrail needs.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical observations (batch amortization)."""
        if count <= 0:
            return
        self.counts[bisect_left(self.bounds, value)] += count
        self.total += count
        self.sum += value * count

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile rank."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= rank:
                return bound
        return float("inf")


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


def _render_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class MetricsRegistry:
    """A namespace of labelled metric series with text and JSONL exports.

    ``counter``/``gauge``/``histogram`` create-or-return the series for
    ``(name, labels)``, so hot paths can cache the returned object and
    casual callers can re-look it up.  ``render_text`` emits the familiar
    ``name{label="v"} value`` dump; ``publish`` emits one flat snapshot
    event (kind ``serve_metrics``) on a bound :class:`EventBus`.
    """

    def __init__(self):
        self._series: dict[tuple, Counter | Gauge | Histogram] = {}
        self._bus: "EventBus | None" = None

    def bind(self, bus: "EventBus") -> None:
        """Attach the JSONL event bus ``publish`` snapshots go to."""
        self._bus = bus

    @property
    def bus(self) -> "EventBus | None":
        return self._bus

    def _get(self, name: str, labels: dict, factory):
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = factory()
            self._series[key] = series
        elif not isinstance(series, factory if isinstance(factory, type) else Histogram):
            raise TypeError(f"metric {name!r} already registered with another type")
        return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS, **labels
    ) -> Histogram:
        return self._get(name, labels, lambda: Histogram(buckets))

    def fold(self, snapshot: dict, **labels) -> None:
        """Fold a worker's flat counter snapshot into this registry.

        The cluster's shard workers keep their own plain ``{name: count}``
        tallies (no registry, no labels) and ship them inside heartbeat /
        snapshot replies; the router folds them here so one ``/metrics``
        dump covers the whole cluster.  Values are treated as *absolute*
        worker-lifetime totals: each fold sets the labelled gauge series to
        the latest value, so restarts (which reset a worker's tallies) are
        visible as the gauge dropping rather than silently double-counted.
        """
        for name, value in snapshot.items():
            self.gauge(str(name), **labels).set(float(value))

    def snapshot(self) -> dict:
        """Flat ``{series-name: value}`` view (histograms: count/sum/p50/p99)."""
        out: dict[str, float] = {}
        for (name, labels), series in sorted(self._series.items()):
            rendered = name + _render_labels(labels)
            if isinstance(series, Histogram):
                out[rendered + "_count"] = float(series.total)
                out[rendered + "_sum"] = series.sum
                out[rendered + "_p50"] = series.quantile(0.5)
                out[rendered + "_p99"] = series.quantile(0.99)
            else:
                out[rendered] = series.value
        return out

    def render_text(self) -> str:
        """``/metrics``-style text dump, one series per line."""
        lines: list[str] = []
        for (name, labels), series in sorted(self._series.items()):
            suffix = _render_labels(labels)
            if isinstance(series, Histogram):
                cumulative = 0
                for bound, count in zip(series.bounds, series.counts):
                    cumulative += count
                    bucket_labels = labels + (("le", f"{bound:g}"),)
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                    )
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_render_labels(inf_labels)} {series.total}")
                lines.append(f"{name}_count{suffix} {series.total}")
                lines.append(f"{name}_sum{suffix} {series.sum:g}")
            else:
                lines.append(f"{name}{suffix} {series.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def publish(self, **extra) -> dict | None:
        """Emit one ``serve_metrics`` snapshot on the bound bus (if any)."""
        if self._bus is None:
            return None
        return self._bus.emit("serve_metrics", **self.snapshot(), **extra)
