"""The admission request engine: batched two-tier route decisions.

One :class:`RequestEngine` owns a :class:`~repro.serve.state.NetworkState`
and answers :class:`AdmitRequest` / :class:`ReleaseRequest` objects with
:class:`Decision` objects, applying exactly the simulator's threshold
admission semantics (see :mod:`repro.sim.simulator`): a primary is
admitted iff every link has ``width`` free circuits; otherwise alternates
are tried in policy order and admitted iff every link stays within its
alternate-admission threshold; bifurcated primaries are picked by the
request's uniform variate against the policy's cumulative probabilities.
That one-to-one correspondence is load-bearing: replaying an
:class:`~repro.sim.trace.ArrivalTrace` through the engine must reproduce
the simulator's per-call decisions bit for bit
(:mod:`repro.serve.loadgen` is the harness, ``tests/test_serve.py`` the
proof).

Requests are decided in **micro-batches**: :meth:`RequestEngine.decide`
answers one request with the full per-request overhead (state snapshot,
telemetry fold, latency stamp), while :meth:`RequestEngine.decide_batch`
amortizes all of that over a tight loop — the per-decision bookkeeping is
hoisted out, so batched dispatch is several times faster at identical
decisions (``benchmarks/bench_serve_throughput.py`` quantifies it).  The
asyncio front end (:mod:`repro.serve.server`) accumulates concurrent
requests into batches bounded by :class:`BatchConfig`.

Overload protection (:mod:`repro.serve.shed`) is consulted per query:
``degraded`` mode skips alternate-path exploration (primary-only routing),
``shed`` mode rejects the query outright before it costs anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..routing.base import RoutingPolicy
from ..topology.graph import Network
from .shed import MODES, OverloadControl
from .state import NetworkState
from .telemetry import MetricsRegistry

__all__ = [
    "AdmitRequest",
    "ReleaseRequest",
    "Decision",
    "BatchConfig",
    "RequestEngine",
    "apply_alt_prefix",
    "compile_routes",
    "pick_route",
]

#: Batch-size histogram bounds (powers of two up to the sane maximum).
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True, slots=True)
class AdmitRequest:
    """One admission query: may this call be routed, and where?

    ``uniform`` feeds the bifurcated-primary pick (common-random-numbers
    compatible with the trace's per-call variate); ``time`` is the
    request's virtual timestamp (trace time under replay, wall clock when
    ``None``); ``width`` is the bandwidth booked per link.
    """

    id: int | str
    od: tuple[int, int]
    uniform: float = 0.0
    time: float | None = None
    width: int = 1


@dataclass(frozen=True, slots=True)
class ReleaseRequest:
    """End of a held call: free the circuits its admission booked."""

    id: int | str
    time: float | None = None


@dataclass(frozen=True, slots=True)
class Decision:
    """The engine's answer to one request.

    ``tier`` is ``"primary"`` / ``"alternate"`` for admitted calls,
    ``"none"`` for rejections and ``"release"`` for release answers.
    ``reason`` is ``None`` on success, else one of ``"blocked"``,
    ``"no-route"``, ``"shed"``, ``"degraded"``, ``"duplicate-call"``,
    ``"unknown-call"``.
    """

    id: int | str
    admitted: bool
    route: tuple[int, ...] | None
    tier: str
    reason: str | None

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "admitted": self.admitted,
            "route": None if self.route is None else list(self.route),
            "tier": self.tier,
            "reason": self.reason,
        }


def compile_routes(policy: RoutingPolicy) -> dict:
    """Per-O-D dispatch entries from the policy's compiled choices.

    Mirrors the simulator's precompilation: deterministic pairs carry a
    bare ``("single", primary, alternates)`` entry, bifurcated pairs the
    candidate list plus cumulative probabilities.  Shared by the
    in-process engine and the cluster router so both planes route one
    request identically.
    """
    routes: dict[tuple[int, int], tuple] = {}
    for od, options in policy.choices.items():
        if not options:
            continue
        if len(options) == 1:
            routes[od] = ("single", options[0].primary, options[0].alternates)
        else:
            routes[od] = (
                "multi",
                [(c.primary, c.alternates) for c in options],
                policy.cum_probs[od].tolist(),
            )
    return routes


def apply_alt_prefix(
    routes: dict, prefix: dict[tuple[int, int], int]
) -> dict:
    """Truncate each pair's alternate list to its controller-chosen prefix.

    Entries absent from ``prefix`` keep their full alternate set; the
    input dict is not mutated (the engine swaps the whole table so a
    batch in flight keeps routing against a consistent snapshot).
    """
    out = dict(routes)
    for od, keep in prefix.items():
        entry = routes.get(od)
        if entry is None:
            continue
        if entry[0] == "single":
            out[od] = ("single", entry[1], entry[2][:keep])
        else:
            out[od] = (
                "multi",
                [(primary, alts[:keep]) for primary, alts in entry[1]],
                entry[2],
            )
    return out


def pick_route(entry: tuple, uniform: float) -> tuple:
    """Resolve one dispatch entry to ``(primary, alternates)``.

    Bifurcated pairs are picked by the request's uniform variate against
    the cumulative probabilities — byte-compatible with the simulator's
    common-random-numbers choice.
    """
    if entry[0] == "single":
        return entry[1], entry[2]
    options, cum = entry[1], entry[2]
    pick = 0
    while pick < len(cum) - 1 and uniform >= cum[pick]:
        pick += 1
    return options[pick]


@dataclass(frozen=True)
class BatchConfig:
    """Micro-batching knobs for the asyncio front end.

    ``max_batch`` caps how many queued requests one dispatch decides;
    ``max_latency`` (seconds) bounds how long a lone request may wait for
    company before the batch is flushed anyway.
    """

    max_batch: int = 64
    max_latency: float = 0.002

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.max_latency < 0:
            raise ValueError("max_latency must be non-negative")


class RequestEngine:
    """Decide admit/release requests against live network state.

    ``overload=None`` disables self-protection (every query fully routed —
    required for simulator-equivalent replay); ``telemetry=None`` creates
    a private registry.  ``clock`` supplies the time for requests that
    carry none (injectable for tests).
    """

    def __init__(
        self,
        network: Network,
        policy: RoutingPolicy,
        *,
        state: NetworkState | None = None,
        overload: OverloadControl | None = None,
        telemetry: MetricsRegistry | None = None,
        batch: BatchConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        control=None,
    ):
        self.state = state if state is not None else NetworkState(network, policy)
        if self.state.policy is not policy:
            raise ValueError("state was built for a different policy")
        if control is not None:
            if control.state is not self.state:
                raise ValueError("control loop was built for a different state")
            if self.state.adaptation is not None:
                raise ValueError(
                    "threshold adaptation and a control loop cannot both "
                    "drive one engine: two writers would race on the "
                    "thresholds"
                )
        self.control = control
        self.policy = policy
        self.overload = overload
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.batch = batch if batch is not None else BatchConfig()
        self.clock = clock
        #: Held calls: request id -> (path, width); release looks them up.
        self.held: dict[int | str, tuple[tuple[int, ...], int]] = {}
        #: Pending-queue depth, maintained by the socket front end; feeds
        #: the overload control's queue-based shedding.
        self.queue_depth = 0
        self.decisions_total = 0
        self._capacities = self.state.capacities.tolist()
        self._routes = self._compile_routes(policy)
        #: Untruncated route table; controller alternate-prefix proposals
        #: are always applied against this, never compounded.
        self._base_routes = self._routes
        #: Per-pair setup/block counts accumulated for the control loop
        #: (persist across batches; a batch may end mid-window).
        self._ctrl_arrivals: dict[tuple[int, int], int] = {}
        self._ctrl_blocked: dict[tuple[int, int], int] = {}
        # Telemetry series are resolved once; the batch loop folds locals
        # into them at batch end.
        registry = self.telemetry
        self._m_primary = registry.counter("serve_decisions_total", tier="primary")
        self._m_alternate = registry.counter("serve_decisions_total", tier="alternate")
        self._m_rejected = {
            reason: registry.counter("serve_rejected_total", reason=reason)
            for reason in ("blocked", "no-route", "shed", "degraded")
        }
        self._m_released = registry.counter("serve_released_total")
        self._m_errors = registry.counter("serve_errors_total")
        self._m_latency = registry.histogram("serve_decision_seconds")
        self._m_batch = registry.histogram("serve_batch_size", buckets=_BATCH_BUCKETS)
        self._m_queue = registry.gauge("serve_queue_depth")
        self._m_mode = registry.gauge("serve_mode")
        self._m_util = registry.gauge("serve_utilization")
        self._m_held = registry.gauge("serve_held_calls")
        # Adaptation observability: recompute counter, the magnitude of the
        # last threshold move, and per-link threshold gauges — exported only
        # for adaptive engines (static thresholds never change, and the
        # per-link series would be noise).
        self._m_recomputes = None
        self._m_recompute_delta = None
        self._m_link_thresholds: list = []
        # The policy epoch is exported for every engine (0 = the static
        # policy as compiled) so replay telemetry can align decisions to
        # the policy version that made them.
        self._m_epoch = registry.gauge("serve_policy_epoch")
        self._m_epoch.set(self.state.policy_epoch)
        if self.state.adaptation is not None or self.control is not None:
            self._m_recomputes = registry.counter(
                "serve_threshold_recomputes_total"
            )
            self._m_recompute_delta = registry.gauge(
                "serve_threshold_last_max_delta"
            )
            self._m_link_thresholds = [
                registry.gauge("serve_link_threshold", link=str(link))
                for link in range(network.num_links)
            ]
            self._export_thresholds()

    def _export_thresholds(self) -> None:
        """Publish the per-link alternate-admission thresholds as gauges."""
        for gauge, value in zip(
            self._m_link_thresholds, self.state.alt_thresholds
        ):
            gauge.set(int(value))

    #: Kept as a staticmethod alias for callers that reached through the
    #: class; the shared implementation is module-level :func:`compile_routes`.
    _compile_routes = staticmethod(compile_routes)

    # ----------------------------------------------------------- public API

    def decide(self, request: AdmitRequest | ReleaseRequest) -> Decision:
        """Answer one request (full per-request overhead; see class doc)."""
        return self.decide_batch((request,))[0]

    def decide_batch(
        self, requests: Sequence[AdmitRequest | ReleaseRequest]
    ) -> list[Decision]:
        """Answer a micro-batch of requests, in order, atomically.

        Decisions are identical to deciding the requests one by one — the
        batch only amortizes bookkeeping (state snapshot, telemetry fold,
        latency stamping), never reorders or coalesces admissions.
        """
        start = time.perf_counter()
        state = self.state
        occupancy, thresholds, tables = state.arrays()
        adapt = state.adaptation is not None
        recomputes_before = state.recompute_count if adapt else 0
        setups = [0] * len(occupancy) if adapt else None
        next_refresh = state.next_refresh
        ctrl = self.control
        ctrl_arrivals = self._ctrl_arrivals
        ctrl_blocked = self._ctrl_blocked
        next_ctrl = ctrl.next_step if ctrl is not None else None
        epoch_before = state.policy_epoch
        capacities = self._capacities
        held = self.held
        routes = self._routes
        control = self.overload
        clock = self.clock
        queue_depth = self.queue_depth
        decisions: list[Decision] = []
        append = decisions.append
        n_primary = n_alternate = n_released = n_errors = 0
        rejected = {"blocked": 0, "no-route": 0, "shed": 0, "degraded": 0}

        for request in requests:
            if type(request) is ReleaseRequest:
                entry = held.pop(request.id, None)
                if entry is None:
                    append(Decision(request.id, False, None, "release",
                                    "unknown-call"))
                    n_errors += 1
                else:
                    path, width = entry
                    for link in path:
                        occupancy[link] -= width
                    append(Decision(request.id, True, path, "release", None))
                    n_released += 1
                continue
            now = request.time
            if now is None:
                now = clock()
            if adapt and next_refresh is not None and now >= next_refresh:
                # Fold this batch's partial counts in, refresh, re-snapshot.
                state.absorb(occupancy, setups)
                setups = [0] * len(occupancy)
                state.maybe_refresh(now)
                occupancy, thresholds, tables = state.arrays()
                next_refresh = state.next_refresh
            if next_ctrl is not None and now >= next_ctrl:
                # Control window boundary: hand the accumulated per-pair
                # counts to the loop, then re-snapshot whatever it swapped.
                state.absorb(occupancy)
                step = ctrl.step(now, ctrl_arrivals, ctrl_blocked)
                ctrl_arrivals.clear()
                ctrl_blocked.clear()
                if step is not None and step.applied:
                    if step.alt_prefix is not None:
                        self._routes = apply_alt_prefix(
                            self._base_routes, step.alt_prefix
                        )
                        routes = self._routes
                    occupancy, thresholds, tables = state.arrays()
                next_ctrl = ctrl.next_step
            mode = "normal" if control is None else control.classify(now, queue_depth)
            if mode == "shed":
                append(Decision(request.id, False, None, "none", "shed"))
                rejected["shed"] += 1
                continue
            if request.id in held:
                append(Decision(request.id, False, None, "none", "duplicate-call"))
                n_errors += 1
                continue
            entry = routes.get(request.od)
            if entry is None:
                # Disconnected pair: necessarily lost, as in the simulator.
                append(Decision(request.id, False, None, "none", "no-route"))
                rejected["no-route"] += 1
                continue
            if entry[0] == "single":
                primary, alternates = entry[1], entry[2]
            else:
                options, cum = entry[1], entry[2]
                u = request.uniform
                pick = 0
                while pick < len(cum) - 1 and u >= cum[pick]:
                    pick += 1
                primary, alternates = options[pick]
            width = request.width
            if ctrl is not None:
                od = request.od
                ctrl_arrivals[od] = ctrl_arrivals.get(od, 0) + 1
            if adapt:
                # The primary set-up packet passes every primary link,
                # admitted or not — that is what the links measure.
                for link in primary:
                    setups[link] += 1
            for link in primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                for link in primary:
                    occupancy[link] += width
                held[request.id] = (primary, width)
                append(Decision(request.id, True, primary, "primary", None))
                n_primary += 1
                continue
            if mode == "degraded":
                # Alternate-tier queries are shed first; the primary was
                # still tried, so primaries go last.
                append(Decision(request.id, False, None, "none", "degraded"))
                rejected["degraded"] += 1
                continue
            path = None
            if tables is None:
                for alt in alternates:
                    for link in alt:
                        if occupancy[link] + width > thresholds[link]:
                            break
                    else:
                        path = alt
                        break
            else:
                for alt in alternates:
                    bounds = tables[len(alt)]
                    for link in alt:
                        if occupancy[link] + width > bounds[link]:
                            break
                    else:
                        path = alt
                        break
            if path is None:
                append(Decision(request.id, False, None, "none", "blocked"))
                rejected["blocked"] += 1
                if ctrl is not None:
                    od = request.od
                    ctrl_blocked[od] = ctrl_blocked.get(od, 0) + 1
            else:
                for link in path:
                    occupancy[link] += width
                held[request.id] = (path, width)
                append(Decision(request.id, True, path, "alternate", None))
                n_alternate += 1

        state.absorb(occupancy, setups)
        count = len(decisions)
        self.decisions_total += count
        elapsed = time.perf_counter() - start
        self._m_primary.inc(n_primary)
        self._m_alternate.inc(n_alternate)
        for reason, n in rejected.items():
            if n:
                self._m_rejected[reason].inc(n)
        self._m_released.inc(n_released)
        self._m_errors.inc(n_errors)
        if count:
            self._m_latency.observe_many(elapsed / count, count)
            self._m_batch.observe(count)
        self._m_queue.set(queue_depth)
        if control is not None:
            self._m_mode.set(MODES.index(control.mode))
        self._m_util.set(state.utilization())
        self._m_held.set(len(held))
        if adapt:
            fired = state.recompute_count - recomputes_before
            if fired:
                self._m_recomputes.inc(fired)
                self._m_recompute_delta.set(state.last_refresh_delta)
                self._export_thresholds()
        if ctrl is not None:
            swapped = state.policy_epoch - epoch_before
            if swapped:
                self._m_epoch.set(state.policy_epoch)
                self._m_recomputes.inc(swapped)
                self._m_recompute_delta.set(state.last_refresh_delta)
                self._export_thresholds()
        return decisions

    # ----------------------------------------------------------- inspection

    def metrics_text(self) -> str:
        """The registry's ``/metrics``-style dump."""
        return self.telemetry.render_text()

    def publish_metrics(self, **extra) -> dict | None:
        """Snapshot the registry onto its bound JSONL event bus."""
        return self.telemetry.publish(**extra)
