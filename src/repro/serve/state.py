"""Mutable live network state for the admission-control service.

The offline simulators rebuild occupancy from scratch per run; the serving
plane instead holds one long-lived :class:`NetworkState`: per-link
occupancies in a NumPy array with O(1) per-link admit/release, the
per-link alternate-admission thresholds of the compiled policy, and —
optionally — the same online protection-level adaptation loop as
:class:`repro.routing.adaptive.AdaptiveProtectionSimulator`: links count
the primary set-ups that fly past them, periodically fold the measured
rate into an EWMA demand estimate, and recompute their Equation-15
protection levels via :func:`repro.core.protection.min_protection_level`.

With adaptation off (the default) the thresholds are exactly the policy's
static ones, which is what makes a trace replay through the engine
bit-comparable to :class:`repro.sim.simulator.LossNetworkSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.protection import min_protection_levels
from ..routing.base import RoutingPolicy
from ..topology.graph import Network

__all__ = [
    "AdaptationConfig",
    "NetworkState",
    "PolicySwap",
    "ThresholdRefresh",
    "partition_links",
]


def partition_links(num_links: int, num_shards: int) -> tuple[tuple[int, ...], ...]:
    """Balanced contiguous partition of link ids across ``num_shards``.

    Contiguous blocks keep both directions of a duplex trunk (adjacent in
    every topology builder's link order) on one shard, which is what makes
    short paths single-shard and the cluster's one-hop fast path common.
    Shards may own zero links when ``num_shards > num_links``.
    """
    if num_links < 0:
        raise ValueError("num_links must be non-negative")
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    bounds = [num_links * s // num_shards for s in range(num_shards + 1)]
    return tuple(
        tuple(range(bounds[s], bounds[s + 1])) for s in range(num_shards)
    )

#: Disciplines the serving plane speaks: the paper's threshold family.
_SUPPORTED_DISCIPLINES = ("threshold", "length-threshold")


@dataclass(frozen=True)
class AdaptationConfig:
    """Online protection refresh: the adaptive simulator's knobs, served.

    Every ``update_interval`` units of request time, each link folds its
    observed primary set-up rate into an EWMA estimate with weight
    ``ewma_weight`` and recomputes its protection level for ``max_hops``.
    ``initial_loads`` seeds the estimates (``None`` = cold start: links
    begin unprotected and harden as they learn).
    """

    update_interval: float = 5.0
    ewma_weight: float = 0.3
    max_hops: int = 6
    initial_loads: tuple[float, ...] | None = None

    def __post_init__(self):
        if self.update_interval <= 0:
            raise ValueError("update_interval must be positive")
        if not 0 < self.ewma_weight <= 1:
            raise ValueError("ewma_weight must lie in (0, 1]")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")


@dataclass(frozen=True)
class ThresholdRefresh:
    """One adaptation step: when it fired and what the links adopted."""

    time: float
    estimated_loads: np.ndarray
    protection_levels: np.ndarray


@dataclass(frozen=True)
class PolicySwap:
    """One hot swap: the epoch it installed and how far thresholds moved."""

    time: float
    epoch: int
    max_delta: float


class NetworkState:
    """Occupancies + thresholds for one network under one compiled policy.

    ``occupancy`` is the authoritative per-link circuit count
    (``np.int64``); :meth:`admit` and :meth:`release` book and free one
    path in O(path length).  ``alt_thresholds`` is the mutable per-link
    alternate-admission bound (``C - r``); for the ``length-threshold``
    discipline :attr:`length_thresholds` carries one bound array per
    alternate hop count instead.

    The request engine's batch loop works on list snapshots of these
    arrays and writes them back per batch (:meth:`arrays` /
    :meth:`absorb`), so the NumPy views are always consistent *between*
    batches — which is when telemetry and adaptation read them.
    """

    def __init__(
        self,
        network: Network,
        policy: RoutingPolicy,
        adaptation: AdaptationConfig | None = None,
    ):
        if policy.discipline not in _SUPPORTED_DISCIPLINES:
            raise ValueError(
                f"serve supports disciplines {_SUPPORTED_DISCIPLINES}, got "
                f"{policy.discipline!r} (policy {policy.name!r})"
            )
        if policy.network.num_links != network.num_links:
            raise ValueError("policy was compiled for a different network")
        self.network = network
        self.policy = policy
        self.capacities = network.capacities().astype(np.int64)
        self.occupancy = np.zeros(network.num_links, dtype=np.int64)
        if policy.discipline == "threshold":
            if policy.alt_thresholds is None:
                raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
            self.alt_thresholds = np.asarray(
                policy.alt_thresholds, dtype=np.int64
            ).copy()
            self.length_thresholds: dict[int, np.ndarray] | None = None
        else:
            tables = getattr(policy, "length_thresholds", None)
            if tables is None:
                raise ValueError(f"policy {policy.name!r} lacks length thresholds")
            self.length_thresholds = {
                int(length): np.asarray(row, dtype=np.int64).copy()
                for length, row in tables.items()
            }
            # The engine still exposes a flat bound for telemetry; use the
            # laxest table (longest paths face the tightest thresholds).
            self.alt_thresholds = self.length_thresholds[
                min(self.length_thresholds)
            ].copy()
        self.adaptation = adaptation
        self.refreshes: list[ThresholdRefresh] = []
        #: Monotone policy version: 0 at construction, bumped by every
        #: :meth:`hot_swap`.  Decisions are attributable to the epoch in
        #: force when they were made; the cluster stamps it into every
        #: shard so in-flight reservations commit against one version.
        self.policy_epoch = 0
        self.swaps: list[PolicySwap] = []
        #: Recomputes fired by :meth:`maybe_refresh` (the initial level
        #: application in the constructor is not counted — it is seeding,
        #: not adaptation).  Telemetry exports this as a counter.
        self.recompute_count = 0
        #: max |Δ threshold| of the most recent level application — how far
        #: the links moved their admission bounds in one step.  0.0 means
        #: the last recompute confirmed the thresholds already in force;
        #: operators watch this settle back to 0 after a regime shift.
        self.last_refresh_delta = 0.0
        if adaptation is not None:
            if policy.discipline != "threshold":
                raise ValueError(
                    "online threshold adaptation requires the 'threshold' "
                    "discipline"
                )
            if adaptation.initial_loads is None:
                self._estimates = np.zeros(network.num_links, dtype=float)
            else:
                self._estimates = np.asarray(adaptation.initial_loads, dtype=float)
                if self._estimates.shape != (network.num_links,):
                    raise ValueError("initial_loads must be per-link")
            self.setup_counts = np.zeros(network.num_links, dtype=np.int64)
            self.next_refresh: float | None = adaptation.update_interval
            self._apply_levels(0.0)
        else:
            self.next_refresh = None

    # ------------------------------------------------------------- admission

    def admit(self, path: tuple[int, ...], width: int = 1) -> None:
        """Book ``width`` circuits on every link of ``path``."""
        for link in path:
            self.occupancy[link] += width

    def release(self, path: tuple[int, ...], width: int = 1) -> None:
        """Free ``width`` circuits on every link of ``path``."""
        for link in path:
            self.occupancy[link] -= width

    def utilization(self) -> float:
        """Network-wide occupied fraction of all circuits."""
        total = int(self.capacities.sum())
        return float(self.occupancy.sum()) / total if total else 0.0

    # ------------------------------------------------------------- sharding

    def shard_spec(self, shard_id: int, links: Sequence[int]) -> dict:
        """Self-contained state slice for one cluster shard worker.

        Everything a worker process needs to admit against its links —
        capacities, alternate thresholds, per-length threshold tables —
        as plain picklable lists keyed by *global* link id, so the worker
        never imports the policy or the network.
        """
        links = tuple(int(link) for link in links)
        return {
            "shard_id": int(shard_id),
            "epoch": int(self.policy_epoch),
            "links": links,
            "capacities": {l: int(self.capacities[l]) for l in links},
            "thresholds": {l: int(self.alt_thresholds[l]) for l in links},
            "tables": (
                None if self.length_thresholds is None
                else {
                    int(h): {l: int(row[l]) for l in links}
                    for h, row in self.length_thresholds.items()
                }
            ),
        }

    # -------------------------------------------------------------- hot swap

    def hot_swap(
        self,
        *,
        alt_thresholds: np.ndarray | Sequence[int] | None = None,
        length_thresholds: dict[int, np.ndarray] | None = None,
        now: float = 0.0,
    ) -> float:
        """Atomically install new alternate-admission thresholds.

        Exactly one of ``alt_thresholds`` (scalar ``threshold``
        discipline) or ``length_thresholds`` (per-hop-length tables,
        ``length-threshold`` discipline) must be given and must match the
        discipline this state was built with.  The swap bumps
        :attr:`policy_epoch`, records a :class:`PolicySwap`, and returns
        the max absolute per-link threshold move — in-flight occupancy is
        untouched, so decisions made after the swap see the new bounds
        against the same live circuits.
        """
        if (alt_thresholds is None) == (length_thresholds is None):
            raise ValueError(
                "pass exactly one of alt_thresholds or length_thresholds"
            )
        if alt_thresholds is not None:
            if self.length_thresholds is not None:
                raise ValueError(
                    "state uses the length-threshold discipline; swap via "
                    "length_thresholds"
                )
            incoming = np.asarray(alt_thresholds, dtype=np.int64)
            if incoming.shape != self.alt_thresholds.shape:
                raise ValueError("alt_thresholds must be per-link")
            if (incoming < 0).any() or (incoming > self.capacities).any():
                raise ValueError("thresholds must lie in [0, capacity]")
            max_delta = float(
                np.abs(incoming - self.alt_thresholds).max(initial=0)
            )
            self.alt_thresholds[:] = incoming
        else:
            if self.length_thresholds is None:
                raise ValueError(
                    "state uses the scalar threshold discipline; swap via "
                    "alt_thresholds"
                )
            unknown = set(length_thresholds) - set(self.length_thresholds)
            if unknown:
                raise ValueError(
                    f"unknown hop lengths in swap: {sorted(unknown)}"
                )
            max_delta = 0.0
            staged = {}
            for h, row in length_thresholds.items():
                incoming = np.asarray(row, dtype=np.int64)
                if incoming.shape != self.length_thresholds[h].shape:
                    raise ValueError("length threshold rows must be per-link")
                if (incoming < 0).any() or (incoming > self.capacities).any():
                    raise ValueError("thresholds must lie in [0, capacity]")
                staged[h] = incoming
                max_delta = max(
                    max_delta,
                    float(
                        np.abs(incoming - self.length_thresholds[h]).max(initial=0)
                    ),
                )
            for h, incoming in staged.items():
                self.length_thresholds[h][:] = incoming
            # Keep the flat telemetry mirror on the laxest table.
            self.alt_thresholds[:] = self.length_thresholds[
                min(self.length_thresholds)
            ]
        self.policy_epoch += 1
        self.last_refresh_delta = max_delta
        self.swaps.append(
            PolicySwap(time=now, epoch=self.policy_epoch, max_delta=max_delta)
        )
        return max_delta

    # ---------------------------------------------------- batch-loop bridge

    def arrays(self) -> tuple[list[int], list[int], dict[int, list[int]] | None]:
        """List snapshots of (occupancy, thresholds, length tables)."""
        tables = (
            None if self.length_thresholds is None
            else {h: row.tolist() for h, row in self.length_thresholds.items()}
        )
        return self.occupancy.tolist(), self.alt_thresholds.tolist(), tables

    def absorb(self, occupancy: list[int], setups: list[int] | None = None) -> None:
        """Write one batch's occupancy (and set-up counts) back."""
        self.occupancy[:] = occupancy
        if setups is not None and self.adaptation is not None:
            self.setup_counts += np.asarray(setups, dtype=np.int64)

    # ------------------------------------------------------------ adaptation

    def _apply_levels(self, now: float) -> None:
        capacities = self.capacities
        levels = min_protection_levels(
            self._estimates, capacities, self.adaptation.max_hops
        )
        previous = self.alt_thresholds.copy()
        self.alt_thresholds[:] = capacities - levels
        self.last_refresh_delta = float(
            np.abs(self.alt_thresholds - previous).max(initial=0)
        )
        self.refreshes.append(
            ThresholdRefresh(
                time=now,
                estimated_loads=self._estimates.copy(),
                protection_levels=levels,
            )
        )

    def maybe_refresh(self, now: float) -> bool:
        """Run every adaptation window boundary at or before ``now``.

        Returns True if any refresh fired (the engine then re-snapshots its
        threshold lists).  No-op when adaptation is off.
        """
        if self.next_refresh is None or now < self.next_refresh:
            return False
        config = self.adaptation
        while now >= self.next_refresh:
            measured = self.setup_counts / config.update_interval
            self._estimates = (
                (1.0 - config.ewma_weight) * self._estimates
                + config.ewma_weight * measured
            )
            self.setup_counts[:] = 0
            self._apply_levels(self.next_refresh)
            self.recompute_count += 1
            self.next_refresh += config.update_interval
        return True
