"""Self-protecting overload control for the admission service.

The paper's trunk-reservation idea — protect the traffic a resource was
engineered for by turning away opportunistic work while the resource is
stressed — applies to the serving plane itself.  Decision capacity is the
resource; primary-tier admission queries are the engineered traffic;
alternate-path exploration is the opportunistic tier.  Under load the
service degrades in the same order the network does:

* **normal** — full two-tier routing;
* **degraded** — the reserve is breached: queries are still answered but
  alternate-path exploration is disabled (primary-only routing), i.e.
  alternate-tier *queries* are shed first;
* **shed** — the bucket is empty or the queue is at its hard limit: the
  query is rejected outright with ``reason="shed"`` so the queue stays
  bounded, primaries being the last thing to go.

Rates are enforced by a token bucket over *request* time (the ``time``
field of the request stream, which a trace replay supplies from the trace
itself), so overload behaviour is deterministic for a seeded workload —
the same discipline the simulators use for every other source of
randomness.  When requests carry no timestamps the engine falls back to
the wall clock and the control becomes a live rate limiter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OverloadConfig", "TokenBucket", "OverloadControl", "MODES"]

#: Service modes, ordered by severity.
MODES = ("normal", "degraded", "shed")


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning of the service's self-protection.

    ``rate``
        Sustained admission queries per unit of request time the service
        will fully route.  ``float("inf")`` disables rate shedding.
    ``burst``
        Token-bucket depth: how far above ``rate`` a transient may go
        before degradation starts.
    ``alternate_reserve``
        Fraction of ``burst`` reserved for primary-only service — the
        serving-plane analogue of the paper's protection level ``r``.
        While the bucket holds fewer than ``alternate_reserve * burst``
        tokens, alternate-path exploration is disabled.
    ``queue_limit``
        Hard cap on queued-but-undecided requests; submissions beyond it
        are answered ``shed`` immediately instead of queueing.
    ``queue_reserve``
        Queue headroom at which degradation starts: alternate exploration
        stops once the queue depth reaches ``queue_limit - queue_reserve``.
    """

    rate: float = float("inf")
    burst: float = 256.0
    alternate_reserve: float = 0.25
    queue_limit: int = 4096
    queue_reserve: int = 1024

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive (inf disables shedding)")
        if self.burst < 1:
            raise ValueError("burst must be at least one token")
        if not 0.0 <= self.alternate_reserve < 1.0:
            raise ValueError("alternate_reserve must lie in [0, 1)")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if not 0 <= self.queue_reserve < self.queue_limit:
            raise ValueError("queue_reserve must lie in [0, queue_limit)")


class TokenBucket:
    """A deterministic token bucket over caller-supplied time.

    ``refill`` folds elapsed time into the balance; ``consume`` spends one
    token.  Callers decide *whether* to spend based on the balance — the
    reserve logic lives in :class:`OverloadControl`.
    """

    __slots__ = ("rate", "burst", "tokens", "last_time")

    def __init__(self, rate: float, burst: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_time: float | None = None

    def refill(self, now: float) -> float:
        """Advance to ``now`` (monotone per bucket) and return the balance."""
        last = self.last_time
        if last is None or now <= last:
            self.last_time = now if last is None else max(last, now)
            return self.tokens
        self.tokens = min(self.burst, self.tokens + (now - last) * self.rate)
        self.last_time = now
        return self.tokens

    def consume(self, amount: float = 1.0) -> None:
        self.tokens -= amount


@dataclass
class OverloadControl:
    """Mode classification for one admission query at a time.

    :meth:`classify` refills the bucket to the request's time, picks the
    mode, and consumes a token for every query that will actually be
    routed (``normal`` and ``degraded``); shed queries cost nothing, which
    is what lets the service recover while still answering.  Mode
    transitions are recorded in :attr:`transitions` so tests and telemetry
    can see the degrade -> shed -> recover trajectory explicitly.
    """

    config: OverloadConfig = field(default_factory=OverloadConfig)
    bucket: TokenBucket = field(init=False)
    mode: str = field(init=False, default="normal")
    transitions: list[tuple[float, str]] = field(init=False, default_factory=list)
    shed_total: int = field(init=False, default=0)
    degraded_total: int = field(init=False, default=0)

    def __post_init__(self):
        self.bucket = TokenBucket(self.config.rate, self.config.burst)

    @property
    def reserve_tokens(self) -> float:
        return self.config.alternate_reserve * self.config.burst

    def classify(self, now: float, queue_depth: int = 0) -> str:
        """Mode for one query arriving at ``now`` with the queue this deep."""
        config = self.config
        if queue_depth >= config.queue_limit:
            return self._enter(now, "shed")
        tokens = (
            self.bucket.refill(now) if config.rate != float("inf")
            else float("inf")
        )
        if tokens < 1.0:
            return self._enter(now, "shed")
        mode = "normal"
        if (
            tokens < 1.0 + self.reserve_tokens
            or queue_depth >= config.queue_limit - config.queue_reserve
        ):
            mode = "degraded"
        if config.rate != float("inf"):
            self.bucket.consume()
        return self._enter(now, mode)

    def _enter(self, now: float, mode: str) -> str:
        if mode == "shed":
            self.shed_total += 1
        elif mode == "degraded":
            self.degraded_total += 1
        if mode != self.mode:
            self.mode = mode
            self.transitions.append((now, mode))
        return mode
