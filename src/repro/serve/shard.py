"""One cluster shard: the worker process owning a slice of link state.

A shard worker holds the authoritative occupancy for its partition of the
network's links (see :func:`repro.serve.state.partition_links`) plus the
compiled admission bounds for those links, and answers the router's
commands over a :class:`multiprocessing.connection.Connection`:

* ``reserve``  — phase 1 of the cross-shard two-phase set-up: check every
  listed link against its bound and, on success, book the circuits under
  a reservation hold-timer; refuse (booking nothing) otherwise;
* ``commit``   — phase 2: the reservation becomes permanent occupancy.  A
  commit arriving after the hold-timer already reaped the reservation
  re-books the circuits (the router's journal is authoritative once it
  answered the client), counted as an ``expired_commit``;
* ``abort``    — phase 2 on crankback: release the reservation;
* ``rescommit`` — the single-shard fast path: check + book permanently in
  one hop, no reservation state, no second phase;
* ``release``  — teardown of an established call's circuits;
* ``sync``     — crash recovery: overwrite occupancy from the router's
  journal replay and drop all pending reservations;
* ``swap``     — hot policy swap: replace this shard's admission bounds
  (scalar thresholds and/or per-length tables) and stamp the new policy
  epoch, leaving occupancy and reservations untouched;
* ``snapshot`` / ``ping`` — observability and liveness.

The worker is deliberately single-threaded and blocking: commands within
a connection apply in exactly the order the router sent them, which is
the per-shard serialization the cluster's consistency argument rests on.
Reservation hold-timers run on the worker's own monotonic clock and are
checked every loop tick, so an orphaned reservation (lost commit, dead
router) is reaped even while the connection is silent.

Retried commands are idempotent by reservation id: a ``reserve`` whose
reply was lost returns its cached verdict instead of double-booking.

Results are deliberately tiny — admission checks answer ``1`` (booked)
or ``0`` (refused), phase-2 and teardown ops answer ``1`` — because the
router matches replies to commands positionally and every byte of every
reply crosses a process boundary on the admission hot path.

Chaos (:mod:`repro.serve.chaos`) enters here as the worker's own plan: a
deterministic self-crash after N commands (``os._exit``, no cleanup — a
real SIGKILL leaves exactly this state behind) and a per-command sleep
modelling a slow shard.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from multiprocessing.connection import Connection

__all__ = ["ShardWorker", "shard_worker_main"]

#: Bound on remembered per-reservation results (idempotency window).
_RECENT_LIMIT = 8192

#: Primary-tier marker in a reserve/rescommit command's ``kind`` field;
#: non-negative kinds are alternate attempts carrying the path length.
PRIMARY_KIND = -1


class ShardWorker:
    """Link-slice state machine; see the module docstring for the ops."""

    def __init__(self, spec: dict, clock=time.monotonic):
        self.shard_id = int(spec["shard_id"])
        self.links = tuple(spec["links"])
        self.capacities = dict(spec["capacities"])
        self.thresholds = dict(spec["thresholds"])
        self.policy_epoch = int(spec.get("epoch", 0))
        tables = spec.get("tables")
        self.tables = None if tables is None else {
            int(h): dict(row) for h, row in tables.items()
        }
        hold = spec.get("hold_timer")
        self.hold_timer = None if hold is None else float(hold)
        self.clock = clock
        plan = spec.get("chaos") or {}
        self.kill_after_ops = plan.get("kill_after_ops")
        self.slow_seconds = float(plan.get("slow_seconds") or 0.0)
        self.occupancy = {link: 0 for link in self.links}
        #: Phase-1 reservations: rid -> (links, width, expiry deadline).
        self.pending: dict[str, tuple[tuple[int, ...], int, float]] = {}
        #: Cached verdicts for idempotent retries, rid -> result.
        self.recent: OrderedDict[str, int] = OrderedDict()
        #: Reservations the hold-timer reaped, with their circuits kept
        #: around so a late commit can re-book them.
        self.expired: OrderedDict[str, tuple[tuple[int, ...], int]] = OrderedDict()
        self.ops = 0
        self.tallies = {
            "shard_reserves": 0,
            "shard_refusals": 0,
            "shard_commits": 0,
            "shard_aborts": 0,
            "shard_releases": 0,
            "shard_hold_expirations": 0,
            "shard_expired_commits": 0,
            "shard_swaps": 0,
        }

    # -------------------------------------------------------------- helpers

    def _bound(self, link: int, kind: int) -> int:
        if kind == PRIMARY_KIND:
            return self.capacities[link]
        if self.tables is not None:
            return self.tables[kind][link]
        return self.thresholds[link]

    def _remember(self, rid: str, result: int) -> int:
        self.recent[rid] = result
        if len(self.recent) > _RECENT_LIMIT:
            self.recent.popitem(last=False)
        return result

    def expire_holds(self) -> None:
        """Reap reservations whose hold-timer deadline has passed."""
        if not self.pending:
            return
        now = self.clock()
        reaped = [rid for rid, (__, ___, due) in self.pending.items()
                  if due <= now]
        for rid in reaped:
            links, width, __ = self.pending.pop(rid)
            for link in links:
                self.occupancy[link] -= width
            self.expired[rid] = (links, width)
            if len(self.expired) > _RECENT_LIMIT:
                self.expired.popitem(last=False)
            self.tallies["shard_hold_expirations"] += 1

    # ------------------------------------------------------------- commands

    def handle(self, command: tuple):
        """Apply one command; returns its result (an int on the hot ops)."""
        if self.slow_seconds:
            time.sleep(self.slow_seconds)
        if self.kill_after_ops is not None and self.ops >= self.kill_after_ops:
            os._exit(17)  # deterministic chaos crash: no cleanup, no flush
        self.ops += 1
        op = command[0]
        if op == "reserve":
            __, rid, links, width, kind = command
            cached = self.recent.get(rid)
            if cached is not None:
                return cached
            for link in links:
                if self.occupancy[link] + width > self._bound(link, kind):
                    self.tallies["shard_refusals"] += 1
                    return self._remember(rid, 0)
            for link in links:
                self.occupancy[link] += width
            due = (
                float("inf") if self.hold_timer is None
                else self.clock() + self.hold_timer
            )
            self.pending[rid] = (tuple(links), width, due)
            self.tallies["shard_reserves"] += 1
            return self._remember(rid, 1)
        if op == "rescommit":
            __, rid, links, width, kind = command
            cached = self.recent.get(rid)
            if cached is not None:
                return cached
            for link in links:
                if self.occupancy[link] + width > self._bound(link, kind):
                    self.tallies["shard_refusals"] += 1
                    return self._remember(rid, 0)
            for link in links:
                self.occupancy[link] += width
            self.tallies["shard_commits"] += 1
            return self._remember(rid, 1)
        if op == "commit":
            __, rid = command
            if rid in self.pending:
                self.pending.pop(rid)
            elif rid in self.expired:
                # The hold-timer beat the commit; the router has already
                # answered the client, so the journal wins: re-book.
                links, width = self.expired.pop(rid)
                for link in links:
                    self.occupancy[link] += width
                self.tallies["shard_expired_commits"] += 1
            self.tallies["shard_commits"] += 1
            return 1
        if op == "abort":
            __, rid = command
            entry = self.pending.pop(rid, None)
            if entry is not None:
                links, width, __ = entry
                for link in links:
                    self.occupancy[link] -= width
            self.expired.pop(rid, None)
            self.tallies["shard_aborts"] += 1
            return 1
        if op == "release":
            __, rid, links, width = command
            cached = self.recent.get(rid)
            if cached is not None:
                return cached  # a retried release must not double-free
            for link in links:
                self.occupancy[link] -= width
            self.tallies["shard_releases"] += 1
            return self._remember(rid, 1)
        if op == "swap":
            # Hot policy swap: install new admission bounds for this
            # shard's links, atomically between commands.  Reservations
            # already booked keep their circuits — only future admission
            # tests see the new bounds — and the epoch stamp makes every
            # later snapshot attributable to the version in force.
            __, epoch, thresholds, tables = command
            self.thresholds = {int(l): int(t) for l, t in thresholds.items()}
            self.tables = None if tables is None else {
                int(h): {int(l): int(t) for l, t in row.items()}
                for h, row in tables.items()
            }
            self.policy_epoch = int(epoch)
            self.tallies["shard_swaps"] += 1
            return 1
        if op == "sync":
            __, occupancy = command
            self.occupancy = {link: 0 for link in self.links}
            self.occupancy.update({int(l): int(n) for l, n in occupancy.items()})
            self.pending.clear()
            self.recent.clear()
            self.expired.clear()
            return 1
        if op == "snapshot":
            return {
                "shard_id": self.shard_id,
                "epoch": self.policy_epoch,
                "occupancy": dict(self.occupancy),
                "pending": len(self.pending),
                "ops": self.ops,
                "tallies": dict(self.tallies),
            }
        if op == "ping":
            return ("pong", self.shard_id, self.ops)
        raise ValueError(f"shard {self.shard_id}: unknown op {op!r}")

    # ----------------------------------------------------------- the server

    def serve(self, conn: Connection, tick: float = 0.05) -> None:
        """Answer command frames until EOF or an explicit ``stop``."""
        while True:
            try:
                if not conn.poll(tick):
                    self.expire_holds()
                    continue
                frame = conn.recv()
            except (EOFError, OSError):
                return
            self.expire_holds()
            kind, seq, commands = frame
            if kind == "stop":
                return
            results = [self.handle(command) for command in commands]
            try:
                conn.send(("reply", seq, results))
            except (BrokenPipeError, OSError):
                return


def shard_worker_main(conn: Connection, spec: dict) -> None:
    """Process entry point: build the worker and serve until EOF."""
    ShardWorker(spec).serve(conn, tick=float(spec.get("tick", 0.05)))
