"""Shard process lifecycle: spawn, watch, restart.

:class:`ShardSupervisor` owns one OS process plus one duplex pipe per
shard of the admission cluster.  It is deliberately dumb about protocol —
it never parses frames — and authoritative about lifecycle:

* :meth:`start` forks every worker with its picklable spec (state slice,
  hold-timer, chaos plan);
* :meth:`restart` replaces one worker after a crash or a heartbeat
  verdict: tear down the old pipe and process, fork a fresh worker on a
  fresh pipe, and hand the new connection back so the router can
  re-register it and resync shard state from its journal.  One-shot chaos
  (``kill_after_ops``) is stripped from the respawned worker's plan — the
  fault already fired; the replacement runs clean;
* :meth:`stop_all` tears the whole fleet down, escalating from close to
  ``terminate`` to ``kill`` so a wedged worker cannot hang shutdown.

Liveness has two signals, split across layers: the supervisor answers
"is the *process* alive" (:meth:`is_alive`, via the OS); the router's
heartbeat loop answers "is the *worker* responsive" (ping round-trips),
because a live process with a wedged loop must be restarted too.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.connection import Connection

from .shard import shard_worker_main

__all__ = ["ShardSupervisor"]


def _worker_entry(conn: Connection, spec: dict, unwanted: list) -> None:
    """Child entry point: drop inherited router-side pipes, then serve."""
    for other in unwanted:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass
    shard_worker_main(conn, spec)


class ShardSupervisor:
    """Per-shard process + pipe registry with restart accounting."""

    def __init__(self, specs: dict[int, dict], mp_context=None):
        if not specs:
            raise ValueError("a cluster needs at least one shard spec")
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                mp_context = multiprocessing.get_context()
        self._ctx = mp_context
        self.specs = {int(sid): dict(spec) for sid, spec in specs.items()}
        self.conns: dict[int, Connection] = {}
        self.procs: dict[int, multiprocessing.Process] = {}
        self.restarts: dict[int, int] = {sid: 0 for sid in self.specs}

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.specs))

    def _spawn(self, shard_id: int) -> Connection:
        router_end, worker_end = self._ctx.Pipe(duplex=True)
        # A forked child inherits every router-side pipe open at fork time
        # (its own included).  It must close those copies, or the router
        # closing a pipe never reaches EOF at the worker it belongs to.
        unwanted = list(self.conns.values()) + [router_end]
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(worker_end, self.specs[shard_id], unwanted),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        proc.start()
        worker_end.close()  # the child holds its copy; drop the parent's
        self.conns[shard_id] = router_end
        self.procs[shard_id] = proc
        return router_end

    def start(self) -> dict[int, Connection]:
        """Fork every shard worker; returns shard id -> router-side pipe."""
        for shard_id in self.shard_ids:
            if shard_id not in self.procs:
                self._spawn(shard_id)
        return dict(self.conns)

    def is_alive(self, shard_id: int) -> bool:
        proc = self.procs.get(shard_id)
        return proc is not None and proc.is_alive()

    def exit_code(self, shard_id: int) -> int | None:
        proc = self.procs.get(shard_id)
        return None if proc is None else proc.exitcode

    def restart(self, shard_id: int) -> Connection:
        """Replace one worker; returns the fresh router-side connection.

        The caller (the router) must re-register the connection with its
        event loop and resync the worker's occupancy from the journal —
        the respawned worker starts empty.
        """
        self._teardown(shard_id)
        self.restarts[shard_id] += 1
        spec = self.specs[shard_id]
        chaos = spec.get("chaos")
        if chaos and chaos.get("kill_after_ops") is not None:
            spec["chaos"] = dict(chaos, kill_after_ops=None)
        return self._spawn(shard_id)

    def _teardown(self, shard_id: int, grace: float = 0.5) -> None:
        conn = self.conns.pop(shard_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        proc = self.procs.pop(shard_id, None)
        if proc is None:
            return
        proc.join(timeout=grace)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=grace)
        if proc.is_alive():  # pragma: no cover - SIGTERM-immune worker
            proc.kill()
            proc.join(timeout=grace)

    def stop_all(self) -> None:
        """Tear down every worker (close -> terminate -> kill)."""
        for shard_id in list(self.procs):
            self._teardown(shard_id)
