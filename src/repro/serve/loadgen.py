"""Trace replay against the serving plane — the equivalence oracle.

:func:`trace_requests` flattens an :class:`~repro.sim.trace.ArrivalTrace`
into the exact request order the offline simulator processes it in: before
each arrival, a release for every earlier call whose departure time is at
or before the arrival (the simulator's "departures first" rule), then the
admission query itself, carrying the call's timestamp and uniform variate.
Releases are issued for *every* call, admitted or not — releasing a call
the engine never held is an occupancy no-op (answered ``unknown-call``),
precisely as the simulator skips the empty slots of blocked calls.  That
makes the request stream a pure function of the trace, independent of the
decisions, so the identical stream drives serial, batched, and socket
replays.

:func:`aggregate_decisions` folds a decision list back into a
:class:`~repro.sim.metrics.SimulationResult` with the simulator's exact
measurement rules (warm-up truncation, per-pair offered/blocked, carried
splits by tier), and :func:`replay_trace` /
:func:`replay_trace_socket` run the full loop: with overload control and
adaptation off, the report's ``result`` must equal
``simulate(network, policy, trace, warmup)`` field for field —
``tests/test_serve.py`` asserts it.

``speedup`` paces the replay against the wall clock (``speedup=50`` plays
one unit of trace time per 20 ms of wall time); ``None`` replays flat out.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import time
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..sim.metrics import SimulationResult
from ..sim.trace import ArrivalTrace
from .engine import AdmitRequest, Decision, ReleaseRequest, RequestEngine

__all__ = [
    "ReplayReport",
    "trace_requests",
    "aggregate_decisions",
    "replay_trace",
    "replay_trace_socket",
    "measure_throughput",
    "measure_overload",
]


@dataclass(frozen=True)
class ReplayReport:
    """One replay: the raw decisions, their aggregate, and the rate."""

    decisions: tuple[Decision, ...]
    result: SimulationResult
    wall_seconds: float
    requests: int

    @property
    def decisions_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.requests / self.wall_seconds


def trace_requests(
    trace: ArrivalTrace,
) -> list[AdmitRequest | ReleaseRequest]:
    """The trace as an ordered request stream (simulator event order).

    Request ids are call indices; releases carry the departure timestamp.
    """
    times = trace.times.tolist()
    holding = trace.holding_times.tolist()
    od_index = trace.od_index.tolist()
    uniforms = trace.uniforms.tolist()
    od_pairs = trace.od_pairs
    bandwidths = (
        trace.bandwidths.tolist() if trace.bandwidths is not None else None
    )
    requests: list[AdmitRequest | ReleaseRequest] = []
    departures: list[tuple[float, int]] = []
    for call, now in enumerate(times):
        while departures and departures[0][0] <= now:
            dep_time, dep_call = heapq.heappop(departures)
            requests.append(ReleaseRequest(id=dep_call, time=dep_time))
        requests.append(
            AdmitRequest(
                id=call,
                od=od_pairs[od_index[call]],
                uniform=uniforms[call],
                time=now,
                width=1 if bandwidths is None else bandwidths[call],
            )
        )
        heapq.heappush(departures, (now + holding[call], call))
    return requests


def aggregate_decisions(
    trace: ArrivalTrace,
    decisions: Sequence[Decision],
    warmup: float = 10.0,
) -> SimulationResult:
    """Fold replay decisions into the simulator's result shape.

    Only admission answers count; release answers (tier ``"release"``) are
    bookkeeping.  A call is measured iff it arrived at or after ``warmup``,
    and a measured unadmitted call is blocked whatever the reason
    (``blocked``, ``no-route``, ``shed``, ``degraded`` all lose the call).
    """
    num_pairs = len(trace.od_pairs)
    times = trace.times
    offered = [0] * num_pairs
    blocked = [0] * num_pairs
    od_index = trace.od_index.tolist()
    primary_carried = 0
    alternate_carried = 0
    for decision in decisions:
        if decision.tier == "release":
            continue
        call = decision.id
        if times[call] < warmup:
            continue
        pair = od_index[call]
        offered[pair] += 1
        if not decision.admitted:
            blocked[pair] += 1
        elif decision.tier == "alternate":
            alternate_carried += 1
        else:
            primary_carried += 1
    num_classes = len(trace.class_names)
    return SimulationResult(
        od_pairs=trace.od_pairs,
        offered=np.asarray(offered, dtype=np.int64),
        blocked=np.asarray(blocked, dtype=np.int64),
        primary_carried=primary_carried,
        alternate_carried=alternate_carried,
        warmup=float(warmup),
        duration=trace.duration,
        seed=trace.seed,
        class_names=trace.class_names,
        class_offered=np.zeros(num_classes, dtype=np.int64),
        class_blocked=np.zeros(num_classes, dtype=np.int64),
        dropped=None,
    )


def _batches(
    requests: Sequence[AdmitRequest | ReleaseRequest], size: int
) -> Iterator[Sequence[AdmitRequest | ReleaseRequest]]:
    for start in range(0, len(requests), size):
        yield requests[start : start + size]


def replay_trace(
    engine: RequestEngine,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    batch_size: int | None = None,
    speedup: float | None = None,
) -> ReplayReport:
    """Replay the trace through the in-process engine.

    ``batch_size=1`` decides serially (one :meth:`RequestEngine.decide`
    call per request — the per-request-overhead baseline); ``None`` uses
    the engine's ``batch.max_batch``.  Decisions are identical for every
    batch size.  ``speedup`` paces request *admission times* against the
    wall clock; ``None`` replays as fast as possible.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be positive")
    requests = trace_requests(trace)
    size = engine.batch.max_batch if batch_size is None else batch_size
    decisions: list[Decision] = []
    start = time.perf_counter()
    if speedup is not None:
        origin = time.perf_counter()
        for request in requests:
            if request.time is not None:
                due = origin + request.time / speedup
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            decisions.append(engine.decide(request))
    elif size == 1:
        for request in requests:
            decisions.append(engine.decide(request))
    else:
        for chunk in _batches(requests, size):
            decisions.extend(engine.decide_batch(chunk))
    elapsed = time.perf_counter() - start
    return ReplayReport(
        decisions=tuple(decisions),
        result=aggregate_decisions(trace, decisions, warmup),
        wall_seconds=elapsed,
        requests=len(requests),
    )


def _encode(request: AdmitRequest | ReleaseRequest) -> bytes:
    if isinstance(request, AdmitRequest):
        message = {
            "op": "admit",
            "id": request.id,
            "od": list(request.od),
            "u": request.uniform,
            "t": request.time,
            "w": request.width,
        }
    else:
        message = {"op": "release", "id": request.id, "t": request.time}
    return json.dumps(message).encode() + b"\n"


def _decode(line: bytes) -> Decision:
    answer = json.loads(line)
    if "error" in answer:
        raise RuntimeError(f"server rejected request: {answer['error']}")
    return Decision(
        id=answer["id"],
        admitted=answer["admitted"],
        route=None if answer["route"] is None else tuple(answer["route"]),
        tier=answer["tier"],
        reason=answer["reason"],
    )


async def replay_trace_socket(
    host: str,
    port: int,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    speedup: float | None = None,
) -> ReplayReport:
    """Replay the trace through a running :class:`ServeServer` socket.

    Requests are pipelined (the writer streams ahead while the reader
    collects answers), so the server's micro-batcher sees real queues.
    The decision list is position-matched to the request stream.
    """
    requests = trace_requests(trace)
    reader, writer = await asyncio.open_connection(host, port)
    decisions: list[Decision] = []
    start = time.perf_counter()

    async def send() -> None:
        if speedup is None:
            for request in requests:
                writer.write(_encode(request))
            await writer.drain()
        else:
            origin = time.perf_counter()
            for request in requests:
                if request.time is not None:
                    delay = origin + request.time / speedup - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                writer.write(_encode(request))
                await writer.drain()

    async def receive() -> None:
        for __ in range(len(requests)):
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed mid-replay")
            decisions.append(_decode(line))

    try:
        await asyncio.gather(send(), receive())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    elapsed = time.perf_counter() - start
    return ReplayReport(
        decisions=tuple(decisions),
        result=aggregate_decisions(trace, decisions, warmup),
        wall_seconds=elapsed,
        requests=len(requests),
    )


def measure_throughput(
    network,
    policy,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    batch_size: int | None = None,
    rounds: int = 3,
) -> dict:
    """Serial vs batched decision throughput on the identical request stream.

    Interleaved best-of-``rounds`` timing (alternating the two variants per
    round cancels CPU frequency drift); the two decision lists must be
    identical — batching may only amortize overhead, never change answers.
    Returns a JSON-ready dict with both rates and the speedup.
    """
    from .engine import BatchConfig

    requests = trace_requests(trace)
    batch = BatchConfig() if batch_size is None else BatchConfig(max_batch=batch_size)

    def serial() -> tuple[list[Decision], float]:
        engine = RequestEngine(network, policy)
        start = time.perf_counter()
        decisions = [engine.decide(request) for request in requests]
        return decisions, time.perf_counter() - start

    def batched() -> tuple[list[Decision], float]:
        engine = RequestEngine(network, policy, batch=batch)
        decisions: list[Decision] = []
        start = time.perf_counter()
        for chunk in _batches(requests, batch.max_batch):
            decisions.extend(engine.decide_batch(chunk))
        return decisions, time.perf_counter() - start

    best_serial = best_batched = float("inf")
    serial_decisions = batched_decisions = None
    for __ in range(rounds):
        serial_decisions, elapsed = serial()
        best_serial = min(best_serial, elapsed)
        batched_decisions, elapsed = batched()
        best_batched = min(best_batched, elapsed)
    if serial_decisions != batched_decisions:
        raise AssertionError("batched replay changed decisions vs serial")
    count = len(requests)
    return {
        "requests": count,
        "calls": len(trace.times),
        "batch_size": batch.max_batch,
        "serial_seconds": best_serial,
        "batched_seconds": best_batched,
        "serial_decisions_per_sec": count / best_serial,
        "batched_decisions_per_sec": count / best_batched,
        "speedup": best_serial / best_batched,
        "network_blocking": aggregate_decisions(
            trace, batched_decisions, warmup
        ).network_blocking,
    }


def measure_overload(
    network,
    policy,
    trace: ArrivalTrace,
    overload_factor: float = 2.0,
    warmup: float = 10.0,
) -> dict:
    """Replay under a token rate set ``overload_factor`` below the offered
    request rate, and report how the service protected itself.

    The token bucket runs on request (virtual) time, so the overload
    trajectory is deterministic for a fixed trace.  Returns shed/degraded
    fractions, the recorded mode transitions, and the decision-latency
    p99 from the engine's own histogram — the number that must stay
    bounded while the queue does.
    """
    from .shed import OverloadConfig, OverloadControl

    if overload_factor <= 0:
        raise ValueError("overload_factor must be positive")
    requests = trace_requests(trace)
    admits = len(trace.times)
    offered_rate = admits / trace.duration
    control = OverloadControl(
        OverloadConfig(rate=offered_rate / overload_factor, burst=64.0)
    )
    engine = RequestEngine(network, policy, overload=control)
    report = replay_trace(engine, trace, warmup=warmup)
    latency = engine.telemetry.histogram("serve_decision_seconds")
    answered = sum(1 for d in report.decisions if d.tier != "release")
    shed = sum(1 for d in report.decisions if d.reason == "shed")
    degraded = sum(1 for d in report.decisions if d.reason == "degraded")
    return {
        "requests": len(requests),
        "offered_rate": offered_rate,
        "token_rate": offered_rate / overload_factor,
        "overload_factor": overload_factor,
        "answered": answered,
        "shed": shed,
        "shed_fraction": shed / answered if answered else 0.0,
        "degraded_rejections": degraded,
        "mode_transitions": len(control.transitions),
        "final_mode": control.mode,
        "decision_p99_seconds": latency.quantile(0.99),
        "decision_mean_seconds": latency.mean,
        "wall_seconds": report.wall_seconds,
        "decisions_per_second": report.decisions_per_second,
    }
