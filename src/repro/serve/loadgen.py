"""Trace replay against the serving plane — the equivalence oracle.

:func:`trace_requests` flattens an :class:`~repro.sim.trace.ArrivalTrace`
into the exact request order the offline simulator processes it in: before
each arrival, a release for every earlier call whose departure time is at
or before the arrival (the simulator's "departures first" rule), then the
admission query itself, carrying the call's timestamp and uniform variate.
Releases are issued for *every* call, admitted or not — releasing a call
the engine never held is an occupancy no-op (answered ``unknown-call``),
precisely as the simulator skips the empty slots of blocked calls.  That
makes the request stream a pure function of the trace, independent of the
decisions, so the identical stream drives serial, batched, and socket
replays.

:func:`aggregate_decisions` folds a decision list back into a
:class:`~repro.sim.metrics.SimulationResult` with the simulator's exact
measurement rules (warm-up truncation, per-pair offered/blocked, carried
splits by tier), and :func:`replay_trace` /
:func:`replay_trace_socket` run the full loop: with overload control and
adaptation off, the report's ``result`` must equal
``simulate(network, policy, trace, warmup)`` field for field —
``tests/test_serve.py`` asserts it.

``speedup`` paces the replay against the wall clock (``speedup=50`` plays
one unit of trace time per 20 ms of wall time); ``None`` replays flat out.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import time
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..sim.metrics import SimulationResult
from ..sim.trace import ArrivalTrace
from .engine import AdmitRequest, Decision, ReleaseRequest, RequestEngine

__all__ = [
    "ReplayReport",
    "trace_requests",
    "aggregate_decisions",
    "replay_trace",
    "replay_trace_cluster",
    "replay_trace_socket",
    "measure_throughput",
    "measure_overload",
    "measure_regime_shift",
    "measure_surge_with_shard_kill",
    "measure_cluster_throughput",
    "partition_requests",
]


@dataclass(frozen=True)
class ReplayReport:
    """One replay: the raw decisions, their aggregate, and the rate."""

    decisions: tuple[Decision, ...]
    result: SimulationResult
    wall_seconds: float
    requests: int

    @property
    def decisions_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.requests / self.wall_seconds


def trace_requests(
    trace: ArrivalTrace,
) -> list[AdmitRequest | ReleaseRequest]:
    """The trace as an ordered request stream (simulator event order).

    Request ids are call indices; releases carry the departure timestamp.
    """
    times = trace.times.tolist()
    holding = trace.holding_times.tolist()
    od_index = trace.od_index.tolist()
    uniforms = trace.uniforms.tolist()
    od_pairs = trace.od_pairs
    bandwidths = (
        trace.bandwidths.tolist() if trace.bandwidths is not None else None
    )
    requests: list[AdmitRequest | ReleaseRequest] = []
    departures: list[tuple[float, int]] = []
    for call, now in enumerate(times):
        while departures and departures[0][0] <= now:
            dep_time, dep_call = heapq.heappop(departures)
            requests.append(ReleaseRequest(id=dep_call, time=dep_time))
        requests.append(
            AdmitRequest(
                id=call,
                od=od_pairs[od_index[call]],
                uniform=uniforms[call],
                time=now,
                width=1 if bandwidths is None else bandwidths[call],
            )
        )
        heapq.heappush(departures, (now + holding[call], call))
    return requests


def aggregate_decisions(
    trace: ArrivalTrace,
    decisions: Sequence[Decision],
    warmup: float = 10.0,
) -> SimulationResult:
    """Fold replay decisions into the simulator's result shape.

    Only admission answers count; release answers (tier ``"release"``) are
    bookkeeping.  A call is measured iff it arrived at or after ``warmup``,
    and a measured unadmitted call is blocked whatever the reason
    (``blocked``, ``no-route``, ``shed``, ``degraded`` all lose the call).
    """
    num_pairs = len(trace.od_pairs)
    times = trace.times
    offered = [0] * num_pairs
    blocked = [0] * num_pairs
    od_index = trace.od_index.tolist()
    primary_carried = 0
    alternate_carried = 0
    for decision in decisions:
        if decision.tier == "release":
            continue
        call = decision.id
        if times[call] < warmup:
            continue
        pair = od_index[call]
        offered[pair] += 1
        if not decision.admitted:
            blocked[pair] += 1
        elif decision.tier == "alternate":
            alternate_carried += 1
        else:
            primary_carried += 1
    num_classes = len(trace.class_names)
    return SimulationResult(
        od_pairs=trace.od_pairs,
        offered=np.asarray(offered, dtype=np.int64),
        blocked=np.asarray(blocked, dtype=np.int64),
        primary_carried=primary_carried,
        alternate_carried=alternate_carried,
        warmup=float(warmup),
        duration=trace.duration,
        seed=trace.seed,
        class_names=trace.class_names,
        class_offered=np.zeros(num_classes, dtype=np.int64),
        class_blocked=np.zeros(num_classes, dtype=np.int64),
        dropped=None,
    )


def _batches(
    requests: Sequence[AdmitRequest | ReleaseRequest], size: int
) -> Iterator[Sequence[AdmitRequest | ReleaseRequest]]:
    for start in range(0, len(requests), size):
        yield requests[start : start + size]


def replay_trace(
    engine: RequestEngine,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    batch_size: int | None = None,
    speedup: float | None = None,
) -> ReplayReport:
    """Replay the trace through the in-process engine.

    ``batch_size=1`` decides serially (one :meth:`RequestEngine.decide`
    call per request — the per-request-overhead baseline); ``None`` uses
    the engine's ``batch.max_batch``.  Decisions are identical for every
    batch size.  ``speedup`` paces request *admission times* against the
    wall clock; ``None`` replays as fast as possible.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be positive")
    requests = trace_requests(trace)
    size = engine.batch.max_batch if batch_size is None else batch_size
    decisions: list[Decision] = []
    start = time.perf_counter()
    if speedup is not None:
        origin = time.perf_counter()
        for request in requests:
            if request.time is not None:
                due = origin + request.time / speedup
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            decisions.append(engine.decide(request))
    elif size == 1:
        for request in requests:
            decisions.append(engine.decide(request))
    else:
        for chunk in _batches(requests, size):
            decisions.extend(engine.decide_batch(chunk))
    elapsed = time.perf_counter() - start
    return ReplayReport(
        decisions=tuple(decisions),
        result=aggregate_decisions(trace, decisions, warmup),
        wall_seconds=elapsed,
        requests=len(requests),
    )


def _encode(request: AdmitRequest | ReleaseRequest) -> bytes:
    if isinstance(request, AdmitRequest):
        message = {
            "op": "admit",
            "id": request.id,
            "od": list(request.od),
            "u": request.uniform,
            "t": request.time,
            "w": request.width,
        }
    else:
        message = {"op": "release", "id": request.id, "t": request.time}
    return json.dumps(message).encode() + b"\n"


def _decode(line: bytes) -> Decision:
    answer = json.loads(line)
    if "error" in answer:
        raise RuntimeError(f"server rejected request: {answer['error']}")
    return Decision(
        id=answer["id"],
        admitted=answer["admitted"],
        route=None if answer["route"] is None else tuple(answer["route"]),
        tier=answer["tier"],
        reason=answer["reason"],
    )


async def replay_trace_socket(
    host: str,
    port: int,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    speedup: float | None = None,
) -> ReplayReport:
    """Replay the trace through a running :class:`ServeServer` socket.

    Requests are pipelined (the writer streams ahead while the reader
    collects answers), so the server's micro-batcher sees real queues.
    The decision list is position-matched to the request stream.
    """
    requests = trace_requests(trace)
    reader, writer = await asyncio.open_connection(host, port)
    decisions: list[Decision] = []
    start = time.perf_counter()

    async def send() -> None:
        if speedup is None:
            for request in requests:
                writer.write(_encode(request))
            await writer.drain()
        else:
            origin = time.perf_counter()
            for request in requests:
                if request.time is not None:
                    delay = origin + request.time / speedup - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                writer.write(_encode(request))
                await writer.drain()

    async def receive() -> None:
        for __ in range(len(requests)):
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed mid-replay")
            decisions.append(_decode(line))

    try:
        await asyncio.gather(send(), receive())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    elapsed = time.perf_counter() - start
    return ReplayReport(
        decisions=tuple(decisions),
        result=aggregate_decisions(trace, decisions, warmup),
        wall_seconds=elapsed,
        requests=len(requests),
    )


def measure_throughput(
    network,
    policy,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    batch_size: int | None = None,
    rounds: int = 3,
) -> dict:
    """Serial vs batched decision throughput on the identical request stream.

    Interleaved best-of-``rounds`` timing (alternating the two variants per
    round cancels CPU frequency drift); the two decision lists must be
    identical — batching may only amortize overhead, never change answers.
    Returns a JSON-ready dict with both rates and the speedup.
    """
    from .engine import BatchConfig

    requests = trace_requests(trace)
    batch = BatchConfig() if batch_size is None else BatchConfig(max_batch=batch_size)

    def serial() -> tuple[list[Decision], float]:
        engine = RequestEngine(network, policy)
        start = time.perf_counter()
        decisions = [engine.decide(request) for request in requests]
        return decisions, time.perf_counter() - start

    def batched() -> tuple[list[Decision], float]:
        engine = RequestEngine(network, policy, batch=batch)
        decisions: list[Decision] = []
        start = time.perf_counter()
        for chunk in _batches(requests, batch.max_batch):
            decisions.extend(engine.decide_batch(chunk))
        return decisions, time.perf_counter() - start

    best_serial = best_batched = float("inf")
    serial_decisions = batched_decisions = None
    for __ in range(rounds):
        serial_decisions, elapsed = serial()
        best_serial = min(best_serial, elapsed)
        batched_decisions, elapsed = batched()
        best_batched = min(best_batched, elapsed)
    if serial_decisions != batched_decisions:
        raise AssertionError("batched replay changed decisions vs serial")
    count = len(requests)
    return {
        "requests": count,
        "calls": len(trace.times),
        "batch_size": batch.max_batch,
        "serial_seconds": best_serial,
        "batched_seconds": best_batched,
        "serial_decisions_per_sec": count / best_serial,
        "batched_decisions_per_sec": count / best_batched,
        "speedup": best_serial / best_batched,
        "network_blocking": aggregate_decisions(
            trace, batched_decisions, warmup
        ).network_blocking,
    }


async def replay_trace_cluster(
    router,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    batch_size: int = 256,
) -> ReplayReport:
    """Replay the trace through a started :class:`ClusterRouter`.

    With an ``ordered``-mode router and faults off, the report's
    decisions must be bit-identical to :func:`replay_trace` on an
    in-process engine — the cluster's replay-equivalence oracle
    (``tests/test_cluster.py`` asserts it).
    """
    requests = trace_requests(trace)
    decisions: list[Decision] = []
    start = time.perf_counter()
    for chunk in _batches(requests, batch_size):
        decisions.extend(await router.submit_batch(list(chunk)))
    elapsed = time.perf_counter() - start
    return ReplayReport(
        decisions=tuple(decisions),
        result=aggregate_decisions(trace, decisions, warmup),
        wall_seconds=elapsed,
        requests=len(requests),
    )


def partition_requests(
    requests: Sequence[AdmitRequest | ReleaseRequest], clients: int
) -> list[list[AdmitRequest | ReleaseRequest]]:
    """Split a request stream across ``clients``, keeping every call's
    admit and release in the same partition (call-id keyed).

    Splitting positionally instead would strand releases in a different
    client than their admits: every release answers ``unknown-call``,
    held calls never free, and the network saturates — a measurement
    artifact, not a workload.
    """
    if clients < 1:
        raise ValueError("clients must be positive")
    parts: list[list[AdmitRequest | ReleaseRequest]] = [[] for __ in range(clients)]
    for request in requests:
        parts[hash(request.id) % clients].append(request)
    return parts


def _cluster_request_tuples(
    requests: Sequence[AdmitRequest | ReleaseRequest],
) -> list[tuple]:
    """The compact wire form :class:`ClusterClient` batches carry."""
    items: list[tuple] = []
    for request in requests:
        if isinstance(request, AdmitRequest):
            items.append(("admit", request.id, request.od, request.uniform,
                          request.time, request.width))
        else:
            items.append(("release", request.id, request.time))
    return items


def _baseline_server_main(network, policy, port_queue, stop_event) -> None:
    """Child process: the single-process JSON-lines socket server."""
    from .server import ServeServer

    async def run() -> None:
        engine = RequestEngine(network, policy)
        server = ServeServer(engine)
        await server.start()
        port_queue.put(server.port)
        while not stop_event.is_set():
            await asyncio.sleep(0.05)
        await server.stop()

    asyncio.run(run())


def _cluster_server_main(
    network, policy, num_shards, port_queue, stop_event
) -> None:
    """Child process: the sharded cluster in pipelined mode."""
    from .cluster import ClusterConfig, ClusterRouter, ClusterServer

    async def run() -> None:
        router = ClusterRouter(
            network, policy, ClusterConfig(num_shards=num_shards, mode="pipelined")
        )
        server = ClusterServer(router)
        await server.start()
        port_queue.put(server.port)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, stop_event.wait)
        await server.stop()

    asyncio.run(run())


def _baseline_client_main(port, requests, result_queue, barrier) -> None:
    """Child process: stream JSON lines, count answers (reader thread)."""
    import socket as socketlib
    import threading

    lines = [_encode(request) for request in requests]
    sock = socketlib.create_connection(("127.0.0.1", port))
    writer = sock.makefile("wb")
    reader = sock.makefile("rb")
    barrier.wait()
    start = time.perf_counter()

    def send() -> None:
        for line in lines:
            writer.write(line)
        writer.flush()

    pump = threading.Thread(target=send)
    pump.start()
    answered = 0
    for __ in range(len(lines)):
        if reader.readline():
            answered += 1
    pump.join()
    result_queue.put((answered, start, time.perf_counter()))
    sock.close()


def _cluster_client_main(port, requests, batch_size, result_queue, barrier) -> None:
    """Child process: stream pickle batch frames, tally the reply triples.

    Frames are pickled *before* the barrier — the baseline client
    pre-encodes its JSON lines the same way, so the measured window
    charges both fleets for wire traffic, not for request encoding.
    """
    import pickle as picklelib
    import threading

    from .cluster import _HEADER, ClusterClient

    items = _cluster_request_tuples(requests)
    frames = []
    for i in range(0, len(items), batch_size):
        blob = picklelib.dumps(
            {"op": "batch", "requests": items[i:i + batch_size]},
            protocol=picklelib.HIGHEST_PROTOCOL,
        )
        frames.append(_HEADER.pack(len(blob)) + blob)
    client = ClusterClient("127.0.0.1", port)
    barrier.wait()
    start = time.perf_counter()

    def send() -> None:
        for frame in frames:
            client._sock.sendall(frame)

    pump = threading.Thread(target=send)
    pump.start()
    answered = admitted = 0
    for __ in frames:
        header = client._recv_exact(_HEADER.size)
        reply = picklelib.loads(client._recv_exact(_HEADER.unpack(header)[0]))
        for ok, tier, ___ in reply["decisions"]:
            answered += 1
            if ok and tier != "release":
                admitted += 1
    pump.join()
    result_queue.put((answered, start, time.perf_counter(), admitted))
    client.close()


def _run_fleet(ctx, server_target, server_args, client_target, parts, extra):
    """One measurement: a server child, ``len(parts)`` client children.

    Returns (total answered, aggregate wall seconds, per-client extras):
    wall is last-finish minus first-start across clients (they are
    barrier-released together), so the rate is a true aggregate.
    """
    port_queue = ctx.Queue()
    stop_event = ctx.Event()
    barrier = ctx.Barrier(len(parts) + 1)
    # The server child must not be daemonic: the cluster server forks its
    # own shard workers, which daemons are forbidden to do.
    server = ctx.Process(
        target=server_target, args=(*server_args, port_queue, stop_event),
    )
    server.start()
    port = port_queue.get(timeout=60)
    result_queue = ctx.Queue()
    clients = [
        ctx.Process(
            target=client_target,
            args=(port, part, *extra, result_queue, barrier),
            daemon=True,
        )
        for part in parts
    ]
    for proc in clients:
        proc.start()
    barrier.wait()
    results = [result_queue.get(timeout=600) for __ in clients]
    for proc in clients:
        proc.join()
    stop_event.set()
    server.join(timeout=30)
    if server.is_alive():  # pragma: no cover - wedged server child
        server.terminate()
        server.join()
    answered = sum(r[0] for r in results)
    wall = max(r[2] for r in results) - min(r[1] for r in results)
    return answered, wall, results


def measure_cluster_throughput(
    network,
    policy,
    trace: ArrivalTrace,
    num_shards: int = 4,
    clients: int = 4,
    batch_size: int = 512,
) -> dict:
    """Aggregate decisions/s: sharded cluster vs single-process server.

    Both sides serve the identical request stream, call-partitioned
    across ``clients`` loadgen processes that start behind one barrier:

    * **baseline** — :class:`~repro.serve.server.ServeServer` (one
      process, JSON lines, micro-batched engine);
    * **cluster** — ``num_shards`` shard workers behind a pipelined
      :class:`~repro.serve.cluster.ClusterRouter`, clients speaking
      batched pickle frames.

    Returns a JSON-ready dict with both rates and the cluster/baseline
    speedup (``benchmarks/bench_cluster_throughput.py`` asserts the bar).
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    requests = trace_requests(trace)
    parts = partition_requests(requests, clients)
    base_answered, base_wall, __ = _run_fleet(
        ctx, _baseline_server_main, (network, policy),
        _baseline_client_main, parts, (),
    )
    cluster_answered, cluster_wall, cluster_results = _run_fleet(
        ctx, _cluster_server_main, (network, policy, num_shards),
        _cluster_client_main, parts, (batch_size,),
    )
    if base_answered != len(requests) or cluster_answered != len(requests):
        raise AssertionError(
            f"lost answers: baseline {base_answered}, cluster "
            f"{cluster_answered}, expected {len(requests)}"
        )
    baseline_rate = base_answered / base_wall
    cluster_rate = cluster_answered / cluster_wall
    return {
        "requests": len(requests),
        "calls": len(trace.times),
        "num_shards": num_shards,
        "clients": clients,
        "batch_size": batch_size,
        "baseline_seconds": base_wall,
        "cluster_seconds": cluster_wall,
        "baseline_decisions_per_sec": baseline_rate,
        "cluster_decisions_per_sec": cluster_rate,
        "speedup": cluster_rate / baseline_rate,
        "cluster_admitted": sum(r[3] for r in cluster_results),
    }


def decisions_digest(decisions: Sequence[Decision]) -> str:
    """Stable SHA-256 over a decision list's JSON form.

    The smoke tooling compares digests across runs and across planes:
    equal digests mean bit-identical decisions without shipping the lists.
    """
    import hashlib

    payload = json.dumps(
        [d.to_json() for d in decisions], separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def measure_regime_shift(
    network,
    policy,
    trace: ArrivalTrace,
    shift_time: float,
    adaptation=None,
    warmup: float = 10.0,
    overload=None,
    bin_width: float = 5.0,
    settle_tolerance: float = 0.0,
    control=None,
) -> dict:
    """Replay a (typically nonstationary) trace and track threshold tracking.

    The regime-shift observability harness: replays the trace through an
    engine (adaptive when ``adaptation`` is an
    :class:`~repro.serve.state.AdaptationConfig`, static otherwise) and
    reports what an operator watching the telemetry would see —

    * ``recompute_count`` and per-refresh ``refresh_events`` (time and max
      |Δ threshold| of each Equation-15 recompute);
    * ``time_to_reconverge``: how long after ``shift_time`` the thresholds
      kept moving (last refresh whose max delta exceeds
      ``settle_tolerance``, relative to the shift; 0.0 if they never moved
      after the shift, ``None`` with adaptation off);
    * a ``trajectory`` of ``bin_width``-wide bins — offered, admitted,
      blocked, shed, degraded counts per bin — the shed-rate/blocking
      curve through the surge;
    * overall blocking and the decision digest (replays of the same trace
      must produce the same digest — determinism is part of the contract).

    ``control`` is an optional pre-built
    :class:`repro.control.loop.ControlLoop` (mutually exclusive with
    ``adaptation``): the replay then runs closed-loop, and the report
    carries the hot-swap events and final policy epoch so regime-shift
    plots can align decisions to the policy version that made them.

    Everything runs on request (virtual) time, so the whole report is a
    pure function of ``(trace, policy, adaptation, overload, control)``.
    """
    from .state import NetworkState

    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if adaptation is not None and control is not None:
        raise ValueError("pass either adaptation or control, not both")
    if control is not None:
        state = control.state
        engine = RequestEngine(
            network, policy, state=state, overload=overload, control=control
        )
    else:
        state = (
            None if adaptation is None
            else NetworkState(network, policy, adaptation)
        )
        engine = RequestEngine(network, policy, state=state, overload=overload)
    report = replay_trace(engine, trace, warmup=warmup)
    state = engine.state

    refresh_events = []
    previous_levels = None
    for refresh in state.refreshes:
        if previous_levels is None:
            # The constructor's seeding application: levels came from
            # initial_loads, not from observation — not a recompute.
            previous_levels = refresh.protection_levels
            continue
        delta = int(
            np.abs(refresh.protection_levels - previous_levels).max(initial=0)
        )
        refresh_events.append({"time": float(refresh.time), "max_delta": delta})
        previous_levels = refresh.protection_levels

    swap_events = [
        {"time": float(s.time), "epoch": int(s.epoch),
         "max_delta": float(s.max_delta)}
        for s in state.swaps
    ]

    if control is not None:
        moving = [
            e for e in swap_events
            if e["time"] >= shift_time and e["max_delta"] > settle_tolerance
        ]
        time_to_reconverge = (
            0.0 if not moving else moving[-1]["time"] - shift_time
        )
    elif adaptation is None:
        time_to_reconverge = None
    else:
        active = [
            e for e in refresh_events
            if e["time"] >= shift_time and e["max_delta"] > settle_tolerance
        ]
        time_to_reconverge = (
            0.0 if not active else active[-1]["time"] - shift_time
        )

    bins = int(np.ceil(trace.duration / bin_width))
    trajectory = [
        {"t0": b * bin_width, "offered": 0, "admitted": 0, "blocked": 0,
         "shed": 0, "degraded": 0}
        for b in range(bins)
    ]
    times = trace.times
    for decision in report.decisions:
        if decision.tier == "release":
            continue
        entry = trajectory[min(int(times[decision.id] // bin_width), bins - 1)]
        entry["offered"] += 1
        if decision.admitted:
            entry["admitted"] += 1
        elif decision.reason == "shed":
            entry["shed"] += 1
        elif decision.reason == "degraded":
            entry["degraded"] += 1
        else:
            entry["blocked"] += 1

    return {
        "calls": len(trace.times),
        "shift_time": float(shift_time),
        "adaptation": adaptation is not None,
        "recompute_count": state.recompute_count,
        "last_refresh_delta": state.last_refresh_delta,
        "refresh_events": refresh_events,
        "policy_epoch": int(state.policy_epoch),
        "swap_events": swap_events,
        "controlled": control is not None,
        "time_to_reconverge": time_to_reconverge,
        "bin_width": float(bin_width),
        "trajectory": trajectory,
        "network_blocking": report.result.network_blocking,
        "decisions_sha256": decisions_digest(report.decisions),
    }


def measure_surge_with_shard_kill(
    network,
    policy,
    trace: ArrivalTrace,
    num_shards: int = 3,
    kill_shard: int = 0,
    kill_after_ops: int = 800,
    chaos_seed: int = 3,
    warmup: float = 10.0,
    batch_size: int = 256,
    retry_timeout: float = 0.15,
) -> dict:
    """Correlated failure + overload: a surge trace through a cluster that
    loses (and recovers) one shard mid-run.

    Replays the trace — typically realized from a surge workload — through
    an ordered :class:`~repro.serve.cluster.ClusterRouter` whose
    ``kill_shard`` worker self-crashes after ``kill_after_ops`` commands
    (:class:`~repro.serve.chaos.ChaosConfig`).  Separates the two loss
    modes the tentpole study compares: calls *blocked* by admission policy
    (``blocked`` / ``no-route`` — the network said no) versus calls
    *dropped* by infrastructure (``shard-down`` and friends — the cluster
    couldn't answer), measured after ``warmup``.
    """
    from ..sim.sigpolicy import HoldTimerPolicy, RetryPolicy
    from .chaos import ChaosConfig
    from .cluster import ClusterConfig, ClusterRouter

    async def run():
        router = ClusterRouter(
            network, policy,
            ClusterConfig(
                num_shards=num_shards,
                mode="ordered",
                retry=RetryPolicy(timeout=retry_timeout, max_retries=5),
                hold=HoldTimerPolicy(duration=0.5),
                chaos=ChaosConfig(
                    seed=chaos_seed,
                    kill_after_ops={kill_shard: kill_after_ops},
                ),
            ),
        )
        async with router:
            report = await replay_trace_cluster(
                router, trace, warmup=warmup, batch_size=batch_size
            )
            restarts = dict(router.supervisor.restarts)
        return report, restarts

    report, restarts = asyncio.run(run())
    times = trace.times
    offered = admitted = blocked = dropped = 0
    drop_reasons: dict[str, int] = {}
    for decision in report.decisions:
        if decision.tier == "release" or times[decision.id] < warmup:
            continue
        offered += 1
        if decision.admitted:
            admitted += 1
        elif decision.reason in ("blocked", "no-route"):
            blocked += 1
        else:
            dropped += 1
            reason = decision.reason or "unknown"
            drop_reasons[reason] = drop_reasons.get(reason, 0) + 1
    return {
        "calls": len(trace.times),
        "num_shards": num_shards,
        "kill_shard": kill_shard,
        "kill_after_ops": kill_after_ops,
        "restarts": restarts,
        "offered": offered,
        "admitted": admitted,
        "blocked": blocked,
        "dropped": dropped,
        "drop_reasons": drop_reasons,
        "blocked_fraction": blocked / offered if offered else 0.0,
        "dropped_fraction": dropped / offered if offered else 0.0,
        "network_blocking": report.result.network_blocking,
        "wall_seconds": report.wall_seconds,
    }


def measure_overload(
    network,
    policy,
    trace: ArrivalTrace,
    overload_factor: float = 2.0,
    warmup: float = 10.0,
) -> dict:
    """Replay under a token rate set ``overload_factor`` below the offered
    request rate, and report how the service protected itself.

    The token bucket runs on request (virtual) time, so the overload
    trajectory is deterministic for a fixed trace.  Returns shed/degraded
    fractions, the recorded mode transitions, and the decision-latency
    p99 from the engine's own histogram — the number that must stay
    bounded while the queue does.
    """
    from .shed import OverloadConfig, OverloadControl

    if overload_factor <= 0:
        raise ValueError("overload_factor must be positive")
    requests = trace_requests(trace)
    admits = len(trace.times)
    offered_rate = admits / trace.duration
    control = OverloadControl(
        OverloadConfig(rate=offered_rate / overload_factor, burst=64.0)
    )
    engine = RequestEngine(network, policy, overload=control)
    report = replay_trace(engine, trace, warmup=warmup)
    latency = engine.telemetry.histogram("serve_decision_seconds")
    answered = sum(1 for d in report.decisions if d.tier != "release")
    shed = sum(1 for d in report.decisions if d.reason == "shed")
    degraded = sum(1 for d in report.decisions if d.reason == "degraded")
    return {
        "requests": len(requests),
        "offered_rate": offered_rate,
        "token_rate": offered_rate / overload_factor,
        "overload_factor": overload_factor,
        "answered": answered,
        "shed": shed,
        "shed_fraction": shed / answered if answered else 0.0,
        "degraded_rejections": degraded,
        "mode_transitions": len(control.transitions),
        "final_mode": control.mode,
        "decision_p99_seconds": latency.quantile(0.99),
        "decision_mean_seconds": latency.mean,
        "wall_seconds": report.wall_seconds,
        "decisions_per_second": report.decisions_per_second,
    }
