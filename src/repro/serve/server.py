"""Asyncio JSON-lines front end for the admission-control engine.

One :class:`ServeServer` owns a :class:`~repro.serve.engine.RequestEngine`
and exposes it over a line-delimited JSON socket protocol (one request
object per line, one response object per line, answered in request order
per connection) plus the in-process API the engine itself provides.

Protocol (requests)::

    {"op": "admit", "id": 7, "od": [0, 3], "u": 0.42, "t": 12.5, "w": 1}
    {"op": "release", "id": 7, "t": 13.1}
    {"op": "metrics"}                  -> {"op": "metrics", "text": ..., ...}
    {"op": "drain"}                    -> {"op": "drain", "ok": true}
    {"op": "ping"}                     -> {"op": "pong"}

Admit/release answers are the engine's :class:`Decision` as JSON.  ``t``
is the request's virtual timestamp (trace time under replay); omit it for
wall-clock operation.

Requests from *all* connections funnel through one micro-batcher: a
request waits at most ``BatchConfig.max_latency`` seconds or until
``max_batch`` peers queue up, then the whole batch is decided in one
:meth:`~repro.serve.engine.RequestEngine.decide_batch` call.  If the
queue is already at the overload control's hard limit the request is
answered ``shed`` immediately — the queue never grows without bound.

Lifecycle: :meth:`start` binds and serves; :meth:`drain` stops accepting
new connections and flushes every queued request; :meth:`stop` drains,
then closes live connections.  ``async with ServeServer(...)`` wraps the
pair.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Sequence

from .engine import AdmitRequest, Decision, ReleaseRequest, RequestEngine

__all__ = ["ServeServer", "parse_request"]


def parse_request(message: dict) -> AdmitRequest | ReleaseRequest:
    """Build an engine request from one decoded protocol object."""
    op = message.get("op")
    if op == "admit":
        od = message["od"]
        if not isinstance(od, (list, tuple)) or len(od) != 2:
            raise ValueError(f"od must be a [origin, destination] pair, got {od!r}")
        return AdmitRequest(
            id=message["id"],
            od=(int(od[0]), int(od[1])),
            uniform=float(message.get("u", 0.0)),
            time=None if message.get("t") is None else float(message["t"]),
            width=int(message.get("w", 1)),
        )
    if op == "release":
        return ReleaseRequest(
            id=message["id"],
            time=None if message.get("t") is None else float(message["t"]),
        )
    raise ValueError(f"unknown op {op!r}")


class _MicroBatcher:
    """Accumulate requests across connections; flush by size or deadline."""

    def __init__(self, engine: RequestEngine):
        self.engine = engine
        self._pending: list[tuple[AdmitRequest | ReleaseRequest, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None

    def submit(self, request: AdmitRequest | ReleaseRequest) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        engine = self.engine
        overload = engine.overload
        if (
            overload is not None
            and len(self._pending) >= overload.config.queue_limit
        ):
            # Hard bound: answer shed without queueing (and record it).
            now = request.time if request.time is not None else engine.clock()
            overload.classify(now, queue_depth=len(self._pending))
            engine.telemetry.counter("serve_rejected_total", reason="shed").inc()
            future.set_result(
                Decision(request.id, False, None, "none", "shed")
            )
            return future
        self._pending.append((request, future))
        engine.queue_depth = len(self._pending)
        if len(self._pending) >= engine.batch.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(engine.batch.max_latency, self.flush)
        return future

    def flush(self) -> None:
        """Decide everything queued right now, resolving the futures."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        # The batch has left the queue: the depth the overload control sees
        # is the backlog still waiting behind it.
        self.engine.queue_depth = len(self._pending)
        decisions = self.engine.decide_batch([request for request, __ in batch])
        for (__, future), decision in zip(batch, decisions):
            if not future.done():
                future.set_result(decision)


class ServeServer:
    """The long-lived service: engine + micro-batcher + socket listener.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  ``publish_interval`` (seconds) periodically snapshots
    the engine's telemetry onto its bound event bus while serving.

    Two per-connection abuse bounds: a line longer than
    ``max_line_bytes`` or (with ``read_timeout`` set) a connection idle
    past the timeout gets one final error response and is disconnected —
    a stalled or hostile client never holds a reader task forever.
    """

    def __init__(
        self,
        engine: RequestEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        publish_interval: float | None = None,
        read_timeout: float | None = None,
        max_line_bytes: int = 1 << 16,
    ):
        if read_timeout is not None and read_timeout <= 0:
            raise ValueError("read_timeout must be positive when set")
        if max_line_bytes < 2:
            raise ValueError("max_line_bytes must allow at least one byte + newline")
        self.engine = engine
        self.host = host
        self.port = port
        self.publish_interval = publish_interval
        self.read_timeout = read_timeout
        self.max_line_bytes = max_line_bytes
        self.batcher = _MicroBatcher(engine)
        self._server: asyncio.AbstractServer | None = None
        self._publisher: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=self.max_line_bytes
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.publish_interval is not None:
            self._publisher = asyncio.create_task(self._publish_loop())
        self.engine.publish_metrics(phase="startup")
        return self.host, self.port

    async def drain(self) -> None:
        """Stop accepting connections and flush every queued request."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.batcher.flush()
        self.engine.publish_metrics(phase="drain")

    async def stop(self) -> None:
        """Drain, then close live connections and the telemetry publisher."""
        await self.drain()
        if self._publisher is not None:
            self._publisher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._publisher
            self._publisher = None
        for task in list(self._connections):
            task.cancel()
        for task in list(self._connections):
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._server = None
        self.engine.publish_metrics(phase="shutdown")

    async def __aenter__(self) -> "ServeServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _publish_loop(self) -> None:
        while True:
            await asyncio.sleep(self.publish_interval)
            self.engine.publish_metrics(phase="serving")

    # ----------------------------------------------------------- connection

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        outbox: asyncio.Queue = asyncio.Queue()
        pump = asyncio.create_task(self._pump(outbox, writer))
        try:
            while True:
                try:
                    if self.read_timeout is None:
                        line = await reader.readline()
                    else:
                        line = await asyncio.wait_for(
                            reader.readline(), self.read_timeout
                        )
                except TimeoutError:
                    await outbox.put({
                        "error": f"connection idle past {self.read_timeout:g}s"
                    })
                    break
                except ValueError:
                    # StreamReader's limit tripped: the line would exceed
                    # max_line_bytes.  One error answer, then disconnect.
                    await outbox.put({
                        "error": f"line exceeds {self.max_line_bytes} bytes"
                    })
                    break
                if not line:
                    break
                payload = self._receive(line)
                if payload is not None:
                    await outbox.put(payload)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            await outbox.put(None)
            with contextlib.suppress(Exception):
                await pump
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
            self._connections.discard(task)

    def _receive(self, line: bytes):
        """One inbound line -> a response dict or an awaitable of one."""
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"error": f"malformed JSON: {exc.msg}"}
        op = message.get("op")
        if op == "ping":
            return {"op": "pong"}
        if op == "metrics":
            snapshot = self.engine.telemetry.snapshot()
            return {"op": "metrics", "text": self.engine.metrics_text(),
                    "snapshot": snapshot}
        if op == "drain":
            self.batcher.flush()
            return {"op": "drain", "ok": True}
        if self._draining:
            return {"error": "draining", "id": message.get("id")}
        try:
            request = parse_request(message)
        except (KeyError, TypeError, ValueError) as exc:
            return {"error": str(exc), "id": message.get("id")}
        return self.batcher.submit(request)

    @staticmethod
    async def _pump(outbox: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        """Write responses in request order; decisions resolve in batches."""
        while True:
            item = await outbox.get()
            if item is None:
                break
            if isinstance(item, asyncio.Future):
                decision: Decision = await item
                payload = decision.to_json()
            else:
                payload = item
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()


async def serve_requests(
    engine: RequestEngine,
    requests: Sequence[AdmitRequest | ReleaseRequest],
    host: str = "127.0.0.1",
) -> list[Decision]:
    """Convenience: run a one-shot server, push ``requests`` through a
    client connection in order, and return the decisions (test helper)."""
    async with ServeServer(engine, host=host) as server:
        reader, writer = await asyncio.open_connection(host, server.port)
        decisions: list[Decision] = []
        try:
            for request in requests:
                if isinstance(request, AdmitRequest):
                    message = {"op": "admit", "id": request.id,
                               "od": list(request.od), "u": request.uniform,
                               "t": request.time, "w": request.width}
                else:
                    message = {"op": "release", "id": request.id,
                               "t": request.time}
                writer.write(json.dumps(message).encode() + b"\n")
                await writer.drain()
                line = await reader.readline()
                answer = json.loads(line)
                decisions.append(Decision(
                    id=answer["id"], admitted=answer["admitted"],
                    route=None if answer["route"] is None
                    else tuple(answer["route"]),
                    tier=answer["tier"], reason=answer["reason"],
                ))
        finally:
            writer.close()
            await writer.wait_closed()
        return decisions
