"""Deterministic fault injection for the sharded admission cluster.

Chaos here is *seeded*, not random-in-the-wild: every fault the harness
injects is a pure function of the chaos seed and of deterministic
progress counters (messages sent, operations processed), never of wall
time.  Two runs of the same workload with the same :class:`ChaosConfig`
inject the same faults at the same points, which is what lets
``tools/cluster_smoke.py`` assert exact recovery invariants instead of
eyeballing flakes.

Three fault families, mirroring what kills real clusters:

* **worker crashes** — a shard worker calls ``os._exit`` after processing
  exactly ``kill_after_ops`` commands (a deterministic stand-in for
  SIGKILL mid-operation); the supervisor must notice and restart it;
* **message loss / delay** — the router's transport drops or delays
  frames to and from shards, decided per frame by a seeded RNG (the
  cluster's retry/hold-timer policies must absorb it);
* **slow shards** — a worker sleeps ``slow_seconds`` before every
  command, modelling a GC-pausing or CPU-starved worker that is alive but
  late (the heartbeat monitor must distinguish slow from dead, or restart
  it if it falls past the miss budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ChaosConfig", "MessageChaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """One cluster run's seeded fault plan.

    ``kill_after_ops`` maps shard id to the command count at which that
    worker self-crashes (one-shot: the supervisor's restarted worker runs
    clean).  ``slow_seconds`` maps shard id to a per-command sleep.
    ``drop_probability`` / ``delay_probability`` apply per router<->shard
    frame, decided by a ``seed``-keyed RNG; delayed frames wait
    ``delay_seconds`` before delivery.  Client traffic is never dropped —
    chaos attacks the cluster's internals, not the workload.
    """

    seed: int = 0
    kill_after_ops: dict[int, int] = field(default_factory=dict)
    slow_seconds: dict[int, float] = field(default_factory=dict)
    drop_probability: float = 0.0
    delay_probability: float = 0.0
    delay_seconds: float = 0.05

    def __post_init__(self):
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must lie in [0, 1)")
        if not 0.0 <= self.delay_probability < 1.0:
            raise ValueError("delay_probability must lie in [0, 1)")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        for shard, ops in self.kill_after_ops.items():
            if ops < 0:
                raise ValueError(f"kill_after_ops[{shard}] must be non-negative")
        for shard, sleep in self.slow_seconds.items():
            if sleep < 0:
                raise ValueError(f"slow_seconds[{shard}] must be non-negative")

    @property
    def active(self) -> bool:
        return bool(
            self.kill_after_ops
            or self.slow_seconds
            or self.drop_probability
            or self.delay_probability
        )

    def worker_plan(self, shard_id: int) -> dict:
        """The picklable slice of the plan one worker enforces on itself."""
        return {
            "kill_after_ops": self.kill_after_ops.get(shard_id),
            "slow_seconds": self.slow_seconds.get(shard_id, 0.0),
        }


class MessageChaos:
    """Seeded per-frame drop/delay decisions for the router's transport.

    One instance lives router-side; every candidate frame advances the
    RNG exactly once via :meth:`classify`, so the drop/delay pattern is a
    function of (seed, frame index) alone.  Frames to and from a shard
    share the stream — determinism needs a single total order, which the
    router's single-threaded event loop provides.
    """

    __slots__ = ("config", "_rng", "decisions")

    def __init__(self, config: ChaosConfig):
        self.config = config
        self._rng = np.random.default_rng(np.random.PCG64(config.seed))
        #: (dropped, delayed) counters, exposed to telemetry and the smoke.
        self.decisions = {"passed": 0, "dropped": 0, "delayed": 0}

    def classify(self) -> str:
        """``"drop"``, ``"delay"``, or ``"pass"`` for the next frame."""
        config = self.config
        if config.drop_probability == 0.0 and config.delay_probability == 0.0:
            self.decisions["passed"] += 1
            return "pass"
        u = float(self._rng.random())
        if u < config.drop_probability:
            self.decisions["dropped"] += 1
            return "drop"
        if u < config.drop_probability + config.delay_probability:
            self.decisions["delayed"] += 1
            return "delay"
        self.decisions["passed"] += 1
        return "pass"
