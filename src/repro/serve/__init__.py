"""repro.serve — the online admission-control service.

The offline stack answers "what *would* this policy have done" over a whole
trace; this package answers "what does the policy do for *this* call,
now".  It serves the same compiled route-choice tables and threshold
admission semantics as :mod:`repro.sim.simulator` — replaying a trace
through the service reproduces the simulator's decisions bit for bit —
wrapped in the machinery an online service needs: mutable network state
(:mod:`~repro.serve.state`), micro-batched request dispatch
(:mod:`~repro.serve.engine`), trunk-reservation-style self-protection
under overload (:mod:`~repro.serve.shed`), an asyncio JSON-lines socket
front end (:mod:`~repro.serve.server`), live metrics
(:mod:`~repro.serve.telemetry`) and the replay harness that proves the
equivalence (:mod:`~repro.serve.loadgen`).

For horizontal scale the state can be partitioned by link across shard
worker processes behind a fault-tolerant two-phase router
(:mod:`~repro.serve.cluster`, :mod:`~repro.serve.shard`,
:mod:`~repro.serve.supervisor`), with deterministic fault injection for
testing recovery (:mod:`~repro.serve.chaos`).
"""

from .chaos import ChaosConfig, MessageChaos
from .cluster import (
    ClusterClient,
    ClusterConfig,
    ClusterRouter,
    ClusterServer,
    ReservationJournal,
)
from .engine import AdmitRequest, BatchConfig, Decision, ReleaseRequest, RequestEngine
from .loadgen import (
    ReplayReport,
    aggregate_decisions,
    measure_cluster_throughput,
    measure_overload,
    measure_throughput,
    partition_requests,
    replay_trace,
    replay_trace_cluster,
    replay_trace_socket,
    trace_requests,
)
from .server import ServeServer
from .state import partition_links
from .shed import MODES, OverloadConfig, OverloadControl, TokenBucket
from .state import AdaptationConfig, NetworkState, ThresholdRefresh
from .telemetry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "AdmitRequest",
    "ReleaseRequest",
    "Decision",
    "BatchConfig",
    "RequestEngine",
    "NetworkState",
    "AdaptationConfig",
    "ThresholdRefresh",
    "OverloadConfig",
    "OverloadControl",
    "TokenBucket",
    "MODES",
    "ServeServer",
    "ReplayReport",
    "trace_requests",
    "aggregate_decisions",
    "replay_trace",
    "replay_trace_socket",
    "measure_throughput",
    "measure_overload",
    "ClusterConfig",
    "ClusterRouter",
    "ClusterServer",
    "ClusterClient",
    "ReservationJournal",
    "ChaosConfig",
    "MessageChaos",
    "partition_links",
    "partition_requests",
    "replay_trace_cluster",
    "measure_cluster_throughput",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
]
