"""Uncontrolled and controlled (state-protected) alternate routing.

Both tiers work the same way: the primary path is tried first; if any of its
links is full, loop-free alternates are attempted in order of increasing hop
length.  They differ in the per-link admission rule for *alternate* calls:

* **uncontrolled** — an alternate call needs only a free circuit on every
  link (threshold ``C``);
* **controlled** — additionally, every link must be below its
  state-protection threshold: occupancy strictly less than ``C - r`` where
  ``r`` is the Theorem-1 level of :func:`repro.core.min_protection_level`.
  Links whose primary demand is so high that no ``r <= C`` meets the
  Equation-15 test get ``r = C`` — they never carry alternate traffic
  (Table 1's overloaded links).

Primary calls are never subject to the threshold: state protection gives
primary traffic strict priority over alternate traffic.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.protection import min_protection_levels
from ..topology.graph import Network
from ..topology.paths import Path, PathTable
from .base import RoutingPolicy, compile_route_choices

__all__ = [
    "UncontrolledAlternateRouting",
    "ControlledAlternateRouting",
    "LengthAdaptiveControlledRouting",
    "per_link_max_hops",
]


def per_link_max_hops(network: Network, table: PathTable) -> np.ndarray:
    """Per-link ``H^k``: the longest alternate path that traverses each link.

    Footnote 5 of the paper: instead of one global ``H``, "each link k can
    pick its own H^k, which would be the maximum hop-length of alternate-
    routed calls that traverse link k" — links only crossed by short
    alternates then protect less.  Links on no alternate path get 1 (their
    level is irrelevant; no alternate call ever asks).
    """
    hops = np.ones(network.num_links, dtype=np.int64)
    for od in table.od_pairs():
        for path in table.alternates.get(od, ()):
            length = len(path) - 1
            for link_index in network.path_links(path):
                if length > hops[link_index]:
                    hops[link_index] = length
    return hops


class UncontrolledAlternateRouting(RoutingPolicy):
    """Alternate routing with no control: any idle capacity is fair game."""

    name = "uncontrolled"
    discipline = "threshold"

    def __init__(
        self,
        network: Network,
        table: PathTable,
        splits: Mapping[tuple[int, int], Sequence[tuple[Path, float]]] | None = None,
        max_alternates: int | None = None,
    ):
        choices, cum_probs = compile_route_choices(
            network, table, include_alternates=True, splits=splits,
            max_alternates=max_alternates,
        )
        super().__init__(network, choices, cum_probs)
        self.alt_thresholds = network.capacities()


class ControlledAlternateRouting(RoutingPolicy):
    """The paper's scheme: alternate routing tamed by state protection.

    ``primary_loads`` is the per-link primary demand ``Lambda^k`` (link-index
    order), normally from :func:`repro.traffic.primary_link_loads`; the paper
    assumes links know it a priori (its robustness makes estimation error
    benign — see the estimator ablation).  ``max_hops`` is the design
    parameter ``H``; it defaults to the table's hop limit, i.e. alternate
    paths as long as loop-freedom allows.

    ``protection_levels`` (link-index order) and per-link thresholds are
    exposed for inspection and for the Table-1 benchmark.
    """

    name = "controlled"
    discipline = "threshold"

    def __init__(
        self,
        network: Network,
        table: PathTable,
        primary_loads: np.ndarray,
        max_hops: int | None = None,
        per_link_hops: np.ndarray | None = None,
        protection_override: np.ndarray | None = None,
        splits: Mapping[tuple[int, int], Sequence[tuple[Path, float]]] | None = None,
        max_alternates: int | None = None,
    ):
        choices, cum_probs = compile_route_choices(
            network, table, include_alternates=True, splits=splits,
            max_alternates=max_alternates,
        )
        super().__init__(network, choices, cum_probs)
        loads = np.asarray(primary_loads, dtype=float)
        if loads.shape != (network.num_links,):
            raise ValueError(
                f"primary_loads must have shape ({network.num_links},), got {loads.shape}"
            )
        if max_hops is not None and per_link_hops is not None:
            raise ValueError("pass either max_hops or per_link_hops, not both")
        capacities = network.capacities()
        if per_link_hops is not None:
            hop_arr = np.asarray(per_link_hops, dtype=np.int64)
            if hop_arr.shape != (network.num_links,):
                raise ValueError("per_link_hops must be per-link")
            if (hop_arr < 1).any():
                raise ValueError("per-link hop limits must be >= 1")
            hops: int | np.ndarray = hop_arr
        else:
            hops = table.max_hops if max_hops is None else max_hops
        if protection_override is not None:
            levels = np.asarray(protection_override, dtype=np.int64)
            if levels.shape != (network.num_links,):
                raise ValueError("protection_override must be per-link")
            if (levels < 0).any() or (levels > capacities).any():
                raise ValueError("protection levels must lie in [0, capacity]")
        else:
            levels = min_protection_levels(loads, capacities, hops)
        self.max_hops = hops
        self.primary_loads = loads
        self.protection_levels = levels
        self.alt_thresholds = capacities - levels


class LengthAdaptiveControlledRouting(RoutingPolicy):
    """State protection keyed to the *actual* hop length of each alternate.

    Section 3.2 observes that the global-``H`` levels of Equation 15 "may be
    more conservative than they need to be".  This refinement keeps the
    guarantee with a tighter budget: an alternate path of exactly ``h`` hops
    only needs every link's displacement bound at or below ``1/h`` — so each
    link holds a *vector* of levels ``r(h) = min r : bound <= 1/h`` and an
    admission test that depends on the attempted path's length.  Short
    alternates face laxer thresholds; the Theorem-1 argument applies per
    path, so the better-than-single-path guarantee is preserved.
    """

    name = "length-adaptive"
    discipline = "length-threshold"

    def __init__(
        self,
        network: Network,
        table: PathTable,
        primary_loads: np.ndarray,
        splits: Mapping[tuple[int, int], Sequence[tuple[Path, float]]] | None = None,
    ):
        choices, cum_probs = compile_route_choices(
            network, table, include_alternates=True, splits=splits
        )
        super().__init__(network, choices, cum_probs)
        loads = np.asarray(primary_loads, dtype=float)
        if loads.shape != (network.num_links,):
            raise ValueError(
                f"primary_loads must have shape ({network.num_links},), got {loads.shape}"
            )
        capacities = network.capacities()
        self.primary_loads = loads
        # Alternate link-tuples have length == hop count; build a threshold
        # table for every hop length that actually occurs.
        lengths = {
            len(alt)
            for entries in self.choices.values()
            for choice in entries
            for alt in choice.alternates
        }
        self.protection_by_length: dict[int, np.ndarray] = {}
        self.length_thresholds: dict[int, list[int]] = {}
        for length in sorted(lengths) or [1]:
            levels = min_protection_levels(loads, capacities, length)
            self.protection_by_length[length] = levels
            self.length_thresholds[length] = (capacities - levels).tolist()
