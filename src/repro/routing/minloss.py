"""Min-link-loss state-independent primary paths (Section 4.2.2).

The paper's second base policy chooses primary paths "so as to minimize
overall system blocking of primary calls, under the independent link
assumption": minimize ``sum_k phi_k(Lambda_k)`` with
``phi_k(L) = L * B(L, C_k)``, the expected lost-call rate of link ``k``,
which Krishnan [23] proves convex in the load.  The optimum generally
*bifurcates* flows: an O-D pair uses each of several paths with some
probability.

The paper solves this with an iterative conjugate-gradient method; we use
the classical flow-deviation / Frank-Wolfe algorithm, which is the standard
solver for exactly this convex multicommodity objective and needs only the
marginal link costs ``phi'``:

1. at the current path flows, compute every link's marginal cost;
2. for each O-D pair, assign its whole demand to its cheapest candidate
   path under those marginals (the all-or-nothing step);
3. line-search on the segment toward the all-or-nothing flow;
4. repeat until the Frank-Wolfe duality gap is small.

The result is a ``splits`` mapping consumable by every routing policy (each
accepts bifurcated primaries) and by :func:`repro.traffic.bifurcated_link_loads`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.erlang import expected_lost_calls, expected_lost_calls_derivative
from ..topology.graph import Network
from ..topology.paths import Path, PathTable
from ..traffic.matrix import TrafficMatrix

__all__ = ["MinLossSolution", "optimize_primary_flows"]


@dataclass(frozen=True)
class MinLossSolution:
    """Converged bifurcated primary flows.

    ``splits[od]`` lists ``(path, fraction)`` with fractions summing to one;
    ``link_loads`` the resulting primary demands; ``objective`` the total
    expected lost-call rate; ``lower_bound`` the best Frank-Wolfe dual bound
    (``objective - lower_bound`` bounds the suboptimality); ``iterations``
    the number of flow-deviation steps taken.
    """

    splits: dict[tuple[int, int], tuple[tuple[Path, float], ...]]
    link_loads: np.ndarray
    objective: float
    lower_bound: float
    iterations: int

    @property
    def optimality_gap(self) -> float:
        return max(0.0, self.objective - self.lower_bound)

    def bifurcated_pairs(self, threshold: float = 1e-6) -> int:
        """Number of O-D pairs genuinely split across several paths."""
        return sum(
            1
            for entries in self.splits.values()
            if sum(1 for __, fraction in entries if fraction > threshold) > 1
        )


def _objective(loads: np.ndarray, capacities: np.ndarray) -> float:
    return float(
        sum(
            expected_lost_calls(float(load), int(cap))
            for load, cap in zip(loads, capacities)
            if cap > 0
        )
    )


def optimize_primary_flows(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    max_iterations: int = 200,
    gap_tolerance: float = 1e-3,
) -> MinLossSolution:
    """Run flow deviation to the min-link-loss primary flows.

    Candidate paths per O-D pair are the pair's full loop-free pool from
    ``table`` (primary plus alternates) — on the paper's sparse meshes this
    is the whole path space.  ``gap_tolerance`` is relative to the total
    offered traffic.
    """
    demands = list(traffic.positive_pairs())
    capacities = network.capacities()
    candidate_paths: list[list[Path]] = []
    candidate_links: list[list[tuple[int, ...]]] = []
    for od, demand in demands:
        pool = list(table.routes(od))
        if not pool:
            raise ValueError(f"O-D pair {od} has demand {demand} but no paths")
        candidate_paths.append(pool)
        candidate_links.append([network.path_links(p) for p in pool])

    # Start from the all-on-primary flow.
    flows: list[np.ndarray] = [
        np.array([demand] + [0.0] * (len(candidate_paths[i]) - 1))
        for i, (__, demand) in enumerate(demands)
    ]

    def loads_of(flow_list: list[np.ndarray]) -> np.ndarray:
        loads = np.zeros(network.num_links, dtype=float)
        for links_per_path, flow in zip(candidate_links, flow_list):
            for links, amount in zip(links_per_path, flow):
                if amount > 0.0:
                    for link in links:
                        loads[link] += amount
        return loads

    loads = loads_of(flows)
    objective = _objective(loads, capacities)
    best_bound = -np.inf
    total_demand = traffic.total
    tolerance = gap_tolerance * max(total_demand, 1.0)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        marginals = np.array(
            [
                expected_lost_calls_derivative(float(loads[i]), int(capacities[i]))
                if capacities[i] > 0
                else 1.0
                for i in range(network.num_links)
            ]
        )
        # All-or-nothing assignment under the marginal costs.
        target: list[np.ndarray] = []
        gap = 0.0
        for i, (__, demand) in enumerate(demands):
            costs = [sum(marginals[link] for link in links) for links in candidate_links[i]]
            best = int(np.argmin(costs))
            aon = np.zeros(len(costs))
            aon[best] = demand
            target.append(aon)
            gap += float(np.dot(costs, flows[i] - aon))
        # Frank-Wolfe dual bound: objective - gap (gap >= 0 by optimality of AON).
        best_bound = max(best_bound, objective - gap)
        if gap <= tolerance:
            break
        # Exact-enough line search on [0, 1] by ternary search (convex).
        direction = [aon - flow for aon, flow in zip(target, flows)]

        def value_at(step: float) -> float:
            candidate = [flow + step * d for flow, d in zip(flows, direction)]
            return _objective(loads_of(candidate), capacities)

        lo, hi = 0.0, 1.0
        for __ in range(40):
            m1 = lo + (hi - lo) / 3.0
            m2 = hi - (hi - lo) / 3.0
            if value_at(m1) <= value_at(m2):
                hi = m2
            else:
                lo = m1
        step = 0.5 * (lo + hi)
        if step <= 1e-12:
            break
        flows = [flow + step * d for flow, d in zip(flows, direction)]
        loads = loads_of(flows)
        objective = _objective(loads, capacities)

    splits: dict[tuple[int, int], tuple[tuple[Path, float], ...]] = {}
    for i, (od, demand) in enumerate(demands):
        fractions = flows[i] / demand
        entries = [
            (candidate_paths[i][j], float(fractions[j]))
            for j in range(len(fractions))
            if fractions[j] > 1e-9
        ]
        total = sum(fraction for __, fraction in entries)
        entries = [(path, fraction / total) for path, fraction in entries]
        splits[od] = tuple(entries)
    return MinLossSolution(
        splits=splits,
        link_loads=loads,
        objective=objective,
        lower_bound=float(best_bound),
        iterations=iterations,
    )
