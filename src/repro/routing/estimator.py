"""Online estimation of per-link primary demand (an extension).

The paper assumes each link knows its primary traffic demand ``Lambda^k`` a
priori and explicitly leaves the estimation procedure out of scope ("The
estimation procedure is not detailed in this report"), noting that the
robustness of state protection makes estimation error benign.  This module
supplies the missing piece so the ablation can measure that claim:

* :class:`EwmaRateEstimator` — an exponentially weighted moving average of
  the primary call-setup rate a link observes ("found from the primary call
  set-ups that fly past the link");
* :func:`estimate_loads_from_trace` — a one-shot measurement pass: count
  primary setups per link over a trace and divide by time, which is what a
  deployment's warm-started estimator converges to.
"""

from __future__ import annotations

import numpy as np

from ..routing.base import RoutingPolicy
from ..topology.graph import Network
from ..sim.trace import ArrivalTrace

__all__ = ["EwmaRateEstimator", "estimate_loads_from_trace"]


class EwmaRateEstimator:
    """EWMA estimate of a point process rate from its event times.

    Between events the estimate decays toward zero; each observed event adds
    an impulse.  With time constant ``tau`` the estimator tracks rate changes
    on that time scale while averaging out Poisson noise.  Formally it is the
    shot-noise filter ``rate(t) = sum over events e of exp(-(t-e)/tau) / tau``
    whose mean equals the true rate in steady state.
    """

    def __init__(self, time_constant: float, initial_rate: float = 0.0):
        if time_constant <= 0:
            raise ValueError("time_constant must be positive")
        if initial_rate < 0:
            raise ValueError("initial_rate must be non-negative")
        self.time_constant = float(time_constant)
        self._value = float(initial_rate)
        self._last_time = 0.0

    def observe(self, time: float) -> None:
        """Record one event at ``time`` (non-decreasing times required)."""
        self._decay_to(time)
        self._value += 1.0 / self.time_constant

    def rate(self, time: float) -> float:
        """Current rate estimate at ``time``."""
        self._decay_to(time)
        return self._value

    def _decay_to(self, time: float) -> None:
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        elapsed = time - self._last_time
        if elapsed > 0:
            self._value *= float(np.exp(-elapsed / self.time_constant))
            self._last_time = time


def estimate_loads_from_trace(
    network: Network,
    policy: RoutingPolicy,
    trace: ArrivalTrace,
    warmup: float = 10.0,
) -> np.ndarray:
    """Per-link primary-demand estimates from observed primary setups.

    Every call's primary path (as the policy would choose it — for
    bifurcated primaries the trace's per-call uniform makes the same pick
    the simulator would) counts one setup on each of its links, whether or
    not the call would be admitted: the setup packet "flies past" the link
    either way.  Rates are measured after ``warmup``.

    In expectation the estimate equals Equation 1's ``Lambda^k`` exactly.
    """
    if warmup < 0 or warmup >= trace.duration:
        raise ValueError("warmup must lie in [0, duration)")
    counts = np.zeros(network.num_links, dtype=np.int64)
    times = trace.times
    start = int(np.searchsorted(times, warmup, side="left"))
    od_index = trace.od_index
    uniforms = trace.uniforms
    for call in range(start, trace.num_calls):
        od = trace.od_pairs[od_index[call]]
        if od not in policy.choices or not policy.choices[od]:
            continue
        choice = policy.select_choice(od, float(uniforms[call]))
        for link in choice.primary:
            counts[link] += 1
    window = trace.duration - warmup
    return counts / window
