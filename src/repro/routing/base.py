"""Routing-policy interface shared by the call-by-call simulator.

A policy compiles, per O-D pair, one or more :class:`RouteChoice` objects
(a primary path plus its ordered alternates, all as link-index tuples) with
selection probabilities — the probabilistic selection implements the
"bifurcated" primaries of the min-link-loss rule; deterministic policies
have a single choice with probability one.

Two admission disciplines exist:

* **threshold** policies (single-path, uncontrolled and controlled alternate
  routing) admit a primary call iff every link has a free circuit, and an
  alternate call iff additionally every link's occupancy is *below its
  alternate-admission threshold* ``C - r`` — state protection;
* the **shadow-price** policy (Ott-Krishnan) instead scores each candidate
  path by a sum of per-link state-dependent prices.

The simulator dispatches on :attr:`RoutingPolicy.discipline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..topology.graph import Network
from ..topology.paths import Path, PathTable

__all__ = ["RouteChoice", "RoutingPolicy", "compile_route_choices"]


@dataclass(frozen=True, slots=True)
class RouteChoice:
    """One primary path and its ordered alternates, as link-index tuples.

    Slotted: the simulator materializes one of these per O-D pair per
    policy compilation and reads ``primary``/``alternates`` on every call,
    so the fixed layout keeps the per-call record small and the attribute
    loads cheap.
    """

    primary: tuple[int, ...]
    alternates: tuple[tuple[int, ...], ...]


class RoutingPolicy:
    """Base class: compiled per-O-D route choices plus admission data.

    ``choices[od]`` is a list of :class:`RouteChoice`; ``cum_probs[od]`` the
    matching cumulative selection probabilities (a per-call uniform variate
    from the trace picks the choice, keeping common random numbers intact).

    ``discipline`` is ``"threshold"`` or ``"shadow"``.  Threshold policies
    must provide :attr:`alt_thresholds` (per-link occupancy bound for
    alternate admission); shadow policies provide :attr:`price_tables`.
    """

    name: str = "base"
    discipline: str = "threshold"

    def __init__(
        self,
        network: Network,
        choices: Mapping[tuple[int, int], Sequence[RouteChoice]],
        cum_probs: Mapping[tuple[int, int], np.ndarray] | None = None,
    ):
        self.network = network
        self.choices: dict[tuple[int, int], tuple[RouteChoice, ...]] = {
            od: tuple(route_choices) for od, route_choices in choices.items()
        }
        if cum_probs is None:
            cum_probs = {
                od: np.ones(len(route_choices))
                for od, route_choices in self.choices.items()
            }
        self.cum_probs: dict[tuple[int, int], np.ndarray] = {
            od: np.asarray(probs, dtype=float) for od, probs in cum_probs.items()
        }
        for od, route_choices in self.choices.items():
            probs = self.cum_probs.get(od)
            if probs is None or probs.size != len(route_choices):
                raise ValueError(f"cumulative probabilities mismatch for {od}")
            if probs.size and not np.isclose(probs[-1], 1.0):
                raise ValueError(f"cumulative probabilities for {od} must end at 1")
        # Filled in by subclasses as appropriate.
        self.alt_thresholds: np.ndarray | None = None
        self.price_tables: list[np.ndarray] | None = None

    def select_choice(self, od: tuple[int, int], uniform: float) -> RouteChoice:
        """Pick a route choice using the call's uniform variate."""
        options = self.choices[od]
        if len(options) == 1:
            return options[0]
        index = int(np.searchsorted(self.cum_probs[od], uniform, side="right"))
        return options[min(index, len(options) - 1)]

    def describe(self) -> str:
        """Human-readable one-liner for experiment reports."""
        return self.name


def compile_route_choices(
    network: Network,
    table: PathTable,
    include_alternates: bool,
    splits: Mapping[tuple[int, int], Sequence[tuple[Path, float]]] | None = None,
    max_alternates: int | None = None,
) -> tuple[dict[tuple[int, int], list[RouteChoice]], dict[tuple[int, int], np.ndarray]]:
    """Compile a :class:`PathTable` into per-O-D route choices.

    Without ``splits`` every pair gets its single table primary.  With
    ``splits`` (bifurcated primaries) each listed path becomes a choice with
    its probability; the alternates of a choice are all the pair's loop-free
    paths except the chosen primary, in increasing-length order.

    ``max_alternates`` caps the crankback depth: only the first that many
    alternates (shortest first) are ever attempted — the signaling cost
    knob real deployments tune, and the ``m`` of the bistability model.
    """
    if max_alternates is not None and max_alternates < 0:
        raise ValueError("max_alternates must be non-negative")
    choices: dict[tuple[int, int], list[RouteChoice]] = {}
    cum_probs: dict[tuple[int, int], np.ndarray] = {}
    for od in table.od_pairs():
        pool = table.routes(od)  # primary first, then alternates by length
        ordered = sorted(pool, key=lambda p: (len(p), p))
        if splits is not None and od in splits:
            entries = [(tuple(path), prob) for path, prob in splits[od] if prob > 0]
            total = sum(prob for __, prob in entries)
            if not np.isclose(total, 1.0, atol=1e-6):
                raise ValueError(f"split probabilities for {od} sum to {total}")
            entries = [(path, prob / total) for path, prob in entries]
        else:
            entries = [(table.primary[od], 1.0)]
        od_choices: list[RouteChoice] = []
        probs: list[float] = []
        for primary_path, prob in entries:
            primary_links = network.path_links(primary_path)
            if include_alternates:
                alternates = tuple(
                    network.path_links(path)
                    for path in ordered
                    if path != tuple(primary_path)
                )
                if max_alternates is not None:
                    alternates = alternates[:max_alternates]
            else:
                alternates = ()
            od_choices.append(RouteChoice(primary=primary_links, alternates=alternates))
            probs.append(prob)
        choices[od] = od_choices
        cum_probs[od] = np.cumsum(probs)
    return choices, cum_probs
