"""Controlled alternate routing with *online* protection-level adaptation.

The paper computes each link's protection level from an a-priori primary
demand and notes the estimate could instead "be found from the primary call
set-ups that fly past the link".  This module closes that loop inside the
simulation: links count the primary set-ups they observe, periodically blend
the measured rate into an EWMA demand estimate, and recompute their
Equation-15 protection levels on the fly — no oracle knowledge, and free
tracking of nonstationary load (pair with
:mod:`repro.traffic.profiles`).

The run loop mirrors :class:`repro.sim.simulator.LossNetworkSimulator`'s
threshold discipline with two additions: per-link set-up counters and the
periodic threshold refresh.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..core.protection import min_protection_level
from ..sim.metrics import SimulationResult
from ..sim.trace import ArrivalTrace
from ..topology.graph import Network
from ..topology.paths import PathTable
from .base import RoutingPolicy, compile_route_choices

__all__ = ["AdaptiveProtectionSimulator", "ThresholdUpdate", "simulate_adaptive"]


@dataclass(frozen=True)
class ThresholdUpdate:
    """One protection refresh: the time and the per-link levels adopted."""

    time: float
    estimated_loads: np.ndarray
    protection_levels: np.ndarray


class AdaptiveProtectionSimulator:
    """Call-by-call simulation with links estimating their own demand.

    ``update_interval`` is the measurement window length: at each boundary
    every link folds ``setups_in_window / window`` into its EWMA estimate
    with weight ``ewma_weight`` and recomputes ``r`` for ``max_hops``.
    ``initial_loads`` seeds the estimates (defaults to zero — fully cold
    start, i.e. links begin unprotected and harden as they learn).
    """

    def __init__(
        self,
        network: Network,
        table: PathTable,
        trace: ArrivalTrace,
        warmup: float = 10.0,
        update_interval: float = 5.0,
        ewma_weight: float = 0.3,
        max_hops: int | None = None,
        initial_loads: np.ndarray | None = None,
    ):
        if warmup < 0 or warmup >= trace.duration:
            raise ValueError("warmup must lie in [0, duration)")
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        if not 0 < ewma_weight <= 1:
            raise ValueError("ewma_weight must lie in (0, 1]")
        self.network = network
        self.table = table
        self.trace = trace
        self.warmup = float(warmup)
        self.update_interval = float(update_interval)
        self.ewma_weight = float(ewma_weight)
        self.max_hops = table.max_hops if max_hops is None else max_hops
        if initial_loads is None:
            self.initial_loads = np.zeros(network.num_links, dtype=float)
        else:
            self.initial_loads = np.asarray(initial_loads, dtype=float)
            if self.initial_loads.shape != (network.num_links,):
                raise ValueError("initial_loads must be per-link")
        choices, cum_probs = compile_route_choices(
            network, table, include_alternates=True
        )
        self._policy = RoutingPolicy(network, choices, cum_probs)
        self.updates: list[ThresholdUpdate] = []

    def _recompute(self, estimates: np.ndarray, capacities: list[int]) -> list[int]:
        levels = [
            min_protection_level(float(estimates[i]), capacities[i], self.max_hops)
            if capacities[i] > 0
            else 0
            for i in range(self.network.num_links)
        ]
        return [capacities[i] - levels[i] for i in range(len(levels))]

    def run(self) -> SimulationResult:
        trace = self.trace
        network = self.network
        capacities = [int(c) for c in network.capacities()]
        num_links = network.num_links
        num_pairs = len(trace.od_pairs)
        policy = self._policy

        route_choice = []
        for od in trace.od_pairs:
            options = policy.choices.get(od, ())
            route_choice.append(options[0] if options else None)

        times = trace.times.tolist()
        od_index = trace.od_index.tolist()
        holding = trace.holding_times.tolist()
        warmup = self.warmup
        window = self.update_interval
        weight = self.ewma_weight

        estimates = self.initial_loads.copy()
        thresholds = self._recompute(estimates, capacities)
        self.updates = [
            ThresholdUpdate(
                time=0.0,
                estimated_loads=estimates.copy(),
                protection_levels=np.array(
                    [capacities[i] - thresholds[i] for i in range(num_links)]
                ),
            )
        ]
        setup_counts = [0] * num_links
        next_update = window

        occupancy = [0] * num_links
        departures: list[tuple[float, tuple[int, ...]]] = []
        offered = [0] * num_pairs
        blocked = [0] * num_pairs
        primary_carried = 0
        alternate_carried = 0

        heap_push = heapq.heappush
        heap_pop = heapq.heappop
        for call in range(len(times)):
            now = times[call]
            while now >= next_update:
                measured = np.asarray(setup_counts, dtype=float) / window
                estimates = (1.0 - weight) * estimates + weight * measured
                thresholds = self._recompute(estimates, capacities)
                self.updates.append(
                    ThresholdUpdate(
                        time=next_update,
                        estimated_loads=estimates.copy(),
                        protection_levels=np.array(
                            [capacities[i] - thresholds[i] for i in range(num_links)]
                        ),
                    )
                )
                setup_counts = [0] * num_links
                next_update += window
            while departures and departures[0][0] <= now:
                __, path = heap_pop(departures)
                for link in path:
                    occupancy[link] -= 1
            pair = od_index[call]
            counted = now >= warmup
            if counted:
                offered[pair] += 1
            choice = route_choice[pair]
            if choice is None:
                if counted:
                    blocked[pair] += 1
                continue
            # The primary set-up packet passes every primary link, admitted
            # or not — that is what the links measure.
            for link in choice.primary:
                setup_counts[link] += 1
            for link in choice.primary:
                if occupancy[link] >= capacities[link]:
                    break
            else:
                for link in choice.primary:
                    occupancy[link] += 1
                heap_push(departures, (now + holding[call], choice.primary))
                if counted:
                    primary_carried += 1
                continue
            for alt in choice.alternates:
                for link in alt:
                    if occupancy[link] >= thresholds[link]:
                        break
                else:
                    for link in alt:
                        occupancy[link] += 1
                    heap_push(departures, (now + holding[call], alt))
                    if counted:
                        alternate_carried += 1
                    break
            else:
                if counted:
                    blocked[pair] += 1

        return SimulationResult(
            od_pairs=trace.od_pairs,
            offered=np.asarray(offered, dtype=np.int64),
            blocked=np.asarray(blocked, dtype=np.int64),
            primary_carried=primary_carried,
            alternate_carried=alternate_carried,
            warmup=warmup,
            duration=trace.duration,
            seed=trace.seed,
        )


def simulate_adaptive(
    network: Network,
    table: PathTable,
    trace: ArrivalTrace,
    **kwargs,
) -> tuple[SimulationResult, list[ThresholdUpdate]]:
    """Run an :class:`AdaptiveProtectionSimulator`; returns result + updates."""
    simulator = AdaptiveProtectionSimulator(network, table, trace, **kwargs)
    result = simulator.run()
    return result, simulator.updates
