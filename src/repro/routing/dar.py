"""Random alternate selection: DAR (sticky) and power-of-d choices.

Two alternate-selection disciplines from the dynamic-routing literature, the
building blocks of the metastability / balanced-allocation study (ROADMAP;
Olesker-Taylor 2020, Luczak–McDiarmid):

* **DAR** (dynamic alternative routing) — each O-D pair remembers one
  *sticky* alternate.  A call that fails its primary tries only that
  alternate; if the alternate is infeasible too the call is lost **and** the
  pair resamples a new sticky alternate uniformly at random.  Success keeps
  the sticky choice.
* **power-of-d** — each failing call samples ``d`` alternates uniformly at
  random (with replacement) and takes the feasible one with the largest
  bottleneck headroom ``min(threshold - occupancy)``; ties go to the earliest
  draw.  ``d = 1`` is purely random alternate selection; ``d = 2`` is the
  classic two-choices rule.

Both run under the paper's state-protection thresholds: alternates need
occupancy strictly below ``C - r`` on every link, with ``r`` either a fixed
trunk reservation or the Theorem-1 level for the link's primary load.  With
``trunk_reservation=0`` the schemes are *uncontrolled* — exactly the regime
whose metastable bad mode the paper's control suppresses.

Randomness comes from the per-trace ``substream(seed, "dar")`` stream,
materialized by :meth:`route_draws` as **one row per call of the trace** and
consumed positionally by absolute call index.  The scalar event loop and the
lockstep batch kernel therefore see exactly the same draws, which is what
makes their equivalence bit-exact, and adding this consumer perturbs no
existing stream.
"""

from __future__ import annotations

import numpy as np

from ..core.protection import min_protection_levels
from ..sim.rng import substream
from ..topology.graph import Network
from ..topology.paths import PathTable
from .base import RoutingPolicy, compile_route_choices

__all__ = ["DynamicAlternateRouting", "PowerOfDAlternateRouting"]


class _RandomAlternatePolicy(RoutingPolicy):
    """Shared threshold setup for the random alternate-selection schemes.

    Thresholds come from one of two sources: a fixed ``trunk_reservation``
    (scalar or per-link, default 0 = uncontrolled), or Theorem-1 levels
    computed from ``primary_loads`` (+ ``max_hops``) via the batch protection
    entry point — pass one or the other, not both.  Splits are deliberately
    unsupported: each pair keeps a single route choice, so the random draw
    stream only has to resolve *alternate* selection.
    """

    def __init__(
        self,
        network: Network,
        table: PathTable,
        *,
        max_alternates: int | None = None,
        trunk_reservation: int | np.ndarray | None = None,
        primary_loads: np.ndarray | None = None,
        max_hops: int | None = None,
    ):
        choices, cum_probs = compile_route_choices(
            network, table, include_alternates=True, max_alternates=max_alternates
        )
        super().__init__(network, choices, cum_probs)
        capacities = network.capacities()
        if primary_loads is not None:
            if trunk_reservation is not None:
                raise ValueError(
                    "pass either trunk_reservation or primary_loads, not both"
                )
            loads = np.asarray(primary_loads, dtype=float)
            if loads.shape != (network.num_links,):
                raise ValueError(
                    f"primary_loads must have shape ({network.num_links},), "
                    f"got {loads.shape}"
                )
            hops = table.max_hops if max_hops is None else max_hops
            levels = min_protection_levels(loads, capacities, hops)
        else:
            if max_hops is not None:
                raise ValueError("max_hops only applies with primary_loads")
            reservation = 0 if trunk_reservation is None else trunk_reservation
            levels = np.broadcast_to(
                np.asarray(reservation, dtype=np.int64), capacities.shape
            ).copy()
            if (levels < 0).any() or (levels > capacities).any():
                raise ValueError("trunk reservation must lie in [0, capacity]")
        self.protection_levels = levels
        self.alt_thresholds = capacities - levels

    def route_draws(self, trace) -> np.ndarray:
        """The policy's uniform draws for every call of ``trace``, in order.

        Indexed positionally by call number, never consumed sequentially —
        call ``j`` uses row ``j`` whether or not earlier calls needed a draw.
        """
        raise NotImplementedError


class DynamicAlternateRouting(_RandomAlternatePolicy):
    """DAR: one sticky random alternate per pair, resampled on failure."""

    name = "dar"
    discipline = "dar"

    def route_draws(self, trace) -> np.ndarray:
        """One uniform per call: the resample draw if this call needs one."""
        return substream(trace.seed, "dar").random(trace.num_calls)


class PowerOfDAlternateRouting(_RandomAlternatePolicy):
    """Power-of-d: sample ``d`` random alternates, take the best feasible one."""

    name = "power-of-d"
    discipline = "power-of-d"

    def __init__(self, network: Network, table: PathTable, *, d: int = 2, **kwargs):
        if d < 1:
            raise ValueError("d must be >= 1")
        super().__init__(network, table, **kwargs)
        self.d = int(d)

    def route_draws(self, trace) -> np.ndarray:
        """A ``(num_calls, d)`` uniform matrix: this call's candidate draws."""
        return substream(trace.seed, "dar").random((trace.num_calls, self.d))
