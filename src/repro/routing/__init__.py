"""Routing policies: single-path, alternate (controlled/uncontrolled), shadow-price."""

from .alternate import (
    ControlledAlternateRouting,
    LengthAdaptiveControlledRouting,
    UncontrolledAlternateRouting,
    per_link_max_hops,
)
from .adaptive import (
    AdaptiveProtectionSimulator,
    ThresholdUpdate,
    simulate_adaptive,
)
from .base import RouteChoice, RoutingPolicy, compile_route_choices
from .dar import DynamicAlternateRouting, PowerOfDAlternateRouting
from .estimator import EwmaRateEstimator, estimate_loads_from_trace
from .least_busy import LeastBusyAlternateRouting
from .minloss import MinLossSolution, optimize_primary_flows
from .shadow import OttKrishnanRouting, link_shadow_prices
from .single_path import SinglePathRouting

__all__ = [
    "RouteChoice",
    "RoutingPolicy",
    "compile_route_choices",
    "SinglePathRouting",
    "UncontrolledAlternateRouting",
    "ControlledAlternateRouting",
    "LengthAdaptiveControlledRouting",
    "per_link_max_hops",
    "AdaptiveProtectionSimulator",
    "ThresholdUpdate",
    "simulate_adaptive",
    "LeastBusyAlternateRouting",
    "DynamicAlternateRouting",
    "PowerOfDAlternateRouting",
    "OttKrishnanRouting",
    "link_shadow_prices",
    "MinLossSolution",
    "optimize_primary_flows",
    "EwmaRateEstimator",
    "estimate_loads_from_trace",
]
