"""Ott-Krishnan separable shadow-price routing (the paper's comparator).

Ott & Krishnan [34] route state-dependently by *shadow prices*: the expected
increase in future lost calls caused by accepting a call on a path, in a
given network state.  Under their separability assumption the path price is
the sum of per-link prices, each computed from the link's own M/M/C/C
occupancy chain under the base (state-independent) policy.  A call is routed
on the cheapest candidate path unless even that price exceeds the call's
revenue (normalized to one), in which case it is blocked.

Per the paper's Section 4.2 we use the *unreduced* primary load intensities
as each link's offered rate ("In their work they use a reduced-load
approximation ... Here we have simply chosen to use the unreduced primary
load intensities").  The per-link price of accepting at occupancy ``s`` is
exact for the M/M/C/C chain::

    p(s) = nu * B(nu, C) * E[tau_{s -> s+1}]

the same first-passage argument as the paper's Equation 3 (which the paper
itself attributes to Ott & Krishnan).  The paper finds this scheme performs
poorly on the sparse NSFNet because the separable approximation "swings more
wildly when the network is sparse".
"""

from __future__ import annotations

import numpy as np

from ..core.markov import link_chain
from ..topology.graph import Network
from ..topology.paths import PathTable
from .base import RoutingPolicy, compile_route_choices

__all__ = ["OttKrishnanRouting", "link_shadow_prices"]


def link_shadow_prices(primary_rate: float, capacity: int) -> np.ndarray:
    """Shadow-price table ``p(s)``, ``s = 0 .. capacity``; ``p(C) = inf``.

    ``p(s)`` is the expected number of future primary calls lost because one
    extra call was accepted at occupancy ``s`` on an M/M/C/C link offered
    ``primary_rate`` Erlangs.  A link with no primary demand prices at zero
    (nothing to displace); a full link prices at infinity.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    prices = np.empty(capacity + 1, dtype=float)
    prices[capacity] = np.inf
    if primary_rate <= 0.0:
        prices[:capacity] = 0.0
        return prices
    chain = link_chain(primary_rate, capacity)
    blocking = chain.time_blocking()
    tau = chain.upward_passage_times()
    prices[:capacity] = primary_rate * blocking * tau
    return prices


class OttKrishnanRouting(RoutingPolicy):
    """Separable shadow-price routing over the loop-free path pool.

    ``primary_loads`` feeds each link's price table (unreduced intensities).
    The candidate paths per O-D pair are the same pool the alternate-routing
    policies use (primary first, then increasing length), but the scheme has
    no primary/alternate asymmetry: it simply takes the cheapest path, with
    the min-hop primary winning ties through evaluation order.
    """

    name = "ott-krishnan"
    discipline = "shadow"

    def __init__(
        self,
        network: Network,
        table: PathTable,
        primary_loads: np.ndarray,
        revenue: float = 1.0,
    ):
        choices, cum_probs = compile_route_choices(
            network, table, include_alternates=True, splits=None
        )
        super().__init__(network, choices, cum_probs)
        loads = np.asarray(primary_loads, dtype=float)
        if loads.shape != (network.num_links,):
            raise ValueError(
                f"primary_loads must have shape ({network.num_links},), got {loads.shape}"
            )
        if revenue <= 0:
            raise ValueError("revenue must be positive")
        self.revenue = float(revenue)
        self.primary_loads = loads
        capacities = network.capacities()
        self.price_tables = [
            link_shadow_prices(loads[link.index], int(capacities[link.index]))
            if capacities[link.index] > 0
            else np.array([np.inf])
            for link in network.links
        ]
