"""Single-path (pure state-independent) routing.

The paper's baseline: a call may complete on its primary path alone — no
alternate is ever tried.  "Single-path" is loose in the paper's sense: with
bifurcated primaries the route is still chosen with some probability among a
suite, independent of state, and only that chosen route is attempted.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..topology.graph import Network
from ..topology.paths import Path, PathTable
from .base import RoutingPolicy, compile_route_choices

__all__ = ["SinglePathRouting"]


class SinglePathRouting(RoutingPolicy):
    """Admit a call iff its (state-independently chosen) primary has room."""

    name = "single-path"
    discipline = "threshold"

    def __init__(
        self,
        network: Network,
        table: PathTable,
        splits: Mapping[tuple[int, int], Sequence[tuple[Path, float]]] | None = None,
    ):
        choices, cum_probs = compile_route_choices(
            network, table, include_alternates=False, splits=splits
        )
        super().__init__(network, choices, cum_probs)
        # No alternates exist, but the simulator still wants an array.
        self.alt_thresholds = np.zeros(network.num_links, dtype=np.int64)
