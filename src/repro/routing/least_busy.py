"""Least-busy-alternative routing with trunk reservation (Mitra-Gibbens family).

The paper's Section 3.2 compares its protection levels against Mitra &
Gibbens' optimal trunk reservations for *state-dependent* alternate
selection on symmetric fully-connected networks [28, 29]: when the direct
path blocks, the call takes the **least busy** qualifying alternate — the
one maximizing the minimum free capacity over its links — rather than the
shortest, subject to the same reservation rule.  (Dynamic Alternate Routing
and ALBA are operational variants of the same idea.)

This policy generalizes that family to our general-mesh setting: candidates
are the pair's loop-free alternates; an alternate qualifies when every link
sits below its protection threshold; among qualifiers the one with the
largest bottleneck headroom *relative to its threshold* wins, with path
length (then order) breaking ties — so on a fully-connected network with
two-hop alternates this is exactly LBA with trunk reservation.

Requires global state at decision time (the paper's stated reason for NOT
adopting such schemes on geographically distributed meshes); it exists here
as the literature baseline.
"""

from __future__ import annotations

import numpy as np

from ..core.protection import min_protection_level
from ..topology.graph import Network
from ..topology.paths import PathTable
from .base import RoutingPolicy, compile_route_choices

__all__ = ["LeastBusyAlternateRouting"]


class LeastBusyAlternateRouting(RoutingPolicy):
    """State-dependent alternate *selection* under state protection.

    ``primary_loads`` and ``max_hops`` size the per-link reservation exactly
    as for :class:`ControlledAlternateRouting`; ``reservation_override``
    takes precedence when given (e.g. the Mitra-Gibbens optimal values).
    """

    name = "least-busy"
    discipline = "least-busy"

    def __init__(
        self,
        network: Network,
        table: PathTable,
        primary_loads: np.ndarray,
        max_hops: int | None = None,
        reservation_override: np.ndarray | None = None,
        max_alternates: int | None = None,
    ):
        choices, cum_probs = compile_route_choices(
            network, table, include_alternates=True, max_alternates=max_alternates
        )
        super().__init__(network, choices, cum_probs)
        loads = np.asarray(primary_loads, dtype=float)
        if loads.shape != (network.num_links,):
            raise ValueError(
                f"primary_loads must have shape ({network.num_links},), got {loads.shape}"
            )
        hops = table.max_hops if max_hops is None else max_hops
        capacities = network.capacities()
        if reservation_override is not None:
            levels = np.asarray(reservation_override, dtype=np.int64)
            if levels.shape != (network.num_links,):
                raise ValueError("reservation_override must be per-link")
            if (levels < 0).any() or (levels > capacities).any():
                raise ValueError("reservations must lie in [0, capacity]")
        else:
            levels = np.array(
                [
                    min_protection_level(loads[link.index], int(capacities[link.index]), hops)
                    if capacities[link.index] > 0
                    else 0
                    for link in network.links
                ],
                dtype=np.int64,
            )
        self.max_hops = hops
        self.primary_loads = loads
        self.protection_levels = levels
        self.alt_thresholds = capacities - levels
