"""Link-failure scenarios (Section 4.2.2, "Link failures").

The paper disables the duplex links ``2<->3`` and, separately, ``7<->9`` in
the NSFNet model and observes that blocking rises but the *relative ordering*
of single-path, uncontrolled and controlled alternate routing is preserved.

A failure scenario is applied by copying the network, failing the links, and
rebuilding everything derived from topology — path tables, primary loads and
protection levels all change when links disappear, exactly as the paper notes
("topology changes ... influence the computation of the state-protection
level only insofar as it influences the primary traffic demand").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.graph import Network
from ..topology.paths import PathTable, build_path_table
from ..traffic.matrix import TrafficMatrix

__all__ = ["FailureScenario", "apply_failures"]


@dataclass(frozen=True)
class FailureScenario:
    """A set of duplex links to take out of service."""

    duplex_links: tuple[tuple[int, int], ...]
    name: str = ""

    def describe(self) -> str:
        label = self.name or "failure"
        pairs = ", ".join(f"{a}<->{b}" for a, b in self.duplex_links)
        return f"{label}: {pairs}" if pairs else f"{label}: none"


@dataclass(frozen=True)
class FailedNetwork:
    """A failure-adjusted network with its re-derived routing inputs."""

    network: Network
    table: PathTable
    primary_loads: np.ndarray
    scenario: FailureScenario


def apply_failures(
    network: Network,
    traffic: TrafficMatrix,
    scenario: FailureScenario,
    max_hops: int | None = None,
) -> FailedNetwork:
    """Copy ``network``, fail the scenario's links, re-derive routing inputs.

    Traffic whose O-D pair becomes disconnected keeps its demand (those calls
    will all block); pairs merely rerouted contribute their demand to the new
    primary paths' loads.
    """
    failed = network.copy()
    for a, b in scenario.duplex_links:
        failed.fail_duplex_link(a, b)
    table = build_path_table(failed, max_hops=max_hops)
    loads = np.zeros(failed.num_links, dtype=float)
    for od, demand in traffic.positive_pairs():
        path = table.primary.get(od)
        if path is None:
            continue  # disconnected pair: no primary load anywhere
        for link_index in failed.path_links(path):
            loads[link_index] += demand
    return FailedNetwork(network=failed, table=table, primary_loads=loads, scenario=scenario)
