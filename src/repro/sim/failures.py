"""Link-failure scenarios (Section 4.2.2, "Link failures") — static and dynamic.

The paper disables the duplex links ``2<->3`` and, separately, ``7<->9`` in
the NSFNet model and observes that blocking rises but the *relative ordering*
of single-path, uncontrolled and controlled alternate routing is preserved.

A failure scenario is applied by copying the network, failing the links, and
rebuilding everything derived from topology — path tables, primary loads and
protection levels all change when links disappear, exactly as the paper notes
("topology changes ... influence the computation of the state-protection
level only insofar as it influences the primary traffic demand").

Beyond the paper's static model, a scenario may also carry a *dynamic*
:class:`~repro.sim.faultplane.FaultTimeline`: links failing and recovering
mid-run.  Static ``duplex_links`` are applied before the run starts; the
timeline is consumed by the simulator as the clock passes each event (see
``LossNetworkSimulator``'s ``faults`` argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..topology.graph import Network
from ..topology.paths import PathTable, build_path_table
from ..traffic.matrix import TrafficMatrix
from .faultplane import FaultTimeline

__all__ = ["FailureScenario", "FailedNetwork", "apply_failures"]


@dataclass(frozen=True)
class FailureScenario:
    """Duplex links out of service up front, plus an optional dynamic timeline.

    ``duplex_links`` is the paper's static model: those links are failed
    before the run.  ``timeline`` adds mid-run churn on top — events fire as
    simulation time passes them.
    """

    duplex_links: tuple[tuple[int, int], ...]
    name: str = ""
    timeline: FaultTimeline = field(default_factory=FaultTimeline)

    @property
    def is_dynamic(self) -> bool:
        return bool(self.timeline)

    def describe(self) -> str:
        label = self.name or "failure"
        pairs = ", ".join(f"{a}<->{b}" for a, b in self.duplex_links)
        static = f"{label}: {pairs}" if pairs else f"{label}: none"
        if not self.timeline:
            return static
        return f"{static} + {self.timeline.describe()}"


@dataclass(frozen=True)
class FailedNetwork:
    """A failure-adjusted network with its re-derived routing inputs."""

    network: Network
    table: PathTable
    primary_loads: np.ndarray
    scenario: FailureScenario


def _validate_scenario_links(network: Network, scenario: FailureScenario) -> None:
    """Reject links that don't exist or appear twice, naming the pair.

    Unknown links raise ``KeyError`` (via :meth:`Network.duplex_link_indices`)
    and duplicates — including ``(a, b)`` listed again as ``(b, a)`` — raise
    ``ValueError``, both naming the offending pair, instead of silently
    accepting them or failing deep inside the path rebuild.
    """
    seen: set[tuple[int, int]] = set()
    for a, b in scenario.duplex_links:
        network.duplex_link_indices(a, b)
        normalized = (min(a, b), max(a, b))
        if normalized in seen:
            raise ValueError(
                f"duplex link {a}<->{b} appears more than once in scenario "
                f"{scenario.name or '(unnamed)'}"
            )
        seen.add(normalized)


def apply_failures(
    network: Network,
    traffic: TrafficMatrix,
    scenario: FailureScenario,
    max_hops: int | None = None,
) -> FailedNetwork:
    """Copy ``network``, fail the scenario's static links, re-derive inputs.

    Traffic whose O-D pair becomes disconnected keeps its demand (those calls
    will all block); pairs merely rerouted contribute their demand to the new
    primary paths' loads.  The scenario's links are validated first: unknown
    pairs raise ``KeyError`` and duplicated pairs ``ValueError``, each naming
    the offending pair.

    A dynamic ``scenario.timeline`` is validated against the network too but
    not applied here — pass it to the simulator, which replays it mid-run.
    """
    _validate_scenario_links(network, scenario)
    scenario.timeline.resolve(network)  # KeyError on unknown timeline links
    failed = network.copy()
    for a, b in scenario.duplex_links:
        failed.fail_duplex_link(a, b)
    table = build_path_table(failed, max_hops=max_hops)
    loads = np.zeros(failed.num_links, dtype=float)
    for od, demand in traffic.positive_pairs():
        path = table.primary.get(od)
        if path is None:
            continue  # disconnected pair: no primary load anywhere
        for link_index in failed.path_links(path):
            loads[link_index] += demand
    return FailedNetwork(network=failed, table=table, primary_loads=loads, scenario=scenario)
