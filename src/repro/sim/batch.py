"""Lockstep many-seeds batch simulator: struct-of-arrays, one admission kernel.

The per-seed loops in :mod:`repro.sim.simulator` advance one event stream per
Python iteration.  This module advances a whole *batch* of seeds in lockstep
instead: occupancy lives in one ``(seeds, links)`` int32 array, every trace's
arrival/departure stream is presorted into shared **epochs**, and each epoch
is one vectorized admission step — departure release, primary test, alternate
resolution, scatter — executed for all seeds at once.  The per-link analytic
kernels it leans on are the batch entry points of the core:
:func:`repro.core.erlang.erlang_b_batch` for blocking and
:func:`repro.core.protection.min_protection_levels` for whole-network
Theorem-1 thresholds (shared with the serve tier's threshold recompute).

**Epoch mapping.**  Epoch ``k`` consists of every departure the scalar loop
would process before arrival ``k``, then arrival ``k`` itself, for every seed
in parallel (shorter traces idle through trailing epochs).  The departure of
call ``j`` with departure time ``t`` belongs to epoch
``max(searchsorted(times, t, side="left"), j + 1)``: the first arrival at or
after ``t``, clamped so a call never departs before its own arrival (the
zero-holding tie the fast loop resolves through its stable sort).  Within an
epoch, departure order is irrelevant — releases are pure decrements — so one
``bincount`` scatter per epoch reproduces the scalar loops' occupancy
trajectory exactly, and with it every admission decision, bit for bit.

**Sentinel links.**  Each seed's occupancy row has two extra cells: ``FREE``
(capacity ~2^30, never blocks) absorbs the padding of short paths, and
``FULL`` (capacity 0, always blocks) encodes disconnected pairs and missing
alternates.  A blocked call stores path id ``-1``, which gathers the
all-``FREE`` last row of the path table — its scatter and its release are
no-ops by construction, so blocked calls flow through the same vector code
path as admitted ones.

Supported disciplines are ``threshold`` (the paper's two tiers),
``dar`` and ``power-of-d`` (the random-alternate schemes of
:mod:`repro.routing.dar`, whose positional draw streams are precomputed per
seed).  Everything else — multirate traces, fault planes, lossy signaling,
shadow prices — falls back to the per-seed loops; :func:`batch_ineligibility`
names the reason.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..routing.base import RoutingPolicy
from ..topology.graph import Network
from .metrics import SimulationResult
from .trace import ArrivalTrace

__all__ = [
    "BATCH_DISCIPLINES",
    "BatchSimulator",
    "batch_ineligibility",
    "simulate_batch",
]

#: Routing disciplines the lockstep kernel can express.
BATCH_DISCIPLINES = frozenset({"threshold", "length-threshold", "dar", "power-of-d"})

_HUGE = np.int32(2**30)  # sentinel capacity: never blocks, never overflows
_CHUNK = 2048  # epochs whose primary tables are gathered per chunk


def batch_ineligibility(
    policy: RoutingPolicy,
    traces: Sequence[ArrivalTrace],
    threshold_schedule: Sequence[tuple] | None = None,
) -> str | None:
    """Why the batch kernel cannot run ``(policy, traces)``, or None if it can.

    The scheduler layers use this to decide between one kernel invocation and
    the per-seed fallback; :class:`BatchSimulator` raises it as the error
    message when constructed with an inexpressible configuration.

    ``threshold_schedule`` is the optional list of mid-run threshold
    updates (see :class:`BatchSimulator`); piecewise-constant thresholds
    are expressible only for the deterministic-alternate disciplines.
    """
    if not traces:
        return "no traces to simulate"
    if policy.discipline not in BATCH_DISCIPLINES:
        return f"discipline {policy.discipline!r} has no batch kernel"
    if policy.discipline == "length-threshold":
        if getattr(policy, "length_thresholds", None) is None:
            return f"policy {policy.name!r} lacks per-length thresholds"
    elif policy.alt_thresholds is None:
        return f"policy {policy.name!r} lacks alternate thresholds"
    if policy.discipline in ("dar", "power-of-d"):
        if not hasattr(policy, "route_draws"):
            return f"policy {policy.name!r} lacks a route_draws stream"
        if any(len(options) > 1 for options in policy.choices.values()):
            return "random-alternate policies must be single-choice per pair"
        if threshold_schedule:
            return (
                "mid-run threshold updates require the 'threshold' or "
                "'length-threshold' discipline"
            )
    if threshold_schedule:
        last = 0.0
        for item in threshold_schedule:
            if len(item) != 2:
                return "threshold_schedule entries must be (time, thresholds)"
            when = float(item[0])
            if not when > last:
                return (
                    "threshold_schedule times must be positive and strictly "
                    "increasing"
                )
            last = when
    od_pairs = traces[0].od_pairs
    for trace in traces:
        if trace.bandwidths is not None:
            return "multirate traces need the general loop"
        if trace.class_index is not None:
            return "multi-class traces need the general loop"
        if tuple(trace.od_pairs) != tuple(od_pairs):
            return "traces must share one O-D pair universe"
    return None


class BatchSimulator:
    """Run many seeds of one ``(network, policy)`` configuration in lockstep.

    Construction compiles the policy into interned path tables (shared by all
    seeds) and packs the traces into epoch-major arrays; :meth:`run` executes
    the kernel and returns one :class:`SimulationResult` per trace, in trace
    order, each bit-identical to what the scalar loops produce for that seed.
    """

    def __init__(
        self,
        network: Network,
        policy: RoutingPolicy,
        traces: Sequence[ArrivalTrace],
        warmup: float = 10.0,
        threshold_schedule: Sequence[tuple] | None = None,
    ):
        traces = list(traces)
        reason = batch_ineligibility(policy, traces, threshold_schedule)
        if reason is not None:
            raise ValueError(f"batch kernel cannot run this configuration: {reason}")
        for trace in traces:
            if warmup < 0 or warmup >= trace.duration:
                raise ValueError(
                    f"warmup must lie in [0, duration={trace.duration}), got {warmup}"
                )
        if policy.network is not network:
            if policy.network.num_links != network.num_links:
                raise ValueError("policy was compiled for a different network")
        self.network = network
        self.policy = policy
        self.traces = traces
        self.warmup = float(warmup)
        self.threshold_schedule = (
            [(float(t), thr) for t, thr in threshold_schedule]
            if threshold_schedule
            else None
        )
        self._compile_policy()
        self._pack_traces()

    # ------------------------------------------------------------- compile

    def _compile_policy(self) -> None:
        """Intern every path once; build the flat entry/threshold tables."""
        policy = self.policy
        num_links = self.network.num_links
        capacities = self.network.capacities().astype(np.int64)
        od_pairs = self.traces[0].od_pairs

        paths: list[tuple[int, ...]] = []
        index: dict[tuple[int, ...], int] = {}

        def intern(path: tuple[int, ...]) -> int:
            pid = index.get(path)
            if pid is None:
                pid = len(paths)
                index[path] = pid
                paths.append(path)
            return pid

        # The empty tuple is the "infeasible path": its row starts with the
        # FULL sentinel, so it can never be admitted.  It is the primary of
        # disconnected pairs and the padding entry of short alternate lists.
        infeasible = intern(())
        entry_primary: list[int] = []
        entry_alts: list[tuple[int, ...]] = []
        entry_base = np.zeros(len(od_pairs), dtype=np.int64)
        cum_rows: list[np.ndarray | None] = []
        for pair, od in enumerate(od_pairs):
            options = policy.choices.get(od, ())
            entry_base[pair] = len(entry_primary)
            if not options:
                entry_primary.append(infeasible)
                entry_alts.append(())
            for choice in options:
                entry_primary.append(intern(tuple(choice.primary)))
                entry_alts.append(
                    tuple(intern(tuple(alt)) for alt in choice.alternates)
                )
            cum_rows.append(policy.cum_probs[od] if len(options) > 1 else None)

        num_paths = len(paths)
        free, full = num_links, num_links + 1
        self._row_width = num_links + 2
        alt_width = max((len(path) for path in paths), default=1) or 1
        primary_pids = set(entry_primary)
        prim_width = (
            max((len(paths[pid]) for pid in primary_pids), default=1) or 1
        )

        # Row `num_paths` stays all-FREE: the gather/scatter target of path
        # id -1 (blocked calls), a no-op against the absorber cells.
        path_links = np.full((num_paths + 1, alt_width), free, dtype=np.int32)
        for pid, path in enumerate(paths):
            if path:
                path_links[pid, : len(path)] = path
            else:
                path_links[pid, 0] = full
        cap_row = np.concatenate([capacities, [int(_HUGE), 0]]).astype(np.int32)

        alt_max = max((len(alts) for alts in entry_alts), default=1) or 1
        entry_alt_pids = np.full(
            (len(entry_primary), alt_max), infeasible, dtype=np.int32
        )
        for entry, alts in enumerate(entry_alts):
            if alts:
                entry_alt_pids[entry, : len(alts)] = alts

        # Per-path alternate thresholds, one (paths, width) table per
        # schedule segment.  Segment 0 is the policy's own thresholds;
        # each ``threshold_schedule`` entry appends one more.  For the
        # ``length-threshold`` discipline a path's row comes from the
        # table keyed by its own hop count (primary-only lengths never
        # face an alternate test, so they fall back to plain capacity).
        if policy.discipline == "length-threshold":
            base_spec: object = {
                int(h): np.asarray(row, dtype=np.int64)
                for h, row in policy.length_thresholds.items()
            }
        else:
            base_spec = np.asarray(policy.alt_thresholds, dtype=np.int64)
        specs = [base_spec]
        if self.threshold_schedule:
            specs.extend(spec for __, spec in self.threshold_schedule)
        path_lengths = np.array([len(p) for p in paths] + [0], dtype=np.int64)
        stack = np.empty((len(specs), num_paths + 1, alt_width), dtype=np.int32)
        for si, spec in enumerate(specs):
            stack[si] = self._segment_thresholds(
                spec, path_links, path_lengths, capacities
            )
        self._free_link = free
        self._path_links = path_links
        self._path_thr = stack
        self._prim_links = path_links[:, :prim_width].copy()
        self._prim_cap = cap_row[self._prim_links]
        self._entry_primary = np.asarray(entry_primary, dtype=np.int32)
        self._entry_alts = entry_alt_pids
        self._entry_base = entry_base
        self._cum_rows = cum_rows
        self._alt_counts = np.array(
            [len(alts) for alts in entry_alts], dtype=np.int64
        )
        self._num_pairs = len(od_pairs)
        self._switch_times = (
            np.array([t for t, __ in self.threshold_schedule], dtype=float)
            if self.threshold_schedule
            else None
        )

    def _segment_thresholds(
        self,
        spec,
        path_links: np.ndarray,
        path_lengths: np.ndarray,
        capacities: np.ndarray,
    ) -> np.ndarray:
        """One (paths+1, width) per-path threshold table for ``spec``.

        ``spec`` is either a flat per-link vector or, for the
        ``length-threshold`` discipline, a ``{hop_length: per-link}``
        mapping; hop lengths absent from the mapping fall back to plain
        capacity (only primary-only lengths, which never face the
        alternate test).  Sentinel columns keep their FREE/FULL meaning.
        """
        num_links = capacities.size

        def row_of(vec) -> np.ndarray:
            flat = np.asarray(vec, dtype=np.int64)
            if flat.shape != (num_links,):
                raise ValueError(
                    f"threshold vectors must have shape ({num_links},), "
                    f"got {flat.shape}"
                )
            return np.concatenate([flat, [int(_HUGE), 0]]).astype(np.int32)

        if isinstance(spec, dict):
            out = row_of(capacities)[path_links]
            for length, vec in spec.items():
                mask = path_lengths == int(length)
                if mask.any():
                    out[mask] = row_of(vec)[path_links[mask]]
            return out
        return row_of(spec)[path_links]

    # ---------------------------------------------------------------- pack

    def _pack_traces(self) -> None:
        """Resolve choices and departure epochs; build the epoch-major arrays.

        Staging arrays are seed-major (contiguous per-seed writes) and
        transposed once at the end into the epoch-major layout the kernel
        walks.  Departures are ordered by epoch through one non-stable sort
        of ``epoch * stride + flat_call`` composite keys — within an epoch
        the release order is irrelevant (releases are summed by ``bincount``
        before any admission test), so stability is not needed and the
        composite sort is several times cheaper than a stable argsort.
        """
        traces = self.traces
        num_seeds = len(traces)
        num_epochs = max(trace.num_calls for trace in traces)
        stage = np.zeros((num_seeds, num_epochs), dtype=np.int32)
        dep_key_parts = []
        stride = num_epochs * num_seeds
        for s, trace in enumerate(traces):
            n = trace.num_calls
            # Route-choice resolution is state-independent (per-call uniform
            # against the pair's cumulative split), so it vectorizes up front.
            entries = self._entry_base[trace.od_index]
            for pair, cum in enumerate(self._cum_rows):
                if cum is None:
                    continue
                mask = trace.od_index == pair
                if mask.any():
                    u = trace.uniforms[mask]
                    entries[mask] += (u[:, None] >= cum[None, :-1]).sum(axis=1)
            stage[s, :n] = entries
            departure_t = trace.times + trace.holding_times
            call_ids = np.arange(n)
            epoch = np.maximum(
                np.searchsorted(trace.times, departure_t, side="left"),
                call_ids + 1,
            )
            keep = epoch < n  # departures after the last arrival never matter
            flat = call_ids[keep] * num_seeds + s  # epoch-major admit-slot id
            dep_key_parts.append(epoch[keep] * stride + flat)

        dep_key = np.sort(np.concatenate(dep_key_parts))
        dep_epoch = dep_key // stride
        counts = np.bincount(dep_epoch + 1, minlength=num_epochs + 1)
        self._dep_bounds = np.cumsum(counts).tolist()
        # Flat (epoch-major) index of each departing call's admit-slot, and
        # the departing seed's row offset into the flat occupancy array.
        self._dep_flat = dep_key % stride
        self._dep_off = (
            (self._dep_flat % num_seeds) * self._row_width
        ).astype(np.int32)
        call_entry = np.ascontiguousarray(stage.T)
        self._call_entry = call_entry
        self._num_epochs = num_epochs

        # Piecewise-constant thresholds: each arrival's schedule segment,
        # epoch-major like everything else the kernel gathers.  ``side=
        # "right"`` makes an arrival exactly at a switch time see the new
        # thresholds, matching the serving engine's ``now >= t`` swap.
        if self._switch_times is not None:
            seg_stage = np.zeros((num_seeds, num_epochs), dtype=np.int32)
            for s, trace in enumerate(traces):
                n = trace.num_calls
                seg_stage[s, :n] = np.searchsorted(
                    self._switch_times, trace.times, side="right"
                )
            self._seg = np.ascontiguousarray(seg_stage.T)
        else:
            self._seg = None

        discipline = self.policy.discipline
        if discipline == "dar":
            stage[:] = 0
            for s, trace in enumerate(traces):
                n = trace.num_calls
                draws = self.policy.route_draws(trace)
                n_alts = self._alt_counts[call_entry[:n, s]]
                stage[s, :n] = (draws * n_alts).astype(np.int64)
            self._resample = np.ascontiguousarray(stage.T)
        elif discipline == "power-of-d":
            d = self.policy.d
            cand_stage = np.zeros((num_seeds, num_epochs, d), dtype=np.int32)
            for s, trace in enumerate(traces):
                n = trace.num_calls
                draws = self.policy.route_draws(trace)
                n_alts = self._alt_counts[call_entry[:n, s]]
                cand_stage[s, :n, :] = (draws * n_alts[:, None]).astype(np.int64)
            self._candidates = np.ascontiguousarray(
                cand_stage.transpose(1, 0, 2)
            )

    # -------------------------------------------------------------- kernel

    def run(self) -> list[SimulationResult]:
        """Advance all seeds through every epoch; return per-seed results."""
        num_seeds = len(self.traces)
        row_width = self._row_width
        flat_size = num_seeds * row_width
        occ = np.zeros(flat_size, dtype=np.int32)
        admit_pid = np.full((self._num_epochs, num_seeds), -1, dtype=np.int32)
        admit_flat = admit_pid.reshape(-1)
        off_col = np.arange(num_seeds, dtype=np.int32) * row_width

        discipline = self.policy.discipline
        path_links = self._path_links
        path_thr = self._path_thr  # (segments, paths + 1, width)
        path_thr0 = path_thr[0]
        seg = self._seg
        prim_links = self._prim_links
        prim_cap = self._prim_cap
        entry_primary = self._entry_primary
        entry_alts = self._entry_alts
        free_link = self._free_link
        dep_flat, dep_off = self._dep_flat, self._dep_off
        bounds = self._dep_bounds
        call_entry = self._call_entry
        if discipline == "dar":
            sticky = np.zeros((num_seeds, entry_primary.size), dtype=np.int32)
            resample = self._resample
        elif discipline == "power-of-d":
            candidates = self._candidates

        for k0 in range(0, self._num_epochs, _CHUNK):
            k1 = min(k0 + _CHUNK, self._num_epochs)
            # Chunked gathers keep the per-epoch tables contiguous without
            # materializing (num_epochs, seeds, width) arrays all at once.
            ent_c = call_entry[k0:k1]
            prim_pid_c = entry_primary[ent_c]
            prim_rows_c = prim_links[prim_pid_c] + off_col[None, :, None]
            prim_cap_c = prim_cap[prim_pid_c]
            for k in range(k0, k1):
                kk = k - k0
                a, b = bounds[k], bounds[k + 1]
                if a != b:
                    released = path_links[admit_flat[dep_flat[a:b]]]
                    occ -= np.bincount(
                        (released + dep_off[a:b, None]).ravel(),
                        minlength=flat_size,
                    )
                rows = prim_rows_c[kk]
                ok = (occ[rows] < prim_cap_c[kk]).all(axis=1)
                pid_col = prim_pid_c[kk]
                if ok.all():
                    occ += np.bincount(rows.ravel(), minlength=flat_size)
                    admit_pid[k] = pid_col
                    continue
                failed = np.flatnonzero(~ok)
                ent_f = ent_c[kk, failed]
                off_f = off_col[failed]
                if discipline in ("threshold", "length-threshold"):
                    alts = entry_alts[ent_f]
                    cand_rows = path_links[alts] + off_f[:, None, None]
                    if seg is None:
                        thr = path_thr0[alts]
                    else:
                        thr = path_thr[seg[k, failed][:, None], alts]
                    feas = (occ[cand_rows] < thr).all(axis=2)
                    first = feas.argmax(axis=1)
                    picked = np.arange(failed.size), first
                    apid = np.where(feas[picked], alts[picked], np.int32(-1))
                    alt_rows = path_links[apid] + off_f[:, None]
                elif discipline == "dar":
                    idx = sticky[failed, ent_f]
                    apid = entry_alts[ent_f, idx]
                    alt_rows = path_links[apid] + off_f[:, None]
                    feas = (occ[alt_rows] < path_thr0[apid]).all(axis=1)
                    bad = np.flatnonzero(~feas)
                    if bad.size:
                        sticky[failed[bad], ent_f[bad]] = resample[k, failed[bad]]
                        apid[bad] = -1
                        alt_rows[bad] = free_link
                else:  # power-of-d
                    picks = candidates[k, failed]
                    apidc = entry_alts[ent_f[:, None], picks]
                    cand_rows = path_links[apidc] + off_f[:, None, None]
                    score = (path_thr0[apidc] - occ[cand_rows]).min(axis=2)
                    best = np.arange(failed.size), score.argmax(axis=1)
                    apid = np.where(score[best] >= 1, apidc[best], np.int32(-1))
                    alt_rows = path_links[apid] + off_f[:, None]
                pid_col = pid_col.copy()
                pid_col[failed] = apid
                admitted = rows.copy()
                admitted[failed] = free_link
                occ += np.bincount(
                    np.concatenate([admitted.ravel(), alt_rows.ravel()]),
                    minlength=flat_size,
                )
                admit_pid[k] = pid_col
        return self._results(admit_pid)

    # --------------------------------------------------------------- stats

    def _results(self, admit_pid: np.ndarray) -> list[SimulationResult]:
        """Per-seed statistics from the admit log, matching the scalar loops."""
        results = []
        num_pairs = self._num_pairs
        for s, trace in enumerate(self.traces):
            n = trace.num_calls
            pid = admit_pid[:n, s]
            primary = self._entry_primary[self._call_entry[:n, s]]
            warm = int(np.searchsorted(trace.times, self.warmup, side="left"))
            pid_m = pid[warm:]
            blocked_mask = pid_m < 0
            od_measured = trace.od_index[warm:]
            offered = np.bincount(od_measured, minlength=num_pairs)
            blocked = np.bincount(od_measured[blocked_mask], minlength=num_pairs)
            on_primary = (pid_m == primary[warm:]) & ~blocked_mask
            primary_carried = int(on_primary.sum())
            alternate_carried = int((~blocked_mask).sum()) - primary_carried
            num_classes = len(trace.class_names)
            results.append(
                SimulationResult(
                    od_pairs=trace.od_pairs,
                    offered=offered.astype(np.int64),
                    blocked=blocked.astype(np.int64),
                    primary_carried=primary_carried,
                    alternate_carried=alternate_carried,
                    warmup=self.warmup,
                    duration=trace.duration,
                    seed=trace.seed,
                    class_names=trace.class_names,
                    class_offered=np.zeros(num_classes, dtype=np.int64),
                    class_blocked=np.zeros(num_classes, dtype=np.int64),
                    dropped=None,
                )
            )
        return results


def simulate_batch(
    network: Network,
    policy: RoutingPolicy,
    traces: Sequence[ArrivalTrace],
    warmup: float = 10.0,
    threshold_schedule: Sequence[tuple] | None = None,
) -> list[SimulationResult]:
    """Convenience wrapper: one :class:`BatchSimulator` pass over ``traces``.

    Raises :class:`ValueError` (naming the :func:`batch_ineligibility` reason)
    when the configuration needs a per-seed loop instead.
    """
    return BatchSimulator(
        network, policy, traces, warmup, threshold_schedule=threshold_schedule
    ).run()
