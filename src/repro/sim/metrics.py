"""Simulation metrics: blocking statistics and multi-seed aggregation.

The paper's headline metric is the *average network blocking*: the fraction
of calls (after warm-up) that completed on no path at all.  Section 4.2.2
additionally studies blocking skewness across O-D pairs.  Results carry
per-pair offered/blocked counts plus routing-mix counters (how many calls
completed on their primary vs an alternate), and :class:`SweepStatistic`
aggregates replications into mean and confidence half-width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["SimulationResult", "SweepStatistic", "BinnedSeries", "aggregate"]


@dataclass
class SimulationResult:
    """Counts from one simulation run, restricted to the measured window.

    ``offered[p]`` and ``blocked[p]`` count calls of O-D pair index ``p``
    (indexing matches the trace's ``od_pairs``).  ``primary_carried`` and
    ``alternate_carried`` split the accepted calls by the tier that carried
    them.

    Under dynamic faults a third outcome exists: a call *admitted* and later
    *dropped* because a link on its path failed mid-holding-time.  Dropped
    calls stay in the carried counters (they were admitted) but are charged
    against :attr:`availability`; ``dropped[p]`` counts them per O-D pair,
    restricted — like ``offered``/``blocked`` — to calls that arrived inside
    the measured window.
    """

    od_pairs: tuple[tuple[int, int], ...]
    offered: np.ndarray
    blocked: np.ndarray
    primary_carried: int
    alternate_carried: int
    warmup: float
    duration: float
    seed: int
    class_names: tuple[str, ...] = ()
    class_offered: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    class_blocked: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    dropped: np.ndarray | None = None

    @property
    def total_offered(self) -> int:
        return int(self.offered.sum())

    @property
    def total_blocked(self) -> int:
        return int(self.blocked.sum())

    @property
    def network_blocking(self) -> float:
        """Fraction of measured calls blocked on every permitted path."""
        offered = self.total_offered
        if offered == 0:
            return 0.0
        return self.total_blocked / offered

    @property
    def total_dropped(self) -> int:
        """Calls admitted but severed by a mid-run link failure."""
        if self.dropped is None:
            return 0
        return int(self.dropped.sum())

    @property
    def network_drop_rate(self) -> float:
        """Fraction of measured calls dropped after admission."""
        offered = self.total_offered
        if offered == 0:
            return 0.0
        return self.total_dropped / offered

    @property
    def availability(self) -> float:
        """Fraction of measured calls served to completion.

        One minus the blocked *and* dropped fractions: blocking alone
        understates user-visible loss under churn, since a dropped call
        counted as carried still failed its user.
        """
        offered = self.total_offered
        if offered == 0:
            return 1.0
        return 1.0 - (self.total_blocked + self.total_dropped) / offered

    @property
    def alternate_fraction(self) -> float:
        """Fraction of carried calls that used an alternate path."""
        carried = self.primary_carried + self.alternate_carried
        if carried == 0:
            return 0.0
        return self.alternate_carried / carried

    def pair_blocking(self) -> dict[tuple[int, int], float]:
        """Per-O-D blocking probabilities (pairs with no offered calls omitted)."""
        result: dict[tuple[int, int], float] = {}
        for index, od in enumerate(self.od_pairs):
            if self.offered[index] > 0:
                result[od] = float(self.blocked[index] / self.offered[index])
        return result

    def class_blocking(self) -> dict[str, float]:
        """Per-class blocking (multi-class runs; unoffered classes omitted)."""
        result: dict[str, float] = {}
        for index, name in enumerate(self.class_names):
            if self.class_offered[index] > 0:
                result[name] = float(
                    self.class_blocked[index] / self.class_offered[index]
                )
        return result


@dataclass(frozen=True)
class BinnedSeries:
    """Per-time-bin call outcomes over absolute simulation time.

    Bin ``i`` covers ``[i * bin_width, (i + 1) * bin_width)`` and counts the
    *measured* calls arriving in it (``offered``/``blocked``) plus the
    measured calls severed in it (``dropped``, attributed to the bin of the
    drop instant, not the arrival).  The dynamic-failure experiments use
    this to locate the blocking transient around a failure and measure the
    time to recover after repair.
    """

    bin_width: float
    offered: np.ndarray
    blocked: np.ndarray
    dropped: np.ndarray

    @property
    def num_bins(self) -> int:
        return int(self.offered.size)

    def bin_start(self, index: int) -> float:
        return index * self.bin_width

    def loss_fraction(self) -> np.ndarray:
        """Per-bin (blocked + dropped) / offered, zero where nothing offered."""
        offered = self.offered.astype(float)
        loss = (self.blocked + self.dropped).astype(float)
        return np.divide(loss, offered, out=np.zeros_like(loss), where=offered > 0)

    def time_to_recover(
        self, repair_time: float, baseline: float, tolerance: float = 0.02
    ) -> float:
        """Time from ``repair_time`` until loss first returns near ``baseline``.

        Scans the bins at or after the repair for the first whose loss
        fraction is within ``tolerance`` of the pre-failure ``baseline``;
        returns the end of that bin minus ``repair_time``.  Returns the
        remaining horizon when the run never recovers.
        """
        first = int(np.floor(repair_time / self.bin_width))
        loss = self.loss_fraction()
        for index in range(first, self.num_bins):
            if self.offered[index] == 0:
                continue
            if loss[index] <= baseline + tolerance:
                end = (index + 1) * self.bin_width
                return max(0.0, end - repair_time)
        return self.num_bins * self.bin_width - repair_time


@dataclass(frozen=True)
class SweepStatistic:
    """Mean and spread of a scalar metric over independent replications."""

    mean: float
    std: float
    half_width: float
    num_runs: int
    values: tuple[float, ...] = field(repr=False, default=())

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width


# Two-sided 95% Student-t quantiles for small sample sizes; beyond the table
# the normal value is close enough.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
}


def _t_quantile(dof: int) -> float:
    if dof <= 0:
        return 0.0
    if dof in _T_95:
        return _T_95[dof]
    for key in sorted(_T_95):
        if key >= dof:
            return _T_95[key]
    return 1.96


def aggregate(values: Sequence[float]) -> SweepStatistic:
    """Combine replication values into mean / std / 95% half-width."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot aggregate zero replications")
    mean = float(data.mean())
    if data.size == 1:
        return SweepStatistic(mean, 0.0, 0.0, 1, tuple(data.tolist()))
    std = float(data.std(ddof=1))
    half = _t_quantile(data.size - 1) * std / float(np.sqrt(data.size))
    return SweepStatistic(mean, std, half, int(data.size), tuple(data.tolist()))
