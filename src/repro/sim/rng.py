"""Reproducible random-stream management.

Every stochastic component draws from a named substream spawned off a root
seed, so (a) runs are exactly reproducible, and (b) adding a new consumer of
randomness never perturbs existing streams — which is what makes the
common-random-number comparisons across routing policies honest.
"""

from __future__ import annotations

import numpy as np

__all__ = ["substream"]


def substream(seed: int, *keys: object) -> np.random.Generator:
    """A generator for the substream identified by ``keys`` under ``seed``.

    Keys may be strings or integers; strings are folded to stable integers
    (Python's ``hash`` is salted per process, so we fold bytes explicitly).
    """
    words: list[int] = [int(seed)]
    for key in keys:
        if isinstance(key, (int, np.integer)):
            words.append(int(key))
        elif isinstance(key, str):
            folded = 0
            for byte in key.encode("utf-8"):
                folded = (folded * 131 + byte) % (2**32)
            words.append(folded)
        else:
            raise TypeError(f"stream keys must be int or str, got {type(key)!r}")
    return np.random.default_rng(np.random.SeedSequence(words))
