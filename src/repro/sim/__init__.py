"""Simulation substrate: traces, the loss-network simulator, metrics, failures."""

from .engine import EventQueue
from .failures import FailedNetwork, FailureScenario, apply_failures
from .faultplane import (
    FaultEvent,
    FaultStats,
    FaultTimeline,
    FlappingLink,
    MarkovLinkFaults,
    ScheduledFailure,
    build_fault_timeline,
    single_failure_timeline,
)
from .metrics import BinnedSeries, SimulationResult, SweepStatistic, aggregate
from .rng import substream
from .signaling import (
    SignalingConfig,
    SignalingSimulator,
    SignalingStats,
    simulate_signaling,
)
from .simulator import LossNetworkSimulator, simulate
from .trace import ArrivalTrace, generate_multiclass_trace, generate_trace

__all__ = [
    "EventQueue",
    "FailureScenario",
    "FailedNetwork",
    "apply_failures",
    "FaultEvent",
    "FaultStats",
    "FaultTimeline",
    "FlappingLink",
    "MarkovLinkFaults",
    "ScheduledFailure",
    "build_fault_timeline",
    "single_failure_timeline",
    "BinnedSeries",
    "SimulationResult",
    "SweepStatistic",
    "aggregate",
    "substream",
    "LossNetworkSimulator",
    "simulate",
    "SignalingConfig",
    "SignalingSimulator",
    "SignalingStats",
    "simulate_signaling",
    "ArrivalTrace",
    "generate_trace",
    "generate_multiclass_trace",
]
