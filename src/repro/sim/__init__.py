"""Simulation substrate: traces, the loss-network simulator, metrics, failures."""

from .engine import EventQueue
from .failures import FailedNetwork, FailureScenario, apply_failures
from .faultplane import (
    FaultEvent,
    FaultStats,
    FaultTimeline,
    FlappingLink,
    MarkovLinkFaults,
    ScheduledFailure,
    build_fault_timeline,
    single_failure_timeline,
)
from .metrics import BinnedSeries, SimulationResult, SweepStatistic, aggregate
from .rng import substream
from .signaling import (
    SignalingConfig,
    SignalingSimulator,
    SignalingStats,
    simulate_signaling,
)
from .simulator import LossNetworkSimulator, simulate
from .trace import ArrivalTrace, generate_multiclass_trace, generate_trace

# Imported last: the batch kernel pulls in the routing package (for the
# policy-compatibility check), which itself imports sim submodules — by now
# they are all fully initialized, so the cycle never bites.
from .batch import BatchSimulator, batch_ineligibility, simulate_batch  # noqa: E402

__all__ = [
    "BatchSimulator",
    "batch_ineligibility",
    "simulate_batch",
    "EventQueue",
    "FailureScenario",
    "FailedNetwork",
    "apply_failures",
    "FaultEvent",
    "FaultStats",
    "FaultTimeline",
    "FlappingLink",
    "MarkovLinkFaults",
    "ScheduledFailure",
    "build_fault_timeline",
    "single_failure_timeline",
    "BinnedSeries",
    "SimulationResult",
    "SweepStatistic",
    "aggregate",
    "substream",
    "LossNetworkSimulator",
    "simulate",
    "SignalingConfig",
    "SignalingSimulator",
    "SignalingStats",
    "simulate_signaling",
    "ArrivalTrace",
    "generate_trace",
    "generate_multiclass_trace",
]
