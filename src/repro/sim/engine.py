"""A small general-purpose discrete-event engine.

The hot loss-network loop in :mod:`repro.sim.simulator` inlines its own event
handling for speed; this engine serves the extension subsystems (the cellular
channel-borrowing model, the online load estimator) where flexibility beats
raw throughput.  Events are ``(time, sequence, callback, payload)`` tuples in
a binary heap; the monotone sequence number makes simultaneous events fire in
scheduling order, keeping runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["EventQueue"]


class EventQueue:
    """A deterministic discrete-event queue.

    Schedule callbacks with :meth:`schedule`, then :meth:`run` until a time
    horizon or until the queue drains.  Callbacks receive
    ``(queue, payload)`` and may schedule further events.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[["EventQueue", Any], None], Any]] = []
        self._sequence = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self,
        when: float,
        callback: Callable[["EventQueue", Any], None],
        payload: Any = None,
    ) -> None:
        """Schedule ``callback(queue, payload)`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before current time {self._now}")
        heapq.heappush(self._heap, (when, self._sequence, callback, payload))
        self._sequence += 1

    def schedule_in(
        self,
        delay: float,
        callback: Callable[["EventQueue", Any], None],
        payload: Any = None,
    ) -> None:
        """Schedule ``callback`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule(self._now + delay, callback, payload)

    def run(self, until: float | None = None) -> int:
        """Process events in time order; returns the number processed.

        With ``until`` set, events strictly after it stay queued and the
        clock advances exactly to ``until``.
        """
        if self._running:
            raise RuntimeError("EventQueue.run is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                when, __, callback, payload = self._heap[0]
                if until is not None and when > until:
                    break
                heapq.heappop(self._heap)
                self._now = when
                callback(self, payload)
                processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return processed
