"""Arrival traces: pre-generated call arrival processes.

The paper runs "each algorithm ... with identical call arrivals and call
holding times" — the classic common-random-numbers discipline.  We realize
it by materializing the whole arrival process once per (traffic matrix,
duration, seed) and replaying the same trace under every routing policy.

A trace holds, per call: arrival time, O-D pair index, exponential holding
time (unit mean, as the paper scales time), and a uniform variate reserved
for any per-call routing randomization (the bifurcated min-link-loss
primaries need one).  Generation is fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..traffic.matrix import TrafficMatrix
from .rng import substream

__all__ = ["ArrivalTrace", "generate_trace", "generate_multiclass_trace"]


@dataclass(frozen=True)
class ArrivalTrace:
    """A realized call-arrival process.

    ``od_pairs`` lists the O-D pairs with positive demand; ``od_index[c]``
    points into it for call ``c``.  ``times`` is sorted non-decreasing.

    Multi-class traces additionally carry per-call ``bandwidths`` (capacity
    units booked on every link of the chosen path), a ``class_index`` into
    ``class_names``, and the class roster itself; single-class traces leave
    these ``None`` and the simulator books one unit per call.
    """

    od_pairs: tuple[tuple[int, int], ...]
    times: np.ndarray
    od_index: np.ndarray
    holding_times: np.ndarray
    uniforms: np.ndarray
    duration: float
    seed: int
    bandwidths: np.ndarray | None = None
    class_index: np.ndarray | None = None
    class_names: tuple[str, ...] = ()

    @property
    def num_calls(self) -> int:
        return int(self.times.size)

    @property
    def is_multiclass(self) -> bool:
        return self.bandwidths is not None

    def calls_for_pair(self, od: tuple[int, int]) -> int:
        """Number of arrivals for one O-D pair (diagnostics)."""
        try:
            idx = self.od_pairs.index(od)
        except ValueError:
            return 0
        return int(np.count_nonzero(self.od_index == idx))

    def calls_for_class(self, name: str) -> int:
        """Number of arrivals of one class (multi-class traces only)."""
        if self.class_index is None:
            return 0
        try:
            idx = self.class_names.index(name)
        except ValueError:
            return 0
        return int(np.count_nonzero(self.class_index == idx))


def _sample_holding_times(rng, count: int, distribution: str) -> np.ndarray:
    """Unit-mean holding times from the requested distribution.

    ``exponential`` is the paper's model; ``deterministic`` (constant 1) and
    ``hyperexponential`` (balanced two-phase, coefficient of variation 2)
    exist for insensitivity studies — the single-path loss network's
    blocking is provably insensitive to the holding distribution, while the
    state-dependent alternate-routing dynamics need not be.
    """
    if distribution == "exponential":
        return rng.exponential(1.0, size=count)
    if distribution == "deterministic":
        return np.ones(count)
    if distribution == "hyperexponential":
        # Balanced H2 with unit mean and squared CV of 4: phases with rates
        # r1, r2 picked with probabilities p, 1-p such that p/r1 = (1-p)/r2.
        scv = 4.0
        p = 0.5 * (1.0 + np.sqrt((scv - 1.0) / (scv + 1.0)))
        rate1 = 2.0 * p
        rate2 = 2.0 * (1.0 - p)
        phase_one = rng.random(count) < p
        samples = np.where(
            phase_one,
            rng.exponential(1.0 / rate1, size=count),
            rng.exponential(1.0 / rate2, size=count),
        )
        return samples
    raise ValueError(
        f"unknown holding distribution {distribution!r}; expected 'exponential', "
        "'deterministic' or 'hyperexponential'"
    )


def generate_trace(
    traffic: TrafficMatrix,
    duration: float,
    seed: int,
    holding: str = "exponential",
) -> ArrivalTrace:
    """Generate the superposed Poisson arrival process for a demand matrix.

    The superposition of independent per-pair Poisson processes with rates
    ``T(i, j)`` is a Poisson process of total rate ``sum T`` whose marks are
    i.i.d. categorical with probabilities ``T(i, j) / sum T`` — which is how
    we sample it: one Poisson count, sorted uniform arrival instants, and a
    categorical mark per call.  ``holding`` picks the unit-mean holding-time
    distribution (the paper's model is ``"exponential"``; see
    :func:`_sample_holding_times` for the insensitivity-study options).
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    pairs: list[tuple[int, int]] = []
    rates: list[float] = []
    for od, demand in traffic.positive_pairs():
        pairs.append(od)
        rates.append(demand)
    total_rate = float(sum(rates))
    rng = substream(seed, "arrivals")
    if total_rate == 0.0:
        empty = np.empty(0)
        return ArrivalTrace(
            od_pairs=tuple(pairs),
            times=empty,
            od_index=np.empty(0, dtype=np.int64),
            holding_times=empty.copy(),
            uniforms=empty.copy(),
            duration=float(duration),
            seed=seed,
        )
    count = int(rng.poisson(total_rate * duration))
    times = np.sort(rng.uniform(0.0, duration, size=count))
    probabilities = np.asarray(rates) / total_rate
    od_index = rng.choice(len(pairs), size=count, p=probabilities)
    holding_times = _sample_holding_times(rng, count, holding)
    uniforms = rng.uniform(0.0, 1.0, size=count)
    return ArrivalTrace(
        od_pairs=tuple(pairs),
        times=times,
        od_index=od_index.astype(np.int64),
        holding_times=holding_times,
        uniforms=uniforms,
        duration=float(duration),
        seed=seed,
    )


def generate_multiclass_trace(
    class_traffic: Sequence[tuple[str, TrafficMatrix, int]],
    duration: float,
    seed: int,
) -> ArrivalTrace:
    """Generate a merged arrival process for several call classes.

    ``class_traffic`` lists ``(name, demand_matrix, bandwidth)`` triples;
    each class is an independent Poisson process over its own matrix, and
    every call books ``bandwidth`` capacity units on each link of its path.
    Holding times are exp(1) for every class, as in the paper's model.  The
    merged trace is sorted by arrival time, so the simulator replays it
    unchanged.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not class_traffic:
        raise ValueError("need at least one traffic class")
    names = [name for name, __, ___ in class_traffic]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate class names in {names}")
    for name, __, bandwidth in class_traffic:
        if bandwidth < 1:
            raise ValueError(f"class {name!r} has non-positive bandwidth {bandwidth}")

    # One pooled O-D pair list across classes, so od_index stays unambiguous.
    pair_index: dict[tuple[int, int], int] = {}
    segments = []
    for class_id, (name, matrix, bandwidth) in enumerate(class_traffic):
        rng = substream(seed, "arrivals", name)
        pairs, rates = [], []
        for od, demand in matrix.positive_pairs():
            pairs.append(od)
            rates.append(demand)
        total_rate = float(sum(rates))
        if total_rate == 0.0:
            continue
        count = int(rng.poisson(total_rate * duration))
        times = rng.uniform(0.0, duration, size=count)
        choice = rng.choice(len(pairs), size=count, p=np.asarray(rates) / total_rate)
        for od in pairs:
            pair_index.setdefault(od, len(pair_index))
        od_idx = np.array([pair_index[pairs[c]] for c in choice], dtype=np.int64)
        segments.append(
            (
                times,
                od_idx,
                rng.exponential(1.0, size=count),
                rng.uniform(0.0, 1.0, size=count),
                np.full(count, class_id, dtype=np.int64),
                np.full(count, bandwidth, dtype=np.int64),
            )
        )

    if segments:
        times = np.concatenate([s[0] for s in segments])
        order = np.argsort(times, kind="stable")
        merged = [np.concatenate([s[i] for s in segments])[order] for i in range(6)]
    else:
        merged = [np.empty(0) for __ in range(4)] + [
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        ]
        merged[1] = merged[1].astype(np.int64)
    od_pairs = tuple(sorted(pair_index, key=lambda od: pair_index[od]))
    return ArrivalTrace(
        od_pairs=od_pairs,
        times=merged[0],
        od_index=merged[1].astype(np.int64),
        holding_times=merged[2],
        uniforms=merged[3],
        duration=float(duration),
        seed=seed,
        bandwidths=merged[5].astype(np.int64),
        class_index=merged[4].astype(np.int64),
        class_names=tuple(names),
    )
