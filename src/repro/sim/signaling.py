"""Packet-level call-setup signaling (Section 1's protocol, message by message).

The paper describes its set-up mechanics concretely: "A call set-up packet
containing the origin and destination node addresses, the flow-rate desired,
and a primary call flag which is set, zips along the primary path checking
to see whether sufficient resources exist on each link of the primary path.
If they do, resources are booked on its way back, and the call commences.
If resources are not available on the primary path, alternate paths are
successively attempted by call set-ups (whose primary path flags are
reset)."

The flow-level simulator (:mod:`repro.sim.simulator`) abstracts this into an
instantaneous atomic admission decision.  This module implements the actual
distributed protocol over the event queue, with per-link propagation delay:

* **SETUP** travels forward, *checking* (not reserving) each link's
  admission rule — capacity for primary-flagged set-ups, the state-
  protection threshold for alternates;
* on a failed check the set-up **cranks back**: a failure notice returns to
  the origin, which tries the next route in its list;
* at the destination a **CONFIRM** retraces the route, *booking* one
  circuit per link on the way back; because checking and booking are
  separated by propagation time, a booking can find the circuit gone — a
  **race abort** — which releases the partial bookings and cranks back;
* the origin starts the call when the CONFIRM arrives and, at the end of
  the holding time, sends a **TEARDOWN** forward that releases each link.

With zero propagation delay the protocol collapses to the flow simulator's
atomic decisions — the test suite asserts pathwise equivalence — and with
positive delay it measures what the abstraction hides: set-up latency and
race aborts.  (Per the paper's footnote 2, signaling bandwidth itself is
assumed reserved and is not modelled.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..routing.base import RouteChoice, RoutingPolicy
from ..topology.graph import Network
from .engine import EventQueue
from .metrics import SimulationResult
from .trace import ArrivalTrace

__all__ = ["SignalingConfig", "SignalingStats", "SignalingSimulator", "simulate_signaling"]


@dataclass(frozen=True)
class SignalingConfig:
    """Timing model for the signaling plane.

    ``propagation_delay`` is the one-way per-hop delay for any signaling
    message, in call-holding-time units (the paper's unit of time).  A
    typical long-haul hop at ~10 ms against minutes-long calls is ~1e-4.
    """

    propagation_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")


@dataclass
class SignalingStats:
    """Protocol-level counters accumulated over a run (measured window only)."""

    setups_sent: int = 0
    crankbacks: int = 0
    race_aborts: int = 0
    established: int = 0
    setup_latency_sum: float = 0.0

    @property
    def mean_setup_latency(self) -> float:
        if self.established == 0:
            return 0.0
        return self.setup_latency_sum / self.established


@dataclass
class _PendingCall:
    """Origin-side state of one call working through its route list."""

    pair_index: int
    arrival_time: float
    holding_time: float
    choice: RouteChoice
    next_route: int = 0  # 0 = primary, k >= 1 = alternates[k - 1]
    measured: bool = False

    def route(self) -> tuple[int, ...] | None:
        if self.next_route == 0:
            return self.choice.primary
        index = self.next_route - 1
        if index < len(self.choice.alternates):
            return self.choice.alternates[index]
        return None

    @property
    def is_primary_attempt(self) -> bool:
        return self.next_route == 0


class SignalingSimulator:
    """Distributed set-up/confirm/teardown signaling over a threshold policy.

    Consumes the same :class:`ArrivalTrace` and threshold-discipline
    :class:`RoutingPolicy` as the flow simulator, so results are directly
    comparable under common random numbers.
    """

    def __init__(
        self,
        network: Network,
        policy: RoutingPolicy,
        trace: ArrivalTrace,
        warmup: float = 10.0,
        config: SignalingConfig = SignalingConfig(),
    ):
        if policy.discipline != "threshold":
            raise ValueError("signaling simulation supports threshold policies only")
        if policy.alt_thresholds is None:
            raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
        if warmup < 0 or warmup >= trace.duration:
            raise ValueError("warmup must lie in [0, duration)")
        if trace.is_multiclass:
            raise ValueError("signaling simulation supports unit-bandwidth traces only")
        self.network = network
        self.policy = policy
        self.trace = trace
        self.warmup = float(warmup)
        self.config = config
        self.stats = SignalingStats()

    # The protocol below keeps one authoritative occupancy counter per link,
    # held (conceptually) by the link's upstream node: only that node checks
    # and books the link, so there is no multi-writer inconsistency — but
    # checking (SETUP) and booking (CONFIRM) are separated in time, hence
    # the race-abort path.

    def run(self) -> SimulationResult:
        network = self.network
        trace = self.trace
        capacities = [int(c) for c in network.capacities()]
        thresholds = [int(t) for t in self.policy.alt_thresholds]
        occupancy = [0] * network.num_links
        delay = self.config.propagation_delay

        num_pairs = len(trace.od_pairs)
        offered = [0] * num_pairs
        blocked = [0] * num_pairs
        primary_carried = 0
        alternate_carried = 0
        stats = self.stats
        warmup = self.warmup

        queue = EventQueue()
        policy = self.policy

        def limit_for(call: _PendingCall, link: int) -> int:
            return capacities[link] if call.is_primary_attempt else thresholds[link]

        def start_attempt(q: EventQueue, call: _PendingCall) -> None:
            route = call.route()
            if route is None:
                if call.measured:
                    blocked[call.pair_index] += 1
                return
            if call.measured:
                stats.setups_sent += 1
            # Forward pass: the set-up reaches hop k at now + k * delay and
            # checks that hop's link.
            advance_setup(q, (call, route, 0))

        def advance_setup(q: EventQueue, payload) -> None:
            call, route, hop = payload
            if hop == len(route):
                # Destination reached: CONFIRM retraces, booking backwards.
                advance_confirm(q, (call, route, len(route) - 1))
                return
            link = route[hop]
            if occupancy[link] + 1 > limit_for(call, link):
                # Crankback: the failure notice needs hop+1 hops home... the
                # origin simply moves on when it hears, after the round trip.
                if call.measured:
                    stats.crankbacks += 1
                call.next_route += 1
                q.schedule_in((hop + 1) * delay if delay else 0.0, retry, call)
                return
            q.schedule_in(delay, advance_setup, (call, route, hop + 1))

        def retry(q: EventQueue, call: _PendingCall) -> None:
            start_attempt(q, call)

        def advance_confirm(q: EventQueue, payload) -> None:
            call, route, hop = payload
            if hop < 0:
                # Confirm reached the origin: the call is up.
                if call.measured:
                    stats.established += 1
                    stats.setup_latency_sum += q.now - call.arrival_time
                    nonlocal primary_carried, alternate_carried
                    if call.is_primary_attempt:
                        primary_carried += 1
                    else:
                        alternate_carried += 1
                q.schedule_in(call.holding_time, start_teardown, route)
                return
            link = route[hop]
            if occupancy[link] + 1 > limit_for(call, link):
                # The circuit vanished between check and booking: race abort.
                if call.measured:
                    stats.race_aborts += 1
                call.next_route += 1
                release_and_retry(q, (call, route, hop + 1))
                return
            occupancy[link] += 1
            q.schedule_in(delay, advance_confirm, (call, route, hop - 1))

        def release_and_retry(q: EventQueue, payload) -> None:
            call, route, hop = payload
            if hop == len(route):
                q.schedule_in(0.0, retry, call)
                return
            occupancy[route[hop]] -= 1
            q.schedule_in(delay, release_and_retry, (call, route, hop + 1))

        def start_teardown(q: EventQueue, route: tuple[int, ...]) -> None:
            advance_teardown(q, (route, 0))

        def advance_teardown(q: EventQueue, payload) -> None:
            route, hop = payload
            if hop == len(route):
                return
            occupancy[route[hop]] -= 1
            q.schedule_in(delay, advance_teardown, (route, hop + 1))

        def arrival(q: EventQueue, payload) -> None:
            pair, holding, uniform = payload
            measured = q.now >= warmup
            if measured:
                offered[pair] += 1
            od = trace.od_pairs[pair]
            options = policy.choices.get(od, ())
            if not options:
                if measured:
                    blocked[pair] += 1
                return
            choice = (
                options[0]
                if len(options) == 1
                else policy.select_choice(od, uniform)
            )
            call = _PendingCall(
                pair_index=pair,
                arrival_time=q.now,
                holding_time=holding,
                choice=choice,
                measured=measured,
            )
            start_attempt(q, call)

        times = trace.times.tolist()
        od_index = trace.od_index.tolist()
        holding = trace.holding_times.tolist()
        uniforms = trace.uniforms.tolist()
        for i in range(len(times)):
            queue.schedule(times[i], arrival, (od_index[i], holding[i], uniforms[i]))
        queue.run()

        return SimulationResult(
            od_pairs=trace.od_pairs,
            offered=np.asarray(offered, dtype=np.int64),
            blocked=np.asarray(blocked, dtype=np.int64),
            primary_carried=primary_carried,
            alternate_carried=alternate_carried,
            warmup=warmup,
            duration=trace.duration,
            seed=trace.seed,
        )


def simulate_signaling(
    network: Network,
    policy: RoutingPolicy,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    propagation_delay: float = 0.0,
) -> tuple[SimulationResult, SignalingStats]:
    """Run the signaling-level simulation; returns result + protocol stats."""
    simulator = SignalingSimulator(
        network,
        policy,
        trace,
        warmup=warmup,
        config=SignalingConfig(propagation_delay=propagation_delay),
    )
    result = simulator.run()
    return result, simulator.stats
